//! The cleanup simplifier: case-of-known-constructor and friends.
//!
//! Inlining and worker/wrapper leave behind shapes like
//!
//! ```text
//! case (let a = … in case b of { I# y -> I# (x -# y) }) of { I# k -> e }
//! ```
//!
//! This pass normalizes them away with local, outcome-exact rules:
//!
//! * **β** — a literal `(\x -> e) a` redex reduces (via the inliner's
//!   machinery, so argument evaluation order is preserved);
//! * **case-of-let** — `case (let x = r in b) of alts` floats the `let`
//!   outward (binder freshened so the alternatives cannot be captured);
//! * **case-of-case** — when the inner case has exactly *one*
//!   alternative, the outer case pushes into it directly (no code
//!   duplication); a *multi*-alternative inner case goes through
//!   [`super::join`]: the outer alternatives become join points and the
//!   pushed copies are jumps, so worker results flow into their
//!   consumers without duplicating continuations;
//! * **tuple-η** — `case e of (# x… #) -> (# x… #)` is `e`: this is
//!   what turns a CPR worker's reboxed-then-unboxed recursive tail
//!   call back into a direct tuple-returning call;
//! * **case-of-known-constructor** — a case whose scrutinee is a visible
//!   constructor application, unboxed tuple, literal, or a global CAF
//!   that is a constructor of atoms (a specialised dictionary) selects
//!   its alternative at compile time; field binders become `let`s, whose
//!   type-directed strictness matches exactly how lowering would have
//!   bound the constructor's fields;
//! * **let-of-atom / dead let** — `let x = atom in b` substitutes, and
//!   an unused binder is dropped when doing so cannot lose an effect
//!   (always for lazy pointers, only for manifestly pure right-hand
//!   sides when the binding is strict).
//!
//! Every strictness decision is made from the binder's *type* via
//! [`kind_of`], exactly the §6.2 rule lowering itself uses — which is
//! what makes these rewrites representation-preserving.

use std::collections::HashMap;
use std::sync::Arc;

use levity_core::rep::Rep;
use levity_core::symbol::Symbol;
use levity_ir::freshen;
use levity_ir::terms::{CoreAlt, CoreExpr, LetKind, Program, TopBind};
use levity_ir::typecheck::{kind_of, Scope, ScopeEntry, TypeEnv};
use levity_ir::types::Type;
use levity_m::syntax::Literal;

use super::inline::reduce_redex;
use super::subst::{count_uses, is_atom, is_value_atom, substitute};

/// Hard cap on rewrites per binding; guarantees termination regardless
/// of rule interaction.
const REWRITE_FUEL: u32 = 10_000;

/// How a binder of a given type is bound by lowering.
#[derive(Clone, Copy, PartialEq)]
enum Strictness {
    /// Pointer-kinded: bound lazily (a thunk).
    Lazy,
    /// Unboxed: bound strictly (evaluated now).
    Strict,
    /// Kind unknown here (open type under polymorphism): assume nothing.
    Unknown,
}

/// A global binding that is a constructor application of atoms — a
/// specialised dictionary CAF, or any other statically known record.
struct GlobalCon {
    con: Symbol,
    fields: Vec<CoreExpr>,
}

/// Shared context for one simplification pass. `join_points` counts the
/// continuations bound by the multi-alternative case-of-case rule (a
/// `Cell` so the read-mostly context can stay shared).
struct Cx<'a> {
    env: &'a TypeEnv,
    global_cons: HashMap<Symbol, GlobalCon>,
    join_points: std::cell::Cell<usize>,
}

impl Cx<'_> {
    fn strictness(&self, scope: &mut Scope, ty: &Type) -> Strictness {
        match kind_of(self.env, scope, ty) {
            Ok(kind) => match kind.concrete_rep() {
                Some(Rep::Lifted | Rep::Unlifted) => Strictness::Lazy,
                Some(_) => Strictness::Strict,
                None => Strictness::Unknown,
            },
            Err(_) => Strictness::Unknown,
        }
    }
}

/// Is evaluating this expression guaranteed effect-free (no abort, no
/// divergence)? Used to drop dead *strict* lets. `Global` does not
/// qualify: evaluating it runs its top-level body, which may abort
/// (think `bad :: Int#` = a division by zero); likewise constructor
/// fields, whose unboxed members evaluate at construction.
fn pure_value(e: &CoreExpr) -> bool {
    match e {
        CoreExpr::Var(_) | CoreExpr::Lit(_) => true,
        CoreExpr::Lam(..) | CoreExpr::TyLam(..) | CoreExpr::RepLam(..) => true,
        CoreExpr::TyApp(f, _) | CoreExpr::RepApp(f, _) => pure_value(f),
        CoreExpr::Con(_, _, fields) | CoreExpr::Tuple(fields) => fields.iter().all(is_value_atom),
        _ => false,
    }
}

/// Can this expression be *evaluated early* without changing any
/// observable — no abort, no divergence, no thunk forced? Variables
/// and literals are values; total primops over such arguments compute
/// but cannot fail (`quot`/`rem` can divide by zero, so they do not
/// qualify). Used by the let-float rule, which moves an evaluation
/// forward in time.
fn pure_total(e: &CoreExpr) -> bool {
    match e {
        CoreExpr::Var(_) | CoreExpr::Lit(_) => true,
        CoreExpr::TyApp(f, _) | CoreExpr::RepApp(f, _) => pure_total(f),
        CoreExpr::Prim(op, args) => {
            !matches!(
                op,
                levity_m::syntax::PrimOp::QuotI | levity_m::syntax::PrimOp::RemI
            ) && args.iter().all(pure_total)
        }
        _ => false,
    }
}

/// Runs the simplifier over a whole program (to a bounded fixpoint per
/// binding). Returns the program, the number of rewrites applied, and
/// the number of join points bound by the case-of-case rule.
pub fn simplify(env: &TypeEnv, prog: &Program) -> (Program, usize, usize) {
    let mut global_cons = HashMap::new();
    for b in &prog.bindings {
        if let CoreExpr::Con(con, _, fields) = &b.expr {
            if fields.iter().all(is_atom) {
                global_cons.insert(
                    b.name,
                    GlobalCon {
                        con: con.name,
                        fields: fields.clone(),
                    },
                );
            }
        }
    }
    let cx = Cx {
        env,
        global_cons,
        join_points: std::cell::Cell::new(0),
    };
    let mut total = 0usize;
    let bindings = prog
        .bindings
        .iter()
        .map(|b| {
            let mut expr = b.expr.clone();
            for _ in 0..4 {
                let mut fuel = REWRITE_FUEL;
                let mut changed = false;
                expr = simp(&expr, &cx, &mut Scope::new(), &mut changed, &mut fuel);
                total += (REWRITE_FUEL - fuel) as usize;
                if !changed {
                    break;
                }
            }
            TopBind {
                name: b.name,
                ty: b.ty.clone(),
                expr,
            }
        })
        .collect();
    (
        Program {
            data_decls: prog.data_decls.clone(),
            bindings,
        },
        total,
        cx.join_points.get(),
    )
}

fn simp(
    e: &CoreExpr,
    cx: &Cx<'_>,
    scope: &mut Scope,
    changed: &mut bool,
    fuel: &mut u32,
) -> CoreExpr {
    // Bottom-up: simplify children first.
    let node = match e {
        CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => {
            e.clone()
        }
        CoreExpr::App(f, a) => CoreExpr::app(
            simp(f, cx, scope, changed, fuel),
            simp(a, cx, scope, changed, fuel),
        ),
        CoreExpr::TyApp(f, t) => CoreExpr::ty_app(simp(f, cx, scope, changed, fuel), t.clone()),
        CoreExpr::RepApp(f, r) => CoreExpr::rep_app(simp(f, cx, scope, changed, fuel), r.clone()),
        CoreExpr::Lam(x, t, b) => {
            scope.push(*x, ScopeEntry::Term(t.clone()));
            let b = simp(b, cx, scope, changed, fuel);
            scope.pop();
            CoreExpr::lam(*x, t.clone(), b)
        }
        CoreExpr::TyLam(a, k, b) => {
            scope.push(*a, ScopeEntry::TyVar(k.clone()));
            let b = simp(b, cx, scope, changed, fuel);
            scope.pop();
            CoreExpr::ty_lam(*a, k.clone(), b)
        }
        CoreExpr::RepLam(r, b) => {
            scope.push(*r, ScopeEntry::RepVar);
            let b = simp(b, cx, scope, changed, fuel);
            scope.pop();
            CoreExpr::rep_lam(*r, b)
        }
        CoreExpr::Let(kind, x, t, rhs, body) => {
            let rhs = if *kind == LetKind::Rec {
                scope.push(*x, ScopeEntry::Term(t.clone()));
                let r = simp(rhs, cx, scope, changed, fuel);
                scope.pop();
                r
            } else {
                simp(rhs, cx, scope, changed, fuel)
            };
            scope.push(*x, ScopeEntry::Term(t.clone()));
            let body = simp(body, cx, scope, changed, fuel);
            scope.pop();
            CoreExpr::Let(*kind, *x, t.clone(), Box::new(rhs), Box::new(body))
        }
        CoreExpr::Case(scrut, alts) => {
            let scrut = simp(scrut, cx, scope, changed, fuel);
            let alts = alts
                .iter()
                .map(|alt| simp_alt(alt, cx, scope, changed, fuel))
                .collect();
            CoreExpr::Case(Box::new(scrut), alts)
        }
        CoreExpr::Con(con, ty_args, fields) => CoreExpr::Con(
            Arc::clone(con),
            ty_args.clone(),
            fields
                .iter()
                .map(|f| simp(f, cx, scope, changed, fuel))
                .collect(),
        ),
        CoreExpr::Prim(op, args) => CoreExpr::Prim(
            *op,
            args.iter()
                .map(|a| simp(a, cx, scope, changed, fuel))
                .collect(),
        ),
        CoreExpr::Tuple(args) => CoreExpr::Tuple(
            args.iter()
                .map(|a| simp(a, cx, scope, changed, fuel))
                .collect(),
        ),
    };
    // Then rewrite the node itself; a successful rewrite is re-entered
    // so newly exposed redexes (case-of-known-con after a push, a let of
    // an atom after a selection) simplify in the same pass.
    if *fuel == 0 {
        return node;
    }
    match rewrite(&node, cx, scope) {
        Some(next) => {
            *changed = true;
            *fuel -= 1;
            simp(&next, cx, scope, changed, fuel)
        }
        None => node,
    }
}

fn simp_alt(
    alt: &CoreAlt,
    cx: &Cx<'_>,
    scope: &mut Scope,
    changed: &mut bool,
    fuel: &mut u32,
) -> CoreAlt {
    match alt {
        CoreAlt::Con { con, binders, rhs } => {
            for (x, t) in binders {
                scope.push(*x, ScopeEntry::Term(t.clone()));
            }
            let rhs = simp(rhs, cx, scope, changed, fuel);
            for _ in binders {
                scope.pop();
            }
            CoreAlt::Con {
                con: Arc::clone(con),
                binders: binders.clone(),
                rhs,
            }
        }
        CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
            lit: *lit,
            rhs: simp(rhs, cx, scope, changed, fuel),
        },
        CoreAlt::Tuple { binders, rhs } => {
            for (x, t) in binders {
                scope.push(*x, ScopeEntry::Term(t.clone()));
            }
            let rhs = simp(rhs, cx, scope, changed, fuel);
            for _ in binders {
                scope.pop();
            }
            CoreAlt::Tuple {
                binders: binders.clone(),
                rhs,
            }
        }
        CoreAlt::Default { binder, rhs } => {
            if let Some((x, t)) = binder {
                scope.push(*x, ScopeEntry::Term(t.clone()));
            }
            let rhs = simp(rhs, cx, scope, changed, fuel);
            if binder.is_some() {
                scope.pop();
            }
            CoreAlt::Default {
                binder: binder.clone(),
                rhs,
            }
        }
    }
}

/// Tries exactly one rewrite at this node.
fn rewrite(e: &CoreExpr, cx: &Cx<'_>, scope: &mut Scope) -> Option<CoreExpr> {
    if let Some(reduced) = reduce_redex(e) {
        return Some(reduced);
    }
    match e {
        CoreExpr::Case(scrut, alts) => {
            // Tuple-η: case e of (# x… #) -> (# x… #)  ==>  e. Both
            // sides force the scrutinee to the same multi-value.
            if let [CoreAlt::Tuple {
                binders,
                rhs: CoreExpr::Tuple(es),
            }] = &alts[..]
            {
                let eta = es.len() == binders.len()
                    && es
                        .iter()
                        .zip(binders)
                        .all(|(e, (b, _))| matches!(e, CoreExpr::Var(v) if v == b));
                if eta {
                    return Some((**scrut).clone());
                }
            }
            rewrite_case(scrut, alts, cx, scope)
        }
        CoreExpr::Let(kind, x, ty, rhs, body) => rewrite_let(*kind, *x, ty, rhs, body, cx, scope),
        _ => None,
    }
}

fn rewrite_let(
    kind: LetKind,
    x: Symbol,
    ty: &Type,
    rhs: &CoreExpr,
    body: &CoreExpr,
    cx: &Cx<'_>,
    scope: &mut Scope,
) -> Option<CoreExpr> {
    let uses = count_uses(body, x);
    let strictness = cx.strictness(scope, ty);
    // Dead binder.
    if uses == 0 {
        let droppable = match strictness {
            // A lazy binding that is never used is never forced —
            // recursive or not, the thunk is inert.
            Strictness::Lazy => true,
            Strictness::Strict | Strictness::Unknown => pure_value(rhs),
        };
        if droppable {
            return Some(body.clone());
        }
    }
    // Atom right-hand side: a variable or literal substitutes freely
    // (it is a value in either strictness). A `Global` is different —
    // evaluating it runs its top-level body — so it may only replace a
    // *lazy* binder (the use sites demand it exactly where the thunk
    // would have been forced), and only a single use (a thunk shares
    // the evaluation; duplicating it would be a pessimization). Under a
    // strict binding the global evaluates here and now, and moving that
    // evaluation could drop or reorder an abort.
    if kind == LetKind::NonRec && is_atom(rhs) {
        let ok = is_value_atom(rhs) || (strictness == Strictness::Lazy && uses <= 1);
        if ok {
            let mut map = HashMap::new();
            map.insert(x, rhs.clone());
            return Some(substitute(body, &map));
        }
    }
    // let x = (let y = e in b) in body
    //   ==>  let y' = e in let x = b in body
    // when the inner binding is strict (unboxed) and its right-hand
    // side is pure and total: evaluating `e` early cannot abort,
    // diverge, or force anything, so no observable moves — only the
    // evaluation's position. This is what lets the known-constructor
    // rule below see through the let-wrapped boxes the inliner's
    // argument lets produce (`let acc = (let! y = n +# n in I# …) in
    // … case acc of …`), and with it the reboxing in a specialised
    // clone's loop disappears entirely.
    if kind == LetKind::NonRec {
        if let CoreExpr::Let(LetKind::NonRec, y, yt, ye, yb) = rhs {
            if cx.strictness(scope, yt) == Strictness::Strict && pure_total(ye) {
                let fresh = freshen(*y);
                let mut map = HashMap::new();
                map.insert(*y, CoreExpr::Var(fresh));
                let inner_body = substitute(yb, &map);
                return Some(CoreExpr::Let(
                    LetKind::NonRec,
                    fresh,
                    yt.clone(),
                    Box::new((**ye).clone()),
                    Box::new(CoreExpr::Let(
                        kind,
                        x,
                        ty.clone(),
                        Box::new(inner_body),
                        Box::new(body.clone()),
                    )),
                ));
            }
        }
    }
    // A binder whose right-hand side is a visible constructor
    // application: every `case x of …` in the body can select its
    // alternative now (evaluating the thunk could only have produced
    // exactly this constructor). Sound unconditionally when the fields
    // are atoms; with computed fields, only when the binder is forced at
    // a single site *not under a λ* (the field computation moves to
    // that site — same first-force timing, and no work can be
    // duplicated; a λ-body site would recompute a once-memoized thunk
    // on every call, so the walk refuses to descend there). Once no
    // scrutinee mentions x, the dead-let rule erases the allocation —
    // this is what unboxes a worker's reboxed recursive arguments.
    if kind == LetKind::NonRec {
        if let CoreExpr::Con(con, _, fields) = rhs {
            let atoms_only = fields.iter().all(is_value_atom);
            if atoms_only || uses == 1 {
                let mut stop = vec![x];
                for f in fields {
                    stop.extend(super::subst::free_term_vars(f));
                }
                let mut n = 0usize;
                let body = replace_known_case(body, x, con.name, fields, &stop, atoms_only, &mut n);
                if n > 0 {
                    return Some(CoreExpr::Let(
                        kind,
                        x,
                        ty.clone(),
                        Box::new(rhs.clone()),
                        Box::new(body),
                    ));
                }
            }
        }
    }
    None
}

/// Rewrites every `case v of alts` in `e` (where `v` is known to be the
/// constructor `cname` applied to `fields`) into the selected
/// alternative. Stops at any binder in `stop` — a shadower of `v` itself
/// or of a field's free variable — leaving that subtree untouched, and
/// refuses to descend into λ-bodies unless the fields are atoms
/// (rewriting there would move a shared computation into per-call code).
fn replace_known_case(
    e: &CoreExpr,
    v: Symbol,
    cname: Symbol,
    fields: &[CoreExpr],
    stop: &[Symbol],
    atoms_only: bool,
    n: &mut usize,
) -> CoreExpr {
    let go =
        |e: &CoreExpr, n: &mut usize| replace_known_case(e, v, cname, fields, stop, atoms_only, n);
    match e {
        CoreExpr::Case(scrut, alts) if matches!(&**scrut, CoreExpr::Var(s) if *s == v) => {
            if let Some(selected) = select_con(cname, fields, alts, Some(scrut)) {
                *n += 1;
                // The selection may expose further cases on `v` inside
                // the chosen alternative.
                return go(&selected, n);
            }
            let alts = alts
                .iter()
                .map(|a| known_case_alt(a, stop, &go, n))
                .collect();
            CoreExpr::Case(Box::new((**scrut).clone()), alts)
        }
        CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => {
            e.clone()
        }
        CoreExpr::App(f, a) => CoreExpr::app(go(f, n), go(a, n)),
        CoreExpr::TyApp(f, t) => CoreExpr::ty_app(go(f, n), t.clone()),
        CoreExpr::RepApp(f, r) => CoreExpr::rep_app(go(f, n), r.clone()),
        CoreExpr::Lam(x, t, b) => {
            if stop.contains(x) || !atoms_only {
                e.clone()
            } else {
                CoreExpr::lam(*x, t.clone(), go(b, n))
            }
        }
        CoreExpr::TyLam(a, k, b) => CoreExpr::ty_lam(*a, k.clone(), go(b, n)),
        CoreExpr::RepLam(r, b) => CoreExpr::rep_lam(*r, go(b, n)),
        CoreExpr::Let(kind, x, t, rhs, body) => {
            let shadowed = stop.contains(x);
            let rhs = if *kind == LetKind::Rec && shadowed {
                (**rhs).clone()
            } else {
                go(rhs, n)
            };
            let body = if shadowed {
                (**body).clone()
            } else {
                go(body, n)
            };
            CoreExpr::Let(*kind, *x, t.clone(), Box::new(rhs), Box::new(body))
        }
        CoreExpr::Case(scrut, alts) => {
            let scrut = go(scrut, n);
            let alts = alts
                .iter()
                .map(|a| known_case_alt(a, stop, &go, n))
                .collect();
            CoreExpr::Case(Box::new(scrut), alts)
        }
        CoreExpr::Con(con, ty_args, fields_) => CoreExpr::Con(
            Arc::clone(con),
            ty_args.clone(),
            fields_.iter().map(|f| go(f, n)).collect(),
        ),
        CoreExpr::Prim(op, args) => CoreExpr::Prim(*op, args.iter().map(|a| go(a, n)).collect()),
        CoreExpr::Tuple(args) => CoreExpr::Tuple(args.iter().map(|a| go(a, n)).collect()),
    }
}

fn known_case_alt(
    alt: &CoreAlt,
    stop: &[Symbol],
    go: &dyn Fn(&CoreExpr, &mut usize) -> CoreExpr,
    n: &mut usize,
) -> CoreAlt {
    let shadowed = match alt {
        CoreAlt::Con { binders, .. } | CoreAlt::Tuple { binders, .. } => {
            binders.iter().any(|(b, _)| stop.contains(b))
        }
        CoreAlt::Default { binder, .. } => {
            matches!(binder, Some((b, _)) if stop.contains(b))
        }
        CoreAlt::Lit { .. } => false,
    };
    if shadowed {
        return alt.clone();
    }
    match alt {
        CoreAlt::Con { con, binders, rhs } => CoreAlt::Con {
            con: Arc::clone(con),
            binders: binders.clone(),
            rhs: go(rhs, n),
        },
        CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
            lit: *lit,
            rhs: go(rhs, n),
        },
        CoreAlt::Tuple { binders, rhs } => CoreAlt::Tuple {
            binders: binders.clone(),
            rhs: go(rhs, n),
        },
        CoreAlt::Default { binder, rhs } => CoreAlt::Default {
            binder: binder.clone(),
            rhs: go(rhs, n),
        },
    }
}

fn rewrite_case(
    scrut: &CoreExpr,
    alts: &[CoreAlt],
    cx: &Cx<'_>,
    scope: &mut Scope,
) -> Option<CoreExpr> {
    match scrut {
        // case (let x = r in b) of alts  ==>  let x' = r in case b' of alts
        CoreExpr::Let(kind, x, ty, rhs, body) => {
            let fresh = freshen(*x);
            let mut map = HashMap::new();
            map.insert(*x, CoreExpr::Var(fresh));
            let rhs = if *kind == LetKind::Rec {
                substitute(rhs, &map)
            } else {
                (**rhs).clone()
            };
            let body = substitute(body, &map);
            Some(CoreExpr::Let(
                *kind,
                fresh,
                ty.clone(),
                Box::new(rhs),
                Box::new(CoreExpr::case(body, alts.to_vec())),
            ))
        }
        // case (case s of { p -> r }) of alts
        //   ==>  case s of { p -> case r of alts }     (single alt only)
        CoreExpr::Case(inner_scrut, inner_alts) if inner_alts.len() == 1 => {
            let pushed = match &inner_alts[0] {
                CoreAlt::Con { con, binders, rhs } => {
                    let (binders, rhs) = refresh_alt_binders(binders, rhs);
                    CoreAlt::Con {
                        con: Arc::clone(con),
                        binders,
                        rhs: CoreExpr::case(rhs, alts.to_vec()),
                    }
                }
                CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
                    lit: *lit,
                    rhs: CoreExpr::case(rhs.clone(), alts.to_vec()),
                },
                CoreAlt::Tuple { binders, rhs } => {
                    let (binders, rhs) = refresh_alt_binders(binders, rhs);
                    CoreAlt::Tuple {
                        binders,
                        rhs: CoreExpr::case(rhs, alts.to_vec()),
                    }
                }
                CoreAlt::Default { binder, rhs } => match binder {
                    Some((x, t)) => {
                        let fresh = freshen(*x);
                        let mut map = HashMap::new();
                        map.insert(*x, CoreExpr::Var(fresh));
                        CoreAlt::Default {
                            binder: Some((fresh, t.clone())),
                            rhs: CoreExpr::case(substitute(rhs, &map), alts.to_vec()),
                        }
                    }
                    None => CoreAlt::Default {
                        binder: None,
                        rhs: CoreExpr::case(rhs.clone(), alts.to_vec()),
                    },
                },
            };
            Some(CoreExpr::case((**inner_scrut).clone(), vec![pushed]))
        }
        // Multi-alternative inner case: push through join points, so no
        // continuation is duplicated (see `super::join`).
        CoreExpr::Case(inner_scrut, inner_alts) if inner_alts.len() > 1 => {
            let (out, joins) =
                super::join::case_of_case_with_joins(cx.env, scope, inner_scrut, inner_alts, alts)?;
            cx.join_points.set(cx.join_points.get() + joins);
            Some(out)
        }
        // case C fields of alts — the constructor is visible.
        CoreExpr::Con(con, _, fields) => select_con(con.name, fields, alts, Some(scrut)),
        // case (# fields #) of { (# binders #) -> rhs }.
        CoreExpr::Tuple(fields) => {
            let CoreAlt::Tuple { binders, rhs } = alts.first()? else {
                return None;
            };
            Some(bind_fields(binders, fields, rhs))
        }
        // case lit of alts.
        CoreExpr::Lit(l) => select_lit(*l, alts),
        // case $dC_τ of alts — a global CAF that is a constructor of
        // atoms (a dictionary): selection is free.
        CoreExpr::Global(g) => {
            let info = cx.global_cons.get(g)?;
            select_con(info.con, &info.fields.clone(), alts, Some(scrut))
        }
        _ => None,
    }
}

fn refresh_alt_binders(
    binders: &[(Symbol, Type)],
    rhs: &CoreExpr,
) -> (Vec<(Symbol, Type)>, CoreExpr) {
    let mut map = HashMap::new();
    let mut renamed = Vec::with_capacity(binders.len());
    for (x, t) in binders {
        let fresh = freshen(*x);
        map.insert(*x, CoreExpr::Var(fresh));
        renamed.push((fresh, t.clone()));
    }
    (renamed, substitute(rhs, &map))
}

/// Selects the alternative for a known constructor `cname`.
fn select_con(
    cname: Symbol,
    fields: &[CoreExpr],
    alts: &[CoreAlt],
    scrut: Option<&CoreExpr>,
) -> Option<CoreExpr> {
    for alt in alts {
        if let CoreAlt::Con { con, binders, rhs } = alt {
            if con.name == cname {
                return Some(bind_fields(binders, fields, rhs));
            }
        }
    }
    // No constructor alternative matched: fall to the default, but only
    // when re-materializing the scrutinee is effect-free.
    for alt in alts {
        if let CoreAlt::Default { binder, rhs } = alt {
            let scrut = scrut?;
            if !fields.iter().all(is_value_atom) {
                return None;
            }
            return Some(match binder {
                None => rhs.clone(),
                Some((x, t)) => CoreExpr::let_(*x, t.clone(), scrut.clone(), rhs.clone()),
            });
        }
    }
    None
}

/// Binds alternative binders to the known constructor's fields: value
/// atoms substitute, the rest (globals included — their evaluation
/// point must not move) become `let`s in field order (matching the
/// left-to-right evaluation order of constructor arguments), with
/// binders freshened so a field expression can never be captured by a
/// sibling.
fn bind_fields(binders: &[(Symbol, Type)], fields: &[CoreExpr], rhs: &CoreExpr) -> CoreExpr {
    debug_assert_eq!(binders.len(), fields.len(), "checked Core guarantees arity");
    let mut map = HashMap::new();
    let mut lets: Vec<(Symbol, Type, CoreExpr)> = Vec::new();
    for ((x, t), f) in binders.iter().zip(fields) {
        if is_value_atom(f) {
            map.insert(*x, f.clone());
        } else {
            let fresh = freshen(*x);
            map.insert(*x, CoreExpr::Var(fresh));
            lets.push((fresh, t.clone(), f.clone()));
        }
    }
    let mut out = substitute(rhs, &map);
    // First field outermost: constructor arguments evaluate left-to-right.
    for (x, t, f) in lets.into_iter().rev() {
        out = CoreExpr::let_(x, t, f, out);
    }
    out
}

fn select_lit(l: Literal, alts: &[CoreAlt]) -> Option<CoreExpr> {
    for alt in alts {
        if let CoreAlt::Lit { lit, rhs } = alt {
            if *lit == l {
                return Some(rhs.clone());
            }
        }
    }
    for alt in alts {
        if let CoreAlt::Default { binder, rhs } = alt {
            return Some(match binder {
                None => rhs.clone(),
                Some((x, _)) => {
                    let mut map = HashMap::new();
                    map.insert(*x, CoreExpr::Lit(l));
                    substitute(rhs, &map)
                }
            });
        }
    }
    None
}
