//! Case-of-case through join points.
//!
//! The simplifier's case-of-case rule pushes an outer `case` into an
//! inner one only when the inner case has a *single* alternative —
//! otherwise every outer alternative would be duplicated into every
//! inner branch. Join points lift that restriction the way GHC does:
//! each outer alternative is bound once as a **join point** — a
//! non-recursive, arity-saturated `let` of a λ whose every use is a
//! saturated tail call — and the pushed copies are one-line jumps:
//!
//! ```text
//! case (case s of { A as -> ra; B bs -> rb }) of { C cs -> e₁; D ds -> e₂ }
//!   ==>
//! let $j1 = λcs. e₁ in
//! let $j2 = λds. e₂ in
//! case s of { A as -> case ra of { C cs -> $j1 cs; D ds -> $j2 ds }
//!           ; B bs -> case rb of { C cs -> $j1 cs; D ds -> $j2 ds } }
//! ```
//!
//! At the Core level a join point is an ordinary typed `let`, so the
//! type checker and the §5.1 levity checks need no new cases. The cost
//! model is restored downstream: lowering (`crate::lower`) re-derives
//! the join property — non-escaping, tail-only, saturated — and emits
//! the machine's `join`/`jump` forms, which allocate nothing and push
//! no frames. Tiny outer alternatives (an atom, a rebox) are duplicated
//! directly instead of joined, with binders refreshed per copy; inner
//! alternative binders are refreshed before the push so a pushed copy
//! can never be captured.
//!
//! Nullary alternatives (literal patterns, binderless defaults) get a
//! dummy `Int#` parameter so the join stays a function — a zero-arity
//! "join" would be a lazy thunk, which is exactly the allocation this
//! pass exists to avoid.

use std::collections::HashMap;
use std::sync::Arc;

use levity_core::symbol::Symbol;
use levity_ir::freshen;
use levity_ir::terms::{CoreAlt, CoreExpr, DataConInfo, LetKind};
use levity_ir::typecheck::{type_of, Scope, ScopeEntry, TypeEnv};
use levity_ir::types::Type;
use levity_m::syntax::Literal;

use super::subst::substitute;

/// Outer alternatives at or below this size are duplicated into the
/// inner branches instead of becoming join points: a jump would cost as
/// much as the duplicate.
const DUP_LIMIT: usize = 6;

/// One prepared outer alternative: either small enough to duplicate, or
/// a join point to define and jump to.
enum Prepared {
    /// Clone the alternative into every inner branch (binders are
    /// refreshed per copy).
    Duplicate(CoreAlt),
    /// Define `name = λparams. rhs` once, jump from every copy.
    Join {
        name: Symbol,
        params: Vec<(Symbol, Type)>,
        /// The pattern, reproduced (with fresh binders) in the copies.
        pattern: AltPattern,
    },
}

/// The pattern half of a [`CoreAlt`], without its right-hand side.
enum AltPattern {
    Con(Arc<DataConInfo>),
    Lit(Literal),
    /// `Some` when the default names the scrutinee.
    Default(bool),
}

/// Rewrites `case (case s of inner_alts) of outer_alts` when the inner
/// case has several alternatives. Returns the rewritten expression and
/// the number of join points created, or `None` when a piece resists
/// (a type that will not compute here, an outer tuple alternative —
/// those only pair with single-alternative cases anyway).
pub(super) fn case_of_case_with_joins(
    env: &TypeEnv,
    scope: &mut Scope,
    inner_scrut: &CoreExpr,
    inner_alts: &[CoreAlt],
    outer_alts: &[CoreAlt],
) -> Option<(CoreExpr, usize)> {
    let int_hash = Type::con0(&env.builtins.int_hash);
    let mut prepared: Vec<Prepared> = Vec::with_capacity(outer_alts.len());
    let mut join_lets: Vec<(Symbol, Type, CoreExpr)> = Vec::new();
    for alt in outer_alts {
        if alt.rhs().size() <= DUP_LIMIT {
            prepared.push(Prepared::Duplicate(alt.clone()));
            continue;
        }
        let (params, rhs, pattern): (Vec<(Symbol, Type)>, CoreExpr, AltPattern) = match alt {
            CoreAlt::Con { con, binders, rhs } => (
                binders.clone(),
                rhs.clone(),
                AltPattern::Con(Arc::clone(con)),
            ),
            CoreAlt::Lit { lit, rhs } => (Vec::new(), rhs.clone(), AltPattern::Lit(*lit)),
            CoreAlt::Default { binder, rhs } => (
                binder.iter().cloned().collect(),
                rhs.clone(),
                AltPattern::Default(binder.is_some()),
            ),
            // An outer tuple alternative implies a single-alternative
            // case; the no-duplication rule already covers it.
            CoreAlt::Tuple { .. } => return None,
        };
        // Nullary patterns get a dummy Int# parameter: the join must
        // stay a λ (a zero-arity binding would be a thunk).
        let lam_params: Vec<(Symbol, Type)> = if params.is_empty() {
            vec![(freshen(Symbol::intern("unit")), int_hash.clone())]
        } else {
            params.clone()
        };
        // The join's type is λparams → type-of(rhs), computed under the
        // alternative's binders.
        for (x, t) in &lam_params {
            scope.push(*x, ScopeEntry::Term(t.clone()));
        }
        let rhs_ty = type_of(env, scope, &rhs);
        for _ in &lam_params {
            scope.pop();
        }
        let rhs_ty = rhs_ty.ok()?;
        let name = freshen(Symbol::intern("$j"));
        let join_ty = Type::funs(lam_params.iter().map(|(_, t)| t.clone()), rhs_ty);
        join_lets.push((name, join_ty, CoreExpr::lams(lam_params, rhs.clone())));
        prepared.push(Prepared::Join {
            name,
            params,
            pattern,
        });
    }

    // The pushed case: every inner alternative's rhs is scrutinised by
    // a fresh copy of the (now small) outer alternatives. The inner
    // binders are refreshed first, so a copy's free variables can never
    // be captured by the pattern it lands under.
    let pushed_alts: Vec<CoreAlt> = inner_alts
        .iter()
        .map(|ialt| {
            let refreshed = refresh_alt(ialt);
            let copies: Vec<CoreAlt> = prepared.iter().map(instantiate).collect();
            let rhs = CoreExpr::Case(Box::new(refreshed.rhs().clone()), copies);
            with_rhs(&refreshed, rhs)
        })
        .collect();
    let mut out = CoreExpr::Case(Box::new(inner_scrut.clone()), pushed_alts);
    for (name, ty, rhs) in join_lets.into_iter().rev() {
        out = CoreExpr::Let(LetKind::NonRec, name, ty, Box::new(rhs), Box::new(out));
    }
    let joins = prepared
        .iter()
        .filter(|p| matches!(p, Prepared::Join { .. }))
        .count();
    Some((out, joins))
}

/// Builds one copy of a prepared outer alternative for a pushed case:
/// a refreshed duplicate, or a pattern whose rhs jumps to the join.
fn instantiate(p: &Prepared) -> CoreAlt {
    match p {
        Prepared::Duplicate(alt) => refresh_alt(alt),
        Prepared::Join {
            name,
            params,
            pattern,
            ..
        } => {
            let fresh: Vec<(Symbol, Type)> = params
                .iter()
                .map(|(x, t)| (freshen(*x), t.clone()))
                .collect();
            let jump = if fresh.is_empty() {
                // Nullary pattern: feed the dummy Int# parameter.
                CoreExpr::app(CoreExpr::Var(*name), CoreExpr::int(0))
            } else {
                CoreExpr::apps(
                    CoreExpr::Var(*name),
                    fresh.iter().map(|(x, _)| CoreExpr::Var(*x)),
                )
            };
            match pattern {
                AltPattern::Con(con) => CoreAlt::Con {
                    con: Arc::clone(con),
                    binders: fresh,
                    rhs: jump,
                },
                AltPattern::Lit(l) => CoreAlt::Lit { lit: *l, rhs: jump },
                AltPattern::Default(true) => CoreAlt::Default {
                    binder: Some(fresh.into_iter().next().expect("default binder prepared")),
                    rhs: jump,
                },
                AltPattern::Default(false) => CoreAlt::Default {
                    binder: None,
                    rhs: jump,
                },
            }
        }
    }
}

/// Clones an alternative with freshened pattern binders (safe to place
/// several copies as siblings, or to move a copy under new binders).
fn refresh_alt(alt: &CoreAlt) -> CoreAlt {
    match alt {
        CoreAlt::Con { con, binders, rhs } => {
            let (binders, rhs) = refresh_binder_list(binders, rhs);
            CoreAlt::Con {
                con: Arc::clone(con),
                binders,
                rhs,
            }
        }
        CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
            lit: *lit,
            rhs: rhs.clone(),
        },
        CoreAlt::Tuple { binders, rhs } => {
            let (binders, rhs) = refresh_binder_list(binders, rhs);
            CoreAlt::Tuple { binders, rhs }
        }
        CoreAlt::Default { binder, rhs } => match binder {
            Some((x, t)) => {
                let fresh = freshen(*x);
                let mut map = HashMap::new();
                map.insert(*x, CoreExpr::Var(fresh));
                CoreAlt::Default {
                    binder: Some((fresh, t.clone())),
                    rhs: substitute(rhs, &map),
                }
            }
            None => CoreAlt::Default {
                binder: None,
                rhs: rhs.clone(),
            },
        },
    }
}

fn refresh_binder_list(
    binders: &[(Symbol, Type)],
    rhs: &CoreExpr,
) -> (Vec<(Symbol, Type)>, CoreExpr) {
    let mut map = HashMap::new();
    let mut renamed = Vec::with_capacity(binders.len());
    for (x, t) in binders {
        let fresh = freshen(*x);
        map.insert(*x, CoreExpr::Var(fresh));
        renamed.push((fresh, t.clone()));
    }
    (renamed, substitute(rhs, &map))
}

/// Replaces an alternative's right-hand side, keeping its pattern.
fn with_rhs(alt: &CoreAlt, rhs: CoreExpr) -> CoreAlt {
    match alt {
        CoreAlt::Con { con, binders, .. } => CoreAlt::Con {
            con: Arc::clone(con),
            binders: binders.clone(),
            rhs,
        },
        CoreAlt::Lit { lit, .. } => CoreAlt::Lit { lit: *lit, rhs },
        CoreAlt::Tuple { binders, .. } => CoreAlt::Tuple {
            binders: binders.clone(),
            rhs,
        },
        CoreAlt::Default { binder, .. } => CoreAlt::Default {
            binder: binder.clone(),
            rhs,
        },
    }
}
