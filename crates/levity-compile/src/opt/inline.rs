//! Inlining of saturated calls to small, non-recursive top-level
//! functions, with β-reduction.
//!
//! The specialiser leaves behind direct calls like `$fNum_Int#_+ acc n`
//! whose bodies are a couple of nodes; the worker/wrapper split leaves
//! thin wrappers at every call site. This pass replaces such calls with
//! the callee's body, substituting atomic arguments directly and
//! `let`-binding the rest.
//!
//! Two invariants keep the rewrite outcome-exact:
//!
//! * the callee's body is α-refreshed before grafting, so its binders
//!   can never capture call-site variables;
//! * non-atomic arguments are bound with the **last argument outermost**,
//!   because lowering a curried application evaluates strict arguments
//!   right-to-left (each `App` wraps its own `let!` around the spine
//!   built so far) — the `let` nest reproduces that order exactly.
//!
//! Functions on a call-graph cycle are never inlined (the pass would not
//! terminate, and loops belong in one place); everything else under the
//! size threshold is fair game, plus whatever the worker/wrapper pass
//! explicitly marks (wrappers must disappear at call sites for the
//! worker to tail-call itself directly).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use levity_core::rep::RepTy;
use levity_core::symbol::Symbol;
use levity_ir::terms::{CoreAlt, CoreExpr, LetKind, Program, TopBind};
use levity_ir::types::Type;

use super::subst::{globals_of, is_value_atom, refresh_binders, substitute};

/// Bodies above this node count are not worth duplicating.
const INLINE_SIZE_LIMIT: usize = 64;

/// One argument of a flattened application spine.
pub(super) enum SpinePart {
    Term(CoreExpr),
    Ty(Type),
    Rep(RepTy),
}

/// Flattens nested `App`/`TyApp`/`RepApp` into head + arguments in
/// application order.
pub(super) fn flatten_spine(e: &CoreExpr) -> (&CoreExpr, Vec<SpinePart>) {
    let mut parts = Vec::new();
    let mut cur = e;
    loop {
        match cur {
            CoreExpr::App(f, a) => {
                parts.push(SpinePart::Term((**a).clone()));
                cur = f;
            }
            CoreExpr::TyApp(f, t) => {
                parts.push(SpinePart::Ty(t.clone()));
                cur = f;
            }
            CoreExpr::RepApp(f, r) => {
                parts.push(SpinePart::Rep(r.clone()));
                cur = f;
            }
            _ => break,
        }
    }
    parts.reverse();
    (cur, parts)
}

/// β-reduces a literal redex — an application spine whose head is a
/// λ/Λ-chain, as left behind by other passes. Used by the simplifier.
pub(super) fn reduce_redex(e: &CoreExpr) -> Option<CoreExpr> {
    if !matches!(
        e,
        CoreExpr::App(..) | CoreExpr::TyApp(..) | CoreExpr::RepApp(..)
    ) {
        return None;
    }
    let (head, parts) = flatten_spine(e);
    if !matches!(
        head,
        CoreExpr::Lam(..) | CoreExpr::TyLam(..) | CoreExpr::RepLam(..)
    ) || parts.is_empty()
    {
        return None;
    }
    beta(head, &parts)
}

// Capture audit (why the graft cannot capture, even when a let-bound
// argument's name shadows a free variable of the inlined body across a
// `Case` binder):
//
// 1. `refresh_binders` renames EVERY term binder of the body — the λ
//    chain itself included — to a globally fresh name before anything
//    else happens. The λ binders that become `pending` let binders are
//    therefore fresh and can never collide with a call-site variable
//    free in a later argument's right-hand side, nor with any `Case`
//    binder of the body (those were freshened by the same walk).
// 2. Value atoms substitute through `substitute`, which freshens every
//    binder it walks under on the way down, so an argument variable
//    passing a `Case` alternative whose (already fresh) binder happened
//    to collide would be re-freshened again — collision is impossible
//    twice over.
// 3. Type/rep arguments go through `subst_ty_expr`/`subst_rep_expr`,
//    which rename a shadowing `Λ` quantifier whenever the payload's
//    free variables would be captured.
//
// `tests/differential.rs` (`inliner_alpha_refresh_survives_shadowing`)
// pins the observable consequences against the O0 baseline.
fn beta(body: &CoreExpr, parts: &[SpinePart]) -> Option<CoreExpr> {
    let mut cur = refresh_binders(body);
    let mut atom_map: HashMap<Symbol, CoreExpr> = HashMap::new();
    // (binder, type, rhs) for non-atomic arguments, in argument order.
    let mut pending: Vec<(Symbol, Type, CoreExpr)> = Vec::new();
    let mut leftover = Vec::new();
    let mut it = parts.iter();
    while let Some(part) = it.next() {
        match (part, cur) {
            (SpinePart::Ty(t), CoreExpr::TyLam(a, _, inner)) => {
                cur = super::subst::subst_ty_expr(&inner, a, t);
            }
            (SpinePart::Rep(r), CoreExpr::RepLam(v, inner)) => {
                cur = super::subst::subst_rep_expr(&inner, v, r);
            }
            (SpinePart::Term(e), CoreExpr::Lam(x, ty, inner)) => {
                // Only variables and literals substitute directly: a
                // `Global` must keep its evaluation point (a strict
                // binding evaluates it exactly once, here and now), so
                // it is let-bound like any other expression.
                if is_value_atom(e) {
                    atom_map.insert(x, e.clone());
                } else {
                    pending.push((x, ty, e.clone()));
                }
                cur = *inner;
            }
            (_, other) => {
                // The chain ran out (oversaturation) or the shapes
                // mismatch. Oversaturated *term* arguments can simply be
                // re-applied around the reduced prefix; a type argument
                // with no Λ to consume means we should not have tried.
                cur = other;
                match part {
                    SpinePart::Term(e) => leftover.push(SpinePart::Term(e.clone())),
                    _ => return None,
                }
                for rest in it.by_ref() {
                    match rest {
                        SpinePart::Term(e) => leftover.push(SpinePart::Term(e.clone())),
                        _ => return None,
                    }
                }
                break;
            }
        }
    }
    let mut out = substitute(&cur, &atom_map);
    // Last argument outermost: lowering evaluates curried-call arguments
    // right-to-left, and the let-nest must agree.
    for (x, ty, rhs) in pending {
        out = CoreExpr::Let(LetKind::NonRec, x, ty, Box::new(rhs), Box::new(out));
    }
    for part in leftover {
        if let SpinePart::Term(e) = part {
            out = CoreExpr::app(out, e);
        }
    }
    Some(out)
}

/// The set of globals that participate in a call-graph cycle (including
/// self-recursion); these are never inlined.
fn cyclic_globals(prog: &Program) -> HashSet<Symbol> {
    let mut edges: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
    for b in &prog.bindings {
        let mut callees = Vec::new();
        globals_of(&b.expr, &mut callees);
        edges.insert(b.name, callees);
    }
    let mut cyclic = HashSet::new();
    for b in &prog.bindings {
        // DFS from each binding's callees; a path back to the binding
        // itself marks the whole path's endpoints lazily (per-node check
        // keeps this simple and the program sizes small).
        let mut stack: Vec<Symbol> = edges.get(&b.name).cloned().unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(g) = stack.pop() {
            if g == b.name {
                cyclic.insert(b.name);
                break;
            }
            if seen.insert(g) {
                if let Some(next) = edges.get(&g) {
                    stack.extend(next.iter().copied());
                }
            }
        }
    }
    cyclic
}

/// Runs one inlining pass over the program. `force_inline` names
/// bindings (worker/wrapper wrappers) inlined regardless of size.
/// Returns the rewritten program and the number of call sites inlined.
pub fn inline(prog: &Program, force_inline: &HashSet<Symbol>) -> (Program, usize) {
    let cyclic = cyclic_globals(prog);
    let mut bodies: HashMap<Symbol, CoreExpr> = HashMap::new();
    for b in &prog.bindings {
        // A worker/wrapper wrapper sits on a cycle *through its worker*
        // (the worker's recursive calls go back through the wrapper),
        // but never mentions itself — inlining it terminates, and must
        // happen for the worker to call itself directly. The worker is
        // the loop breaker.
        let allowed = if force_inline.contains(&b.name) {
            !super::subst::mentions_global(&b.expr, b.name)
        } else {
            b.expr.size() <= INLINE_SIZE_LIMIT && !cyclic.contains(&b.name)
        };
        if allowed {
            bodies.insert(b.name, b.expr.clone());
        }
    }
    let mut count = 0usize;
    let bindings = prog
        .bindings
        .iter()
        .map(|b| TopBind {
            name: b.name,
            ty: b.ty.clone(),
            expr: walk(&b.expr, &bodies, &mut count),
        })
        .collect();
    (
        Program {
            data_decls: prog.data_decls.clone(),
            bindings,
        },
        count,
    )
}

fn walk(e: &CoreExpr, bodies: &HashMap<Symbol, CoreExpr>, count: &mut usize) -> CoreExpr {
    // Try the node itself as a saturated call first.
    if matches!(e, CoreExpr::App(..)) {
        let (head, parts) = flatten_spine(e);
        if let CoreExpr::Global(g) = head {
            if let Some(body) = bodies.get(g) {
                // Saturation: at least one term argument, and the binder
                // chain must consume every type/rep argument.
                let has_term = parts.iter().any(|p| matches!(p, SpinePart::Term(_)));
                if has_term {
                    if let Some(reduced) = beta(body, &parts) {
                        *count += 1;
                        // Process the grafted body's own sub-calls (the
                        // graft is fresh code from a *pre-pass* snapshot,
                        // so this cannot loop).
                        return walk(&reduced, bodies, count);
                    }
                }
            }
        }
    }
    match e {
        CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => {
            e.clone()
        }
        CoreExpr::App(f, a) => CoreExpr::app(walk(f, bodies, count), walk(a, bodies, count)),
        CoreExpr::TyApp(f, t) => CoreExpr::ty_app(walk(f, bodies, count), t.clone()),
        CoreExpr::RepApp(f, r) => CoreExpr::rep_app(walk(f, bodies, count), r.clone()),
        CoreExpr::Lam(x, t, b) => CoreExpr::lam(*x, t.clone(), walk(b, bodies, count)),
        CoreExpr::TyLam(a, k, b) => CoreExpr::ty_lam(*a, k.clone(), walk(b, bodies, count)),
        CoreExpr::RepLam(r, b) => CoreExpr::rep_lam(*r, walk(b, bodies, count)),
        CoreExpr::Let(kind, x, t, rhs, body) => CoreExpr::Let(
            *kind,
            *x,
            t.clone(),
            Box::new(walk(rhs, bodies, count)),
            Box::new(walk(body, bodies, count)),
        ),
        CoreExpr::Case(scrut, alts) => CoreExpr::Case(
            Box::new(walk(scrut, bodies, count)),
            alts.iter()
                .map(|alt| match alt {
                    CoreAlt::Con { con, binders, rhs } => CoreAlt::Con {
                        con: Arc::clone(con),
                        binders: binders.clone(),
                        rhs: walk(rhs, bodies, count),
                    },
                    CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
                        lit: *lit,
                        rhs: walk(rhs, bodies, count),
                    },
                    CoreAlt::Tuple { binders, rhs } => CoreAlt::Tuple {
                        binders: binders.clone(),
                        rhs: walk(rhs, bodies, count),
                    },
                    CoreAlt::Default { binder, rhs } => CoreAlt::Default {
                        binder: binder.clone(),
                        rhs: walk(rhs, bodies, count),
                    },
                })
                .collect(),
        ),
        CoreExpr::Con(con, ty_args, fields) => CoreExpr::Con(
            Arc::clone(con),
            ty_args.clone(),
            fields.iter().map(|f| walk(f, bodies, count)).collect(),
        ),
        CoreExpr::Prim(op, args) => {
            CoreExpr::Prim(*op, args.iter().map(|a| walk(a, bodies, count)).collect())
        }
        CoreExpr::Tuple(args) => {
            CoreExpr::Tuple(args.iter().map(|a| walk(a, bodies, count)).collect())
        }
    }
}
