//! Call-site specialisation of constrained *functions* — GHC's
//! `SPECIALISE`, driven automatically from call sites.
//!
//! [`specialise`](super::specialise) refunds the §7.3 dictionary cost
//! only where a selector is applied to a statically known dictionary
//! *directly*. A constrained function such as
//!
//! ```text
//! square :: Num a => a -> a          -- Core: Λa. λ(d :: Num a). λx. …
//! ```
//!
//! re-abstracts the dictionary: every call `square @Int $dNum_Int x`
//! pays the full dictionary walk inside `square`'s body, where `d` is a
//! λ-bound variable and nothing is statically known. This pass closes
//! that gap. For each top-level binding whose type has the elaborated
//! constrained shape
//!
//! ```text
//! ∀ r*. ∀ a*. C₁ τ₁ -> … -> Cₘ τₘ -> rest        (m ≥ 1)
//! ```
//!
//! it collects, from every call site in the program, the *statically
//! known dictionary tuples* flowing in — spines
//! `f @ρ… @τ… $d₁ … $dₘ …` whose representation arguments are concrete,
//! whose type arguments are closed, and whose dictionary arguments are
//! top-level dictionary globals — and emits one monomorphised clone per
//! distinct tuple:
//!
//! ```text
//! $ssquare@Int :: Int -> Int = λx. (*) @Int $dNum_Int x x
//! ```
//!
//! with the type/rep arguments substituted and the dictionary λs
//! dropped (each dictionary variable replaced by its global). Call
//! sites are rewritten to the clones. Discovery iterates: a clone's
//! body may itself contain newly concrete constrained calls (`square`
//! calling a constrained helper, mutually recursive constrained
//! functions calling each other), so each discovery round re-scans the
//! clones made by the last one, up to a bounded depth.
//!
//! The clone bodies then flow through the ordinary pipeline —
//! dictionary specialisation turns their projections into direct
//! instance-method calls, inlining and the simplifier clean up, and
//! worker/wrapper unboxes their arguments — so a specialised clone ends
//! up exactly as fast as a hand-monomorphised function. The originals
//! are left in place; [`usage`](super::usage) drops the unreachable
//! ones afterwards.
//!
//! Dropping a dictionary λ is outcome-exact: a dictionary is a lifted
//! record whose evaluation builds a constructor of instance-method
//! globals, so replacing the lazily bound variable with the global
//! itself preserves every observable (the same projection forces the
//! same fields in the same order; only sharing of the dictionary
//! closure differs, and dictionary construction cannot abort before
//! its strict fields — which evaluate identically at either binding).

use std::collections::{HashMap, HashSet};

use levity_core::rep::RepTy;
use levity_core::symbol::Symbol;
use levity_ir::terms::{CoreAlt, CoreExpr, Program, TopBind};
use levity_ir::types::Type;

use super::inline::{flatten_spine, SpinePart};
use super::specialise::recognize_selector;
use super::subst::{strip_erased, subst_rep_expr, subst_ty_expr, substitute};

/// Bound on discovery rounds: each round may only specialise calls
/// found inside clones created by the previous one, so this caps the
/// depth of constrained call *chains* that propagate (and cuts off
/// constrained polymorphic recursion at ever-growing types).
const DISCOVERY_ROUNDS: usize = 5;

/// Hard cap on clones per pass invocation — a backstop far above any
/// realistic program, so a pathological call graph cannot blow up the
/// binding list.
const MAX_CLONES: usize = 256;

/// One quantifier of a candidate's prefix, with the binder names used
/// on the type side and on the expression side (elaboration keeps them
/// equal, but the pass only relies on the *sorts* lining up).
enum Quant {
    Rep { ty_name: Symbol, expr_name: Symbol },
    Ty { ty_name: Symbol, expr_name: Symbol },
}

/// A specialisable binding: `∀ r*. ∀ a*. C₁ τ₁ -> … -> Cₘ τₘ -> rest`,
/// whose expression mirrors the prefix with Λ/λ binders.
struct Candidate {
    quants: Vec<Quant>,
    /// The expression-side dictionary binder names, in order.
    dict_binders: Vec<Symbol>,
}

/// The type/rep/dictionary arguments of one specialisable call site.
struct SpecArgs {
    reps: Vec<(Symbol, RepTy)>,
    tys: Vec<(Symbol, Type)>,
    dicts: Vec<Symbol>,
}

impl SpecArgs {
    /// A stable identity for the tuple (types render deterministically).
    fn key(&self, target: Symbol) -> String {
        use std::fmt::Write;
        let mut k = format!("{target}");
        for (_, r) in &self.reps {
            let _ = write!(k, "|{r}");
        }
        for (_, t) in &self.tys {
            let _ = write!(k, "|{t}");
        }
        for d in &self.dicts {
            let _ = write!(k, "|{d}");
        }
        k
    }
}

/// A clone being built this invocation (the persistent key → name map
/// lives in the caller's cache; see [`specialise_functions`]).
struct CloneSpec {
    name: Symbol,
    args: SpecArgs,
}

/// Recognizes a specialisable binding. Selectors are excluded — they
/// have the constrained shape too, but the dictionary-projection pass
/// already rewrites their applications in place, and cloning them would
/// only churn names.
fn recognize_candidate(bind: &TopBind) -> Option<Candidate> {
    if recognize_selector(&bind.expr).is_some() {
        return None;
    }
    let mut quant_tys: Vec<(bool, Symbol)> = Vec::new(); // (is_rep, name)
    let mut ty = &bind.ty;
    loop {
        match ty {
            Type::ForallRep(r, body) => {
                quant_tys.push((true, *r));
                ty = body;
            }
            Type::ForallTy(a, _, body) => {
                quant_tys.push((false, *a));
                ty = body;
            }
            _ => break,
        }
    }
    let mut dict_count = 0usize;
    while let Type::Fun(dom, cod) = ty {
        if !matches!(**dom, Type::Dict(..)) {
            break;
        }
        dict_count += 1;
        ty = cod;
    }
    if dict_count == 0 {
        return None;
    }
    // The expression must mirror the prefix binder-for-binder.
    let mut quants = Vec::with_capacity(quant_tys.len());
    let mut expr = &bind.expr;
    for (is_rep, ty_name) in &quant_tys {
        match (is_rep, expr) {
            (true, CoreExpr::RepLam(r, body)) => {
                quants.push(Quant::Rep {
                    ty_name: *ty_name,
                    expr_name: *r,
                });
                expr = body;
            }
            (false, CoreExpr::TyLam(a, _, body)) => {
                quants.push(Quant::Ty {
                    ty_name: *ty_name,
                    expr_name: *a,
                });
                expr = body;
            }
            _ => return None,
        }
    }
    let mut dict_binders = Vec::with_capacity(dict_count);
    for _ in 0..dict_count {
        let CoreExpr::Lam(d, Type::Dict(..), body) = expr else {
            return None;
        };
        dict_binders.push(*d);
        expr = body;
    }
    Some(Candidate {
        quants,
        dict_binders,
    })
}

/// Tries to read a specialisable prefix off a call spine: one concrete
/// rep / closed type argument per quantifier, then one top-level
/// dictionary global per dictionary binder.
fn match_prefix(
    cand: &Candidate,
    parts: &[SpinePart],
    dict_globals: &HashSet<Symbol>,
) -> Option<SpecArgs> {
    let prefix_len = cand.quants.len() + cand.dict_binders.len();
    if parts.len() < prefix_len {
        return None;
    }
    let mut reps = Vec::new();
    let mut tys = Vec::new();
    let mut it = parts.iter();
    for q in &cand.quants {
        match (q, it.next()?) {
            (Quant::Rep { expr_name, .. }, SpinePart::Rep(r)) => {
                if !r.free_vars().is_empty() {
                    return None;
                }
                reps.push((*expr_name, r.clone()));
            }
            (Quant::Ty { expr_name, .. }, SpinePart::Ty(t)) => {
                if !t.free_ty_vars().is_empty() || !t.free_rep_vars().is_empty() {
                    return None;
                }
                tys.push((*expr_name, t.clone()));
            }
            _ => return None,
        }
    }
    let mut dicts = Vec::new();
    for _ in &cand.dict_binders {
        let SpinePart::Term(e) = it.next()? else {
            return None;
        };
        let CoreExpr::Global(g) = strip_erased(e) else {
            return None;
        };
        if !dict_globals.contains(g) {
            return None;
        }
        dicts.push(*g);
    }
    Some(SpecArgs { reps, tys, dicts })
}

/// Builds the monomorphised clone of `bind` at the given arguments.
fn build_clone(bind: &TopBind, cand: &Candidate, spec: &CloneSpec) -> TopBind {
    // Type: peel the quantifiers and dictionary domains, substitute.
    let mut ty = &bind.ty;
    let mut ty_substs: Vec<(Symbol, Result<&Type, &RepTy>)> = Vec::new();
    {
        let mut rep_it = spec.args.reps.iter();
        let mut ty_it = spec.args.tys.iter();
        for q in &cand.quants {
            match (q, ty) {
                (Quant::Rep { ty_name, .. }, Type::ForallRep(_, body)) => {
                    let (_, r) = rep_it.next().expect("rep arity checked");
                    ty_substs.push((*ty_name, Err(r)));
                    ty = body;
                }
                (Quant::Ty { ty_name, .. }, Type::ForallTy(_, _, body)) => {
                    let (_, t) = ty_it.next().expect("ty arity checked");
                    ty_substs.push((*ty_name, Ok(t)));
                    ty = body;
                }
                _ => unreachable!("candidate shape re-checked this pass"),
            }
        }
    }
    for _ in &cand.dict_binders {
        let Type::Fun(_, cod) = ty else {
            unreachable!("candidate shape re-checked this pass")
        };
        ty = cod;
    }
    let mut clone_ty = ty.clone();
    for (name, arg) in &ty_substs {
        clone_ty = match arg {
            Ok(t) => clone_ty.subst_ty(*name, t),
            Err(r) => clone_ty.subst_rep(*name, r),
        };
    }

    // Expression: peel the Λ/λ prefix, substitute reps and types into
    // the remaining body, then replace each dictionary variable with
    // its global (capture-avoiding; the body is α-refreshed).
    let mut expr = &bind.expr;
    for q in &cand.quants {
        expr = match (q, expr) {
            (Quant::Rep { .. }, CoreExpr::RepLam(_, body))
            | (Quant::Ty { .. }, CoreExpr::TyLam(_, _, body)) => body,
            _ => unreachable!("candidate shape re-checked this pass"),
        };
    }
    for _ in &cand.dict_binders {
        let CoreExpr::Lam(_, _, body) = expr else {
            unreachable!("candidate shape re-checked this pass")
        };
        expr = body;
    }
    let mut body = expr.clone();
    for (name, r) in &spec.args.reps {
        body = subst_rep_expr(&body, *name, r);
    }
    for (name, t) in &spec.args.tys {
        body = subst_ty_expr(&body, *name, t);
    }
    let dict_map: HashMap<Symbol, CoreExpr> = cand
        .dict_binders
        .iter()
        .zip(&spec.args.dicts)
        .map(|(d, g)| (*d, CoreExpr::Global(*g)))
        .collect();
    body = substitute(&body, &dict_map);

    TopBind {
        name: spec.name,
        ty: clone_ty,
        expr: body,
    }
}

/// Derives a readable, unique clone name: `$s<fn>@<ty>…`, suffixed with
/// a counter on collision.
fn clone_name(target: Symbol, args: &SpecArgs, taken: &HashSet<Symbol>) -> Symbol {
    use std::fmt::Write;
    let mut base = format!("$s{target}");
    for (_, r) in &args.reps {
        let _ = write!(base, "@{r}");
    }
    for (_, t) in &args.tys {
        let _ = write!(base, "@{t}");
    }
    let mut name = Symbol::intern(&base);
    let mut n = 1usize;
    while taken.contains(&name) {
        name = Symbol::intern(&format!("{base}_{n}"));
        n += 1;
    }
    name
}

/// Collects the keys of every specialisable call site in `e` that is
/// not yet scheduled.
fn scan(
    e: &CoreExpr,
    candidates: &HashMap<Symbol, Candidate>,
    dict_globals: &HashSet<Symbol>,
    clones: &HashMap<String, Symbol>,
    found: &mut Vec<(Symbol, SpecArgs)>,
) {
    if matches!(
        e,
        CoreExpr::App(..) | CoreExpr::TyApp(..) | CoreExpr::RepApp(..)
    ) {
        let (head, parts) = flatten_spine(e);
        if let CoreExpr::Global(f) = head {
            if let Some(cand) = candidates.get(f) {
                if let Some(args) = match_prefix(cand, &parts, dict_globals) {
                    let key = args.key(*f);
                    if !clones.contains_key(&key) && !found.iter().any(|(g, a)| a.key(*g) == key) {
                        found.push((*f, args));
                    }
                }
            }
        }
    }
    match e {
        CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => {}
        CoreExpr::App(f, a) => {
            scan(f, candidates, dict_globals, clones, found);
            scan(a, candidates, dict_globals, clones, found);
        }
        CoreExpr::TyApp(f, _) | CoreExpr::RepApp(f, _) => {
            scan(f, candidates, dict_globals, clones, found);
        }
        CoreExpr::Lam(_, _, b) | CoreExpr::TyLam(_, _, b) | CoreExpr::RepLam(_, b) => {
            scan(b, candidates, dict_globals, clones, found);
        }
        CoreExpr::Let(_, _, _, rhs, body) => {
            scan(rhs, candidates, dict_globals, clones, found);
            scan(body, candidates, dict_globals, clones, found);
        }
        CoreExpr::Case(scrut, alts) => {
            scan(scrut, candidates, dict_globals, clones, found);
            for alt in alts {
                scan(alt.rhs(), candidates, dict_globals, clones, found);
            }
        }
        CoreExpr::Con(_, _, fields) => fields
            .iter()
            .for_each(|f| scan(f, candidates, dict_globals, clones, found)),
        CoreExpr::Prim(_, args) | CoreExpr::Tuple(args) => args
            .iter()
            .for_each(|a| scan(a, candidates, dict_globals, clones, found)),
    }
}

/// Rewrites every specialisable call site to its clone.
fn redirect(
    e: &CoreExpr,
    candidates: &HashMap<Symbol, Candidate>,
    dict_globals: &HashSet<Symbol>,
    clones: &HashMap<String, Symbol>,
    count: &mut usize,
) -> CoreExpr {
    let again =
        |e: &CoreExpr, count: &mut usize| redirect(e, candidates, dict_globals, clones, count);
    if matches!(
        e,
        CoreExpr::App(..) | CoreExpr::TyApp(..) | CoreExpr::RepApp(..)
    ) {
        let (head, parts) = flatten_spine(e);
        if let CoreExpr::Global(f) = head {
            if let Some(cand) = candidates.get(f) {
                if let Some(args) = match_prefix(cand, &parts, dict_globals) {
                    if let Some(clone) = clones.get(&args.key(*f)) {
                        *count += 1;
                        let prefix_len = cand.quants.len() + cand.dict_binders.len();
                        let mut out = CoreExpr::Global(*clone);
                        for part in &parts[prefix_len..] {
                            out = match part {
                                SpinePart::Term(a) => CoreExpr::app(out, again(a, count)),
                                SpinePart::Ty(t) => CoreExpr::ty_app(out, t.clone()),
                                SpinePart::Rep(r) => CoreExpr::rep_app(out, r.clone()),
                            };
                        }
                        return out;
                    }
                }
            }
        }
    }
    match e {
        CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => {
            e.clone()
        }
        CoreExpr::App(f, a) => CoreExpr::app(again(f, count), again(a, count)),
        CoreExpr::TyApp(f, t) => CoreExpr::ty_app(again(f, count), t.clone()),
        CoreExpr::RepApp(f, r) => CoreExpr::rep_app(again(f, count), r.clone()),
        CoreExpr::Lam(x, t, b) => CoreExpr::lam(*x, t.clone(), again(b, count)),
        CoreExpr::TyLam(a, k, b) => CoreExpr::ty_lam(*a, k.clone(), again(b, count)),
        CoreExpr::RepLam(r, b) => CoreExpr::rep_lam(*r, again(b, count)),
        CoreExpr::Let(kind, x, t, rhs, body) => CoreExpr::Let(
            *kind,
            *x,
            t.clone(),
            Box::new(again(rhs, count)),
            Box::new(again(body, count)),
        ),
        CoreExpr::Case(scrut, alts) => CoreExpr::Case(
            Box::new(again(scrut, count)),
            alts.iter()
                .map(|alt| match alt {
                    CoreAlt::Con { con, binders, rhs } => CoreAlt::Con {
                        con: std::sync::Arc::clone(con),
                        binders: binders.clone(),
                        rhs: again(rhs, count),
                    },
                    CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
                        lit: *lit,
                        rhs: again(rhs, count),
                    },
                    CoreAlt::Tuple { binders, rhs } => CoreAlt::Tuple {
                        binders: binders.clone(),
                        rhs: again(rhs, count),
                    },
                    CoreAlt::Default { binder, rhs } => CoreAlt::Default {
                        binder: binder.clone(),
                        rhs: again(rhs, count),
                    },
                })
                .collect(),
        ),
        CoreExpr::Con(con, ty_args, fields) => CoreExpr::Con(
            std::sync::Arc::clone(con),
            ty_args.clone(),
            fields.iter().map(|f| again(f, count)).collect(),
        ),
        CoreExpr::Prim(op, args) => {
            CoreExpr::Prim(*op, args.iter().map(|a| again(a, count)).collect())
        }
        CoreExpr::Tuple(args) => CoreExpr::Tuple(args.iter().map(|a| again(a, count)).collect()),
    }
}

/// Runs function specialisation over a whole program. Returns the
/// rewritten program (clones appended after their originals), the
/// number of **new** clones created, and the number of call sites
/// redirected.
///
/// `cache` is the persistent key → clone-name map, threaded across the
/// caller's fixed-point rounds: a later round that exposes another
/// call site with an already-specialised tuple (say, after
/// let-of-atom collapsed `let d = $dNum_Int in f @Int d`) redirects it
/// to the *existing* clone instead of minting a duplicate.
pub fn specialise_functions(
    prog: &Program,
    cache: &mut HashMap<String, Symbol>,
) -> (Program, usize, usize) {
    let mut candidates: HashMap<Symbol, Candidate> = HashMap::new();
    let mut dict_globals: HashSet<Symbol> = HashSet::new();
    let mut taken: HashSet<Symbol> = HashSet::new();
    for b in &prog.bindings {
        taken.insert(b.name);
        if matches!(b.ty, Type::Dict(..)) {
            dict_globals.insert(b.name);
        }
        if let Some(c) = recognize_candidate(b) {
            candidates.insert(b.name, c);
        }
    }
    if candidates.is_empty() {
        return (prog.clone(), 0, 0);
    }

    let mut bindings = prog.bindings.clone();
    let cached = cache.len();
    // Discovery: round 0 scans the original program; each later round
    // need only scan the clones the previous round appended, since
    // nothing else changed.
    let mut scan_from = 0usize;
    for _ in 0..DISCOVERY_ROUNDS {
        let mut found: Vec<(Symbol, SpecArgs)> = Vec::new();
        for b in &bindings[scan_from..] {
            scan(&b.expr, &candidates, &dict_globals, cache, &mut found);
        }
        scan_from = bindings.len();
        if found.is_empty() || cache.len() >= MAX_CLONES {
            break;
        }
        for (target, args) in found {
            if cache.len() >= MAX_CLONES {
                break;
            }
            let name = clone_name(target, &args, &taken);
            taken.insert(name);
            let spec = CloneSpec { name, args };
            let bind = prog
                .bindings
                .iter()
                .find(|b| b.name == target)
                .expect("candidate came from the program");
            let cand = &candidates[&target];
            bindings.push(build_clone(bind, cand, &spec));
            cache.insert(spec.args.key(target), spec.name);
        }
    }
    let new_clones = cache.len() - cached;
    if cache.is_empty() {
        return (prog.clone(), 0, 0);
    }

    // Redirection: every matching call site — in originals and clones
    // alike, so recursive and mutually recursive constrained functions
    // call their own clones directly.
    let mut redirected = 0usize;
    let bindings = bindings
        .iter()
        .map(|b| TopBind {
            name: b.name,
            ty: b.ty.clone(),
            expr: redirect(&b.expr, &candidates, &dict_globals, cache, &mut redirected),
        })
        .collect();
    (
        Program {
            data_decls: prog.data_decls.clone(),
            bindings,
        },
        new_clones,
        redirected,
    )
}
