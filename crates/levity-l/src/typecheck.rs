//! The typing judgments of `L` (Figure 3).
//!
//! Three judgments:
//!
//! * `Γ ⊢ κ kind` — kind validity (K_CONST, K_VAR);
//! * `Γ ⊢ τ : κ` — type validity (T_INT … T_ALLREP);
//! * `Γ ⊢ e : τ` — term validity (E_VAR … E_INTLIT).
//!
//! The rules E_APP and E_LAM carry the highlighted premise
//! `Γ ⊢ τ₁ : TYPE υ`: the argument/binder type's kind must be *concrete*.
//! These premises are the formal counterpart of the two §5.1 restrictions,
//! and they are what makes the Compilation theorem (§6.3) go through.

use std::fmt;

use levity_core::symbol::Symbol;

use crate::ctx::Ctx;
use crate::subst::{alpha_eq_ty, subst_rep_in_ty, subst_ty_in_ty};
use crate::syntax::{ConcreteRep, Expr, LKind, Rho, Ty};

/// A typing error in `L`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// An unbound term variable.
    UnboundVar(Symbol),
    /// An unbound type variable.
    UnboundTyVar(Symbol),
    /// An unbound representation variable (premise of K_VAR).
    UnboundRepVar(Symbol),
    /// Applied a non-function.
    NotAFunction(Ty),
    /// Type-applied a term whose type is not `∀α:κ. τ`.
    NotAForall(Ty),
    /// Rep-applied a term whose type is not `∀r. τ`.
    NotARepForall(Ty),
    /// Argument type does not match the function's domain.
    ArgMismatch {
        /// What the function expects.
        expected: Ty,
        /// What the argument has.
        actual: Ty,
    },
    /// Type argument's kind does not match the quantifier's kind.
    KindMismatch {
        /// The quantifier's kind.
        expected: LKind,
        /// The argument type's kind.
        actual: LKind,
    },
    /// The highlighted premise of E_APP/E_LAM failed: the type's kind is
    /// `TYPE r` for a representation variable — levity polymorphism in a
    /// place where the calling convention must be known (§5.1).
    LevityPolymorphic {
        /// The offending type.
        ty: Ty,
        /// Its (non-concrete) kind.
        kind: LKind,
    },
    /// T_ALLREP's side condition failed: `∀r. τ` where `τ : TYPE r`.
    RepEscapes {
        /// The bound representation variable.
        rep_var: Symbol,
        /// The body type whose kind mentions it.
        body: Ty,
    },
    /// Scrutinee of `case` is not an `Int`.
    CaseScrutineeNotInt(Ty),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            TypeError::UnboundTyVar(a) => write!(f, "unbound type variable `{a}`"),
            TypeError::UnboundRepVar(r) => write!(f, "unbound representation variable `{r}`"),
            TypeError::NotAFunction(t) => write!(f, "expected a function, got `{t}`"),
            TypeError::NotAForall(t) => write!(f, "expected a forall type, got `{t}`"),
            TypeError::NotARepForall(t) => {
                write!(f, "expected a representation-forall type, got `{t}`")
            }
            TypeError::ArgMismatch { expected, actual } => {
                write!(f, "argument type mismatch: expected `{expected}`, got `{actual}`")
            }
            TypeError::KindMismatch { expected, actual } => {
                write!(f, "kind mismatch: expected `{expected}`, got `{actual}`")
            }
            TypeError::LevityPolymorphic { ty, kind } => write!(
                f,
                "levity-polymorphic type `{ty}` (of kind `{kind}`) where a concrete representation is required"
            ),
            TypeError::RepEscapes { rep_var, body } => write!(
                f,
                "representation variable `{rep_var}` escapes in the kind of `{body}`"
            ),
            TypeError::CaseScrutineeNotInt(t) => {
                write!(f, "case scrutinee must have type Int, got `{t}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// `Γ ⊢ κ kind` (Figure 3, bottom).
pub fn kind_valid(ctx: &Ctx, kind: LKind) -> Result<(), TypeError> {
    match kind.0 {
        // K_CONST
        Rho::Concrete(_) => Ok(()),
        // K_VAR
        Rho::Var(r) => {
            if ctx.has_rep_var(r) {
                Ok(())
            } else {
                Err(TypeError::UnboundRepVar(r))
            }
        }
    }
}

/// `Γ ⊢ ρ` — well-scopedness of a representation (implicit in Figure 3).
pub fn rho_valid(ctx: &Ctx, rho: Rho) -> Result<(), TypeError> {
    kind_valid(ctx, LKind(rho))
}

/// `Γ ⊢ τ : κ` (Figure 3, middle).
pub fn ty_kind(ctx: &mut Ctx, ty: &Ty) -> Result<LKind, TypeError> {
    match ty {
        // T_INT
        Ty::Int => Ok(LKind::P),
        // T_INTH
        Ty::IntHash => Ok(LKind::I),
        // T_ARROW: premises only demand both sides are valid types; the
        // arrow itself is boxed and lifted, hence TYPE P.
        Ty::Arrow(a, b) => {
            ty_kind(ctx, a)?;
            ty_kind(ctx, b)?;
            Ok(LKind::P)
        }
        // T_VAR
        Ty::Var(alpha) => ctx
            .lookup_ty_var(*alpha)
            .ok_or(TypeError::UnboundTyVar(*alpha)),
        // T_ALLTY: the forall's kind is the *body's* kind κ₂ — evidence of
        // type erasure (§6.1): a type abstraction is represented exactly
        // like its body.
        Ty::ForallTy(alpha, k1, body) => {
            kind_valid(ctx, *k1)?;
            ctx.push_ty_var(*alpha, *k1);
            let k2 = ty_kind(ctx, body);
            ctx.pop();
            k2
        }
        // T_ALLREP: likewise erased, with the side condition κ ≠ TYPE r —
        // the bound representation must not escape into the kind.
        Ty::ForallRep(r, body) => {
            ctx.push_rep_var(*r);
            let k = ty_kind(ctx, body);
            ctx.pop();
            let k = k?;
            if k == LKind::var(*r) {
                return Err(TypeError::RepEscapes {
                    rep_var: *r,
                    body: (**body).clone(),
                });
            }
            Ok(k)
        }
    }
}

/// Requires `Γ ⊢ τ : TYPE υ` for a *concrete* υ — the highlighted premise
/// of E_APP and E_LAM. Returns the concrete representation.
pub fn ty_concrete_kind(ctx: &mut Ctx, ty: &Ty) -> Result<ConcreteRep, TypeError> {
    let kind = ty_kind(ctx, ty)?;
    kind.0.as_concrete().ok_or(TypeError::LevityPolymorphic {
        ty: ty.clone(),
        kind,
    })
}

/// `Γ ⊢ e : τ` (Figure 3, top).
pub fn type_of(ctx: &mut Ctx, e: &Expr) -> Result<Ty, TypeError> {
    match e {
        // E_VAR
        Expr::Var(x) => ctx
            .lookup_term(*x)
            .cloned()
            .ok_or(TypeError::UnboundVar(*x)),
        // E_INTLIT
        Expr::Lit(_) => Ok(Ty::IntHash),
        // E_ERROR
        Expr::Error => Ok(Ty::error_type()),
        // E_CON
        Expr::Con(inner) => {
            let t = type_of(ctx, inner)?;
            if alpha_eq_ty(&t, &Ty::IntHash) {
                Ok(Ty::Int)
            } else {
                Err(TypeError::ArgMismatch {
                    expected: Ty::IntHash,
                    actual: t,
                })
            }
        }
        // E_APP, with the highlighted premise Γ ⊢ τ₁ : TYPE υ.
        Expr::App(e1, e2) => {
            let fun_ty = type_of(ctx, e1)?;
            let arg_ty = type_of(ctx, e2)?;
            match fun_ty {
                Ty::Arrow(dom, cod) => {
                    if !alpha_eq_ty(&dom, &arg_ty) {
                        return Err(TypeError::ArgMismatch {
                            expected: *dom,
                            actual: arg_ty,
                        });
                    }
                    ty_concrete_kind(ctx, &dom)?;
                    Ok(*cod)
                }
                other => Err(TypeError::NotAFunction(other)),
            }
        }
        // E_LAM, with the highlighted premise Γ ⊢ τ₁ : TYPE υ.
        Expr::Lam(x, ty, body) => {
            ty_concrete_kind(ctx, ty)?;
            ctx.push_term(*x, ty.clone());
            let body_ty = type_of(ctx, body);
            ctx.pop();
            Ok(Ty::arrow(ty.clone(), body_ty?))
        }
        // E_TLAM
        Expr::TyLam(alpha, kind, body) => {
            kind_valid(ctx, *kind)?;
            ctx.push_ty_var(*alpha, *kind);
            let body_ty = type_of(ctx, body);
            ctx.pop();
            Ok(Ty::forall_ty(*alpha, *kind, body_ty?))
        }
        // E_TAPP
        Expr::TyApp(fun, ty_arg) => {
            let fun_ty = type_of(ctx, fun)?;
            match fun_ty {
                Ty::ForallTy(alpha, kind, body) => {
                    let arg_kind = ty_kind(ctx, ty_arg)?;
                    if arg_kind != kind {
                        return Err(TypeError::KindMismatch {
                            expected: kind,
                            actual: arg_kind,
                        });
                    }
                    Ok(subst_ty_in_ty(&body, alpha, ty_arg))
                }
                other => Err(TypeError::NotAForall(other)),
            }
        }
        // E_RLAM. Figure 3 has no premise beyond Γ, r ⊢ e : τ; we also
        // check that the *resulting type* ∀r.τ is valid (T_ALLREP's side
        // condition), which the paper leaves implicit. Without it the rule
        // would accept e.g. Λr. Λ(a :: TYPE r). error {r} [a] (I#[0]),
        // whose type ∀r. ∀(a :: TYPE r). a has no valid kind.
        Expr::RepLam(r, body) => {
            ctx.push_rep_var(*r);
            let body_ty = type_of(ctx, body);
            ctx.pop();
            let body_ty = body_ty?;
            let result = Ty::forall_rep(*r, body_ty);
            ty_kind(ctx, &result)?;
            Ok(result)
        }
        // E_RAPP
        Expr::RepApp(fun, rho) => {
            let fun_ty = type_of(ctx, fun)?;
            rho_valid(ctx, *rho)?;
            match fun_ty {
                Ty::ForallRep(r, body) => Ok(subst_rep_in_ty(&body, r, *rho)),
                other => Err(TypeError::NotARepForall(other)),
            }
        }
        // E_CASE
        Expr::Case(scrut, x, body) => {
            let scrut_ty = type_of(ctx, scrut)?;
            if !alpha_eq_ty(&scrut_ty, &Ty::Int) {
                return Err(TypeError::CaseScrutineeNotInt(scrut_ty));
            }
            ctx.push_term(*x, Ty::IntHash);
            let body_ty = type_of(ctx, body);
            ctx.pop();
            body_ty
        }
    }
}

/// Checks a closed expression, returning its type.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
///
/// # Examples
///
/// ```
/// use levity_l::syntax::{Expr, Ty};
/// use levity_l::typecheck::check_closed;
///
/// let id = Expr::lam("x", Ty::Int, Expr::Var("x".into()));
/// assert_eq!(check_closed(&id).unwrap(), Ty::arrow(Ty::Int, Ty::Int));
/// ```
pub fn check_closed(e: &Expr) -> Result<Ty, TypeError> {
    type_of(&mut Ctx::new(), e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn literals_have_int_hash() {
        assert_eq!(check_closed(&Expr::Lit(42)).unwrap(), Ty::IntHash);
    }

    #[test]
    fn con_boxes() {
        assert_eq!(check_closed(&Expr::con(Expr::Lit(1))).unwrap(), Ty::Int);
    }

    #[test]
    fn con_requires_int_hash() {
        let err = check_closed(&Expr::con(Expr::con(Expr::Lit(1)))).unwrap_err();
        assert!(matches!(err, TypeError::ArgMismatch { .. }));
    }

    #[test]
    fn identity_at_both_base_types() {
        let idp = Expr::lam("x", Ty::Int, Expr::Var(sym("x")));
        assert_eq!(check_closed(&idp).unwrap(), Ty::arrow(Ty::Int, Ty::Int));
        let idi = Expr::lam("x", Ty::IntHash, Expr::Var(sym("x")));
        assert_eq!(
            check_closed(&idi).unwrap(),
            Ty::arrow(Ty::IntHash, Ty::IntHash)
        );
    }

    #[test]
    fn application_checks_domain() {
        let id = Expr::lam("x", Ty::Int, Expr::Var(sym("x")));
        let good = Expr::app(id.clone(), Expr::con(Expr::Lit(1)));
        assert_eq!(check_closed(&good).unwrap(), Ty::Int);
        let bad = Expr::app(id, Expr::Lit(1));
        assert!(matches!(
            check_closed(&bad).unwrap_err(),
            TypeError::ArgMismatch { .. }
        ));
    }

    #[test]
    fn polymorphic_identity() {
        // Λα:TYPE P. λx:α. x : ∀α:TYPE P. α -> α
        let e = Expr::ty_lam(
            "a",
            LKind::P,
            Expr::lam("x", Ty::Var(sym("a")), Expr::Var(sym("x"))),
        );
        let t = check_closed(&e).unwrap();
        assert!(alpha_eq_ty(
            &t,
            &Ty::forall_ty(
                "a",
                LKind::P,
                Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("a")))
            )
        ));
        // Instantiating at Int is fine; at Int# is a kind error — the
        // Instantiation Principle of §3, enforced through kinds (§3.1).
        let at_int = Expr::ty_app(e.clone(), Ty::Int);
        assert!(check_closed(&at_int).is_ok());
        let at_int_hash = Expr::ty_app(e, Ty::IntHash);
        assert!(matches!(
            check_closed(&at_int_hash).unwrap_err(),
            TypeError::KindMismatch { .. }
        ));
    }

    #[test]
    fn levity_polymorphic_binder_rejected() {
        // Λr. Λα:TYPE r. λx:α. x — the un-compilable bTwice-style term
        // (§5): rejected by E_LAM's highlighted premise.
        let e = Expr::rep_lam(
            "r",
            Expr::ty_lam(
                "a",
                LKind::var(sym("r")),
                Expr::lam("x", Ty::Var(sym("a")), Expr::Var(sym("x"))),
            ),
        );
        assert!(matches!(
            check_closed(&e).unwrap_err(),
            TypeError::LevityPolymorphic { .. }
        ));
    }

    #[test]
    fn error_can_be_levity_polymorphic() {
        // error {I} [Int#] (I#[0]) : Int# — fine: error never stores an
        // `a` value (§3.3).
        let e = Expr::app(
            Expr::ty_app(Expr::rep_app(Expr::Error, Rho::I), Ty::IntHash),
            Expr::con(Expr::Lit(0)),
        );
        assert_eq!(check_closed(&e).unwrap(), Ty::IntHash);
    }

    #[test]
    fn rep_lam_over_error_checks() {
        // myError in L: Λr. Λα:TYPE r. λs:Int. error {r} [α] s
        let e = my_error();
        let t = check_closed(&e).unwrap();
        assert!(alpha_eq_ty(&t, &Ty::error_type()));
    }

    fn my_error() -> Expr {
        Expr::rep_lam(
            "r",
            Expr::ty_lam(
                "a",
                LKind::var(sym("r")),
                Expr::lam(
                    "s",
                    Ty::Int,
                    Expr::app(
                        Expr::ty_app(
                            Expr::rep_app(Expr::Error, Rho::Var(sym("r"))),
                            Ty::Var(sym("a")),
                        ),
                        Expr::Var(sym("s")),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn rep_escape_rejected() {
        // Λr. Λα:TYPE r. error {r} [α] (I#[0]) has type ∀r. ∀α:TYPE r. α,
        // which T_ALLREP rejects (κ = TYPE r).
        let e = Expr::rep_lam(
            "r",
            Expr::ty_lam(
                "a",
                LKind::var(sym("r")),
                Expr::app(
                    Expr::ty_app(
                        Expr::rep_app(Expr::Error, Rho::Var(sym("r"))),
                        Ty::Var(sym("a")),
                    ),
                    Expr::con(Expr::Lit(0)),
                ),
            ),
        );
        assert!(matches!(
            check_closed(&e).unwrap_err(),
            TypeError::RepEscapes { .. }
        ));
    }

    #[test]
    fn forall_kind_is_body_kind() {
        // ∀α:TYPE P. Int# : TYPE I (T_ALLTY) — type erasure in kinds.
        let t = Ty::forall_ty("a", LKind::P, Ty::IntHash);
        assert_eq!(ty_kind(&mut Ctx::new(), &t).unwrap(), LKind::I);
    }

    #[test]
    fn arrows_are_always_pointers() {
        let t = Ty::arrow(Ty::IntHash, Ty::IntHash);
        assert_eq!(ty_kind(&mut Ctx::new(), &t).unwrap(), LKind::P);
    }

    #[test]
    fn unbound_rep_var_in_kind() {
        let t = Ty::forall_ty("a", LKind::var(sym("nope")), Ty::Var(sym("a")));
        assert!(matches!(
            ty_kind(&mut Ctx::new(), &t).unwrap_err(),
            TypeError::UnboundRepVar(_)
        ));
    }

    #[test]
    fn case_unboxes() {
        let e = Expr::case(Expr::con(Expr::Lit(5)), "x", Expr::Var(sym("x")));
        assert_eq!(check_closed(&e).unwrap(), Ty::IntHash);
    }

    #[test]
    fn case_scrutinee_must_be_int() {
        let e = Expr::case(Expr::Lit(5), "x", Expr::Var(sym("x")));
        assert!(matches!(
            check_closed(&e).unwrap_err(),
            TypeError::CaseScrutineeNotInt(_)
        ));
    }

    #[test]
    fn rep_application_instantiates() {
        // error {P} : ∀α:TYPE P. Int -> α
        let e = Expr::rep_app(Expr::Error, Rho::P);
        let t = check_closed(&e).unwrap();
        assert!(alpha_eq_ty(
            &t,
            &Ty::forall_ty("a", LKind::P, Ty::arrow(Ty::Int, Ty::Var(sym("a"))))
        ));
    }

    #[test]
    fn rep_application_requires_scoped_var() {
        let e = Expr::rep_app(Expr::Error, Rho::Var(sym("r")));
        assert!(matches!(
            check_closed(&e).unwrap_err(),
            TypeError::UnboundRepVar(_)
        ));
    }

    #[test]
    fn btwice_at_type_p_is_fine() {
        // bTwice specialized to a :: TYPE P, with Bool ~ Int here:
        // λx:Int. λf:Int -> Int. f (f x)
        let e = Expr::lam(
            "x",
            Ty::Int,
            Expr::lam(
                "f",
                Ty::arrow(Ty::Int, Ty::Int),
                Expr::app(
                    Expr::Var(sym("f")),
                    Expr::app(Expr::Var(sym("f")), Expr::Var(sym("x"))),
                ),
            ),
        );
        assert!(check_closed(&e).is_ok());
    }
}
