//! Canonical `L` terms from the paper, used by tests, docs and benches.

use levity_core::symbol::Symbol;

use crate::syntax::{Expr, LKind, Rho, Ty};

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// The polymorphic identity at a chosen kind:
/// `Λα:κ. λx:α. x : ∀α:κ. α -> α`.
///
/// Note that for `κ = TYPE I` this is *still fine*: the binder's kind is
/// concrete. What §5.1 forbids is a binder at `TYPE r`.
pub fn poly_id(kind: LKind) -> Expr {
    Expr::ty_lam(
        "a",
        kind,
        Expr::lam("x", Ty::Var(sym("a")), Expr::Var(sym("x"))),
    )
}

/// `bTwice`, monomorphized in the `Bool` argument (encoded as `Int`:
/// nonzero means `True`), and polymorphic in `a :: TYPE P` exactly as GHC
/// compiles it (§3.1):
///
/// ```text
/// Λa:TYPE P. λb:Int. λx:a. λf:a -> a.
///   case b of I#[t] -> f (f x)      -- t ≠ 0 branch elided: L has one-
///                                   -- armed case, so this is the True arm
/// ```
///
/// `L` has no booleans and a single-constructor `case`, so this variant
/// always takes the "true" branch; what matters for the reproduction is
/// the type: `∀a:TYPE P. Int -> a -> (a -> a) -> a`.
pub fn b_twice_lifted() -> Expr {
    Expr::ty_lam(
        "a",
        LKind::P,
        Expr::lam(
            "b",
            Ty::Int,
            Expr::lam(
                "x",
                Ty::Var(sym("a")),
                Expr::lam(
                    "f",
                    Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("a"))),
                    Expr::case(
                        Expr::Var(sym("b")),
                        "t",
                        Expr::app(
                            Expr::Var(sym("f")),
                            Expr::app(Expr::Var(sym("f")), Expr::Var(sym("x"))),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// The *illegal* levity-polymorphic `bTwice` of §5:
///
/// ```text
/// Λr. Λa:TYPE r. λb:Int. λx:a. λf:a -> a. case b of I#[t] -> f (f x)
/// ```
///
/// Its binder `x : a :: TYPE r` violates E_LAM's concreteness premise;
/// [`crate::typecheck::check_closed`] rejects it.
pub fn b_twice_levity_polymorphic() -> Expr {
    Expr::rep_lam(
        "r",
        Expr::ty_lam(
            "a",
            LKind::var(sym("r")),
            Expr::lam(
                "b",
                Ty::Int,
                Expr::lam(
                    "x",
                    Ty::Var(sym("a")),
                    Expr::lam(
                        "f",
                        Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("a"))),
                        Expr::case(
                            Expr::Var(sym("b")),
                            "t",
                            Expr::app(
                                Expr::Var(sym("f")),
                                Expr::app(Expr::Var(sym("f")), Expr::Var(sym("x"))),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// `myError` (§3.3 / §5.2), written with an explicit levity-polymorphic
/// signature — accepted because the levity-polymorphic value is only
/// *returned*, never bound or passed:
///
/// ```text
/// Λr. Λa:TYPE r. λs:Int. error {r} [a] s : ∀r. ∀a:TYPE r. Int -> a
/// ```
pub fn my_error() -> Expr {
    Expr::rep_lam(
        "r",
        Expr::ty_lam(
            "a",
            LKind::var(sym("r")),
            Expr::lam(
                "s",
                Ty::Int,
                Expr::app(
                    Expr::ty_app(
                        Expr::rep_app(Expr::Error, Rho::Var(sym("r"))),
                        Ty::Var(sym("a")),
                    ),
                    Expr::Var(sym("s")),
                ),
            ),
        ),
    )
}

/// `($)` in `L`, generalized in its *return* kind as in §7.2:
///
/// ```text
/// Λr. Λa:TYPE P. Λb:TYPE r. λf:a -> b. λx:a. f x
///   : ∀r. ∀a:TYPE P. ∀b:TYPE r. (a -> b) -> a -> b
/// ```
///
/// Accepted: `x` is lifted, `f` is a function (boxed), and only the
/// *result* is levity-polymorphic.
pub fn dollar() -> Expr {
    Expr::rep_lam(
        "r",
        Expr::ty_lam(
            "a",
            LKind::P,
            Expr::ty_lam(
                "b",
                LKind::var(sym("r")),
                Expr::lam(
                    "f",
                    Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
                    Expr::lam(
                        "x",
                        Ty::Var(sym("a")),
                        Expr::app(Expr::Var(sym("f")), Expr::Var(sym("x"))),
                    ),
                ),
            ),
        ),
    )
}

/// The type of [`dollar`].
pub fn dollar_type() -> Ty {
    Ty::forall_rep(
        "r",
        Ty::forall_ty(
            "a",
            LKind::P,
            Ty::forall_ty(
                "b",
                LKind::var(sym("r")),
                Ty::arrow(
                    Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
                    Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
                ),
            ),
        ),
    )
}

/// Function composition `(.)`, generalized only in the *final* result
/// kind as in §7.2:
///
/// ```text
/// Λr. Λa:TYPE P. Λb:TYPE P. Λc:TYPE r.
///   λf:b -> c. λg:a -> b. λx:a. f (g x)
/// ```
pub fn compose() -> Expr {
    Expr::rep_lam(
        "r",
        Expr::ty_lam(
            "a",
            LKind::P,
            Expr::ty_lam(
                "b",
                LKind::P,
                Expr::ty_lam(
                    "c",
                    LKind::var(sym("r")),
                    Expr::lam(
                        "f",
                        Ty::arrow(Ty::Var(sym("b")), Ty::Var(sym("c"))),
                        Expr::lam(
                            "g",
                            Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
                            Expr::lam(
                                "x",
                                Ty::Var(sym("a")),
                                Expr::app(
                                    Expr::Var(sym("f")),
                                    Expr::app(Expr::Var(sym("g")), Expr::Var(sym("x"))),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// The *illegal* variant of `(.)` that also generalizes `b` — rejected
/// because `g x :: b :: TYPE r'` would be a levity-polymorphic function
/// argument (§7.2: "we cannot generalize the kind of b").
pub fn compose_bad() -> Expr {
    Expr::rep_lam(
        "r1",
        Expr::rep_lam(
            "r2",
            Expr::ty_lam(
                "a",
                LKind::P,
                Expr::ty_lam(
                    "b",
                    LKind::var(sym("r2")),
                    Expr::ty_lam(
                        "c",
                        LKind::var(sym("r1")),
                        Expr::lam(
                            "f",
                            Ty::arrow(Ty::Var(sym("b")), Ty::Var(sym("c"))),
                            Expr::lam(
                                "g",
                                Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
                                Expr::lam(
                                    "x",
                                    Ty::Var(sym("a")),
                                    Expr::app(
                                        Expr::Var(sym("f")),
                                        Expr::app(Expr::Var(sym("g")), Expr::Var(sym("x"))),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subst::alpha_eq_ty;
    use crate::typecheck::{check_closed, TypeError};

    #[test]
    fn poly_id_checks_at_both_kinds() {
        assert!(check_closed(&poly_id(LKind::P)).is_ok());
        assert!(check_closed(&poly_id(LKind::I)).is_ok());
    }

    #[test]
    fn b_twice_lifted_checks() {
        let t = check_closed(&b_twice_lifted()).unwrap();
        let expected = Ty::forall_ty(
            "a",
            LKind::P,
            Ty::arrow(
                Ty::Int,
                Ty::arrow(
                    Ty::Var(sym("a")),
                    Ty::arrow(
                        Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("a"))),
                        Ty::Var(sym("a")),
                    ),
                ),
            ),
        );
        assert!(alpha_eq_ty(&t, &expected), "got {t}");
    }

    #[test]
    fn b_twice_levity_polymorphic_rejected() {
        // The motivating rejection of §5: un-compilable levity polymorphism.
        assert!(matches!(
            check_closed(&b_twice_levity_polymorphic()).unwrap_err(),
            TypeError::LevityPolymorphic { .. }
        ));
    }

    #[test]
    fn my_error_checks_with_declared_signature() {
        let t = check_closed(&my_error()).unwrap();
        assert!(alpha_eq_ty(&t, &Ty::error_type()), "got {t}");
    }

    #[test]
    fn dollar_checks_levity_polymorphically() {
        let t = check_closed(&dollar()).unwrap();
        assert!(alpha_eq_ty(&t, &dollar_type()), "got {t}");
    }

    #[test]
    fn compose_checks_with_result_generalized() {
        assert!(check_closed(&compose()).is_ok());
    }

    #[test]
    fn compose_with_middle_generalized_is_rejected() {
        // §7.2: "the restriction around levity-polymorphic arguments bites
        // here: we cannot generalize the kind of b."
        assert!(matches!(
            check_closed(&compose_bad()).unwrap_err(),
            TypeError::LevityPolymorphic { .. }
        ));
    }

    #[test]
    fn dollar_applies_at_unboxed_result() {
        // ($) {I} [Int] [Int#] (λn:Int. case n of I#[k] -> k) (I#[3]) ⇓ 3
        use crate::step::{eval_closed, Outcome};
        let unbox = Expr::lam(
            "n",
            Ty::Int,
            Expr::case(Expr::Var(sym("n")), "k", Expr::Var(sym("k"))),
        );
        let e = Expr::app(
            Expr::app(
                Expr::ty_app(
                    Expr::ty_app(Expr::rep_app(dollar(), Rho::I), Ty::Int),
                    Ty::IntHash,
                ),
                unbox,
            ),
            Expr::con(Expr::Lit(3)),
        );
        assert!(check_closed(&e).is_ok());
        let (out, _) = eval_closed(&e, 1000).unwrap();
        assert_eq!(out, Outcome::Value(Expr::Lit(3)));
    }
}
