//! The formal calculus **L** of *Levity Polymorphism* (PLDI 2017, §6.1).
//!
//! `L` is a variant of System F with unboxed integers (`Int#`), the boxed
//! `Int` built from them via the constructor `I#`, the divergence constant
//! `error`, and — the paper's novelty — abstraction over *runtime
//! representations*: `Λr. e` and `e ρ`.
//!
//! The crate implements Figures 2–4 directly:
//!
//! * [`syntax`] — the grammar (Figure 2);
//! * [`ctx`] — contexts `Γ`;
//! * [`typecheck`] — the typing judgments (Figure 3), whose E_APP/E_LAM
//!   rules carry the concrete-kind premises that realize the §5.1
//!   restrictions on levity polymorphism;
//! * [`step`] — the type-directed small-step semantics (Figure 4), where
//!   pointer-kinded applications are lazy and integer-kinded ones strict;
//! * [`subst`] — capture-avoiding substitution and α-equivalence;
//! * [`gen`] — a generator of random well-typed terms for the §6
//!   metatheory property tests;
//! * [`examples`] — the paper's running examples (`bTwice`, `myError`,
//!   `($)`, `(.)`) as `L` terms.
//!
//! # Example
//!
//! ```
//! use levity_l::examples;
//! use levity_l::typecheck::{check_closed, TypeError};
//!
//! // The levity-polymorphic bTwice of §5 cannot be compiled, and the
//! // type system rejects it:
//! let bad = examples::b_twice_levity_polymorphic();
//! assert!(matches!(
//!     check_closed(&bad).unwrap_err(),
//!     TypeError::LevityPolymorphic { .. }
//! ));
//!
//! // ... while myError, which only *returns* at an abstract rep, checks:
//! assert!(check_closed(&examples::my_error()).is_ok());
//! ```

#![warn(missing_docs)]

pub mod ctx;
pub mod examples;
pub mod gen;
pub mod step;
pub mod subst;
pub mod syntax;
pub mod typecheck;

pub use ctx::Ctx;
pub use step::{eval_closed, Outcome, Step};
pub use syntax::{ConcreteRep, Expr, LKind, Rho, Ty};
pub use typecheck::{check_closed, ty_kind, type_of, TypeError};
