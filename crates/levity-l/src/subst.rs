//! Capture-avoiding substitution and α-equivalence for `L`.
//!
//! Three substitutions drive the operational semantics (Figure 4):
//!
//! * `e[e₂/x]` — β-reduction (S_BETAPTR, S_BETAUNBOXED) and case matching;
//! * `e[τ/α]` and `τ'[τ/α]` — type β-reduction (S_TBETA, E_TAPP);
//! * `e[ρ/r]` and `τ[ρ/r]` — representation β-reduction (S_RBETA, E_RAPP).
//!
//! All are capture-avoiding: substituting under a binder that would
//! capture a free variable of the payload first freshens the binder.

use std::sync::atomic::{AtomicU64, Ordering};

use levity_core::symbol::Symbol;

use crate::syntax::{Expr, LKind, Rho, Ty};

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh symbol derived from `base`, guaranteed distinct from all
/// previously issued names in this process.
pub fn freshen(base: Symbol) -> Symbol {
    let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
    let stem = base.as_str().split('\'').next().unwrap_or("v");
    Symbol::intern(&format!("{stem}'{n}"))
}

// ---------------------------------------------------------------------------
// Free variables
// ---------------------------------------------------------------------------

/// Free *term* variables of an expression.
pub fn free_term_vars(e: &Expr) -> Vec<Symbol> {
    let mut out = Vec::new();
    go_term(e, &mut Vec::new(), &mut out);
    return out;

    fn go_term(e: &Expr, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match e {
            Expr::Var(x) => {
                if !bound.contains(x) && !out.contains(x) {
                    out.push(*x);
                }
            }
            Expr::App(a, b) => {
                go_term(a, bound, out);
                go_term(b, bound, out);
            }
            Expr::Lam(x, _, body) => {
                bound.push(*x);
                go_term(body, bound, out);
                bound.pop();
            }
            Expr::TyLam(_, _, body) | Expr::RepLam(_, body) | Expr::Con(body) => {
                go_term(body, bound, out)
            }
            Expr::TyApp(a, _) | Expr::RepApp(a, _) => go_term(a, bound, out),
            Expr::Case(scrut, x, body) => {
                go_term(scrut, bound, out);
                bound.push(*x);
                go_term(body, bound, out);
                bound.pop();
            }
            Expr::Lit(_) | Expr::Error => {}
        }
    }
}

/// Free *type* variables of a type.
pub fn free_ty_vars(ty: &Ty) -> Vec<Symbol> {
    let mut out = Vec::new();
    go(ty, &mut Vec::new(), &mut out);
    return out;

    fn go(ty: &Ty, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match ty {
            Ty::Int | Ty::IntHash => {}
            Ty::Arrow(a, b) => {
                go(a, bound, out);
                go(b, bound, out);
            }
            Ty::Var(v) => {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(*v);
                }
            }
            Ty::ForallTy(a, _, t) => {
                bound.push(*a);
                go(t, bound, out);
                bound.pop();
            }
            Ty::ForallRep(_, t) => go(t, bound, out),
        }
    }
}

/// Free *representation* variables of a type.
pub fn free_rep_vars_ty(ty: &Ty) -> Vec<Symbol> {
    let mut out = Vec::new();
    go(ty, &mut Vec::new(), &mut out);
    return out;

    fn rho(r: &Rho, bound: &[Symbol], out: &mut Vec<Symbol>) {
        if let Rho::Var(v) = r {
            if !bound.contains(v) && !out.contains(v) {
                out.push(*v);
            }
        }
    }

    fn go(ty: &Ty, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match ty {
            Ty::Int | Ty::IntHash | Ty::Var(_) => {}
            Ty::Arrow(a, b) => {
                go(a, bound, out);
                go(b, bound, out);
            }
            Ty::ForallTy(_, LKind(k), t) => {
                rho(k, bound, out);
                go(t, bound, out);
            }
            Ty::ForallRep(r, t) => {
                bound.push(*r);
                go(t, bound, out);
                bound.pop();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Substitution into types
// ---------------------------------------------------------------------------

/// `τ'[τ/α]`: substitutes type `payload` for type variable `alpha` in `ty`.
pub fn subst_ty_in_ty(ty: &Ty, alpha: Symbol, payload: &Ty) -> Ty {
    match ty {
        Ty::Int | Ty::IntHash => ty.clone(),
        Ty::Var(v) if *v == alpha => payload.clone(),
        Ty::Var(_) => ty.clone(),
        Ty::Arrow(a, b) => Ty::arrow(
            subst_ty_in_ty(a, alpha, payload),
            subst_ty_in_ty(b, alpha, payload),
        ),
        Ty::ForallTy(a, k, body) => {
            if *a == alpha {
                // Shadowed: stop.
                ty.clone()
            } else if free_ty_vars(payload).contains(a) {
                // Would capture: freshen the binder first.
                let fresh = freshen(*a);
                let renamed = subst_ty_in_ty(body, *a, &Ty::Var(fresh));
                Ty::forall_ty(fresh, *k, subst_ty_in_ty(&renamed, alpha, payload))
            } else {
                Ty::forall_ty(*a, *k, subst_ty_in_ty(body, alpha, payload))
            }
        }
        Ty::ForallRep(r, body) => {
            // Type variables and rep variables live in different
            // namespaces, but the payload type may mention the rep var `r`
            // freely; freshen if so.
            if free_rep_vars_ty(payload).contains(r) {
                let fresh = freshen(*r);
                let renamed = subst_rep_in_ty(body, *r, Rho::Var(fresh));
                Ty::forall_rep(fresh, subst_ty_in_ty(&renamed, alpha, payload))
            } else {
                Ty::forall_rep(*r, subst_ty_in_ty(body, alpha, payload))
            }
        }
    }
}

/// `τ[ρ/r]`: substitutes representation `rho` for rep variable `r` in `ty`.
pub fn subst_rep_in_ty(ty: &Ty, r: Symbol, rho: Rho) -> Ty {
    fn subst_kind(LKind(k): LKind, r: Symbol, rho: Rho) -> LKind {
        match k {
            Rho::Var(v) if v == r => LKind(rho),
            _ => LKind(k),
        }
    }
    match ty {
        Ty::Int | Ty::IntHash | Ty::Var(_) => ty.clone(),
        Ty::Arrow(a, b) => Ty::arrow(subst_rep_in_ty(a, r, rho), subst_rep_in_ty(b, r, rho)),
        Ty::ForallTy(a, k, body) => {
            Ty::forall_ty(*a, subst_kind(*k, r, rho), subst_rep_in_ty(body, r, rho))
        }
        Ty::ForallRep(s, body) => {
            if *s == r {
                ty.clone()
            } else if matches!(rho, Rho::Var(v) if v == *s) {
                let fresh = freshen(*s);
                let renamed = subst_rep_in_ty(body, *s, Rho::Var(fresh));
                Ty::forall_rep(fresh, subst_rep_in_ty(&renamed, r, rho))
            } else {
                Ty::forall_rep(*s, subst_rep_in_ty(body, r, rho))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Substitution into expressions
// ---------------------------------------------------------------------------

/// `e[e₂/x]`: substitutes expression `payload` for term variable `x`.
pub fn subst_expr(e: &Expr, x: Symbol, payload: &Expr) -> Expr {
    match e {
        Expr::Var(y) if *y == x => payload.clone(),
        Expr::Var(_) | Expr::Lit(_) | Expr::Error => e.clone(),
        Expr::App(a, b) => Expr::app(subst_expr(a, x, payload), subst_expr(b, x, payload)),
        Expr::Lam(y, ty, body) => {
            if *y == x {
                e.clone()
            } else if free_term_vars(payload).contains(y) {
                let fresh = freshen(*y);
                let renamed = subst_expr(body, *y, &Expr::Var(fresh));
                Expr::lam(fresh, ty.clone(), subst_expr(&renamed, x, payload))
            } else {
                Expr::lam(*y, ty.clone(), subst_expr(body, x, payload))
            }
        }
        Expr::TyLam(a, k, body) => Expr::ty_lam(*a, *k, subst_expr(body, x, payload)),
        Expr::TyApp(f, ty) => Expr::ty_app(subst_expr(f, x, payload), ty.clone()),
        Expr::RepLam(r, body) => Expr::rep_lam(*r, subst_expr(body, x, payload)),
        Expr::RepApp(f, rho) => Expr::rep_app(subst_expr(f, x, payload), *rho),
        Expr::Con(inner) => Expr::con(subst_expr(inner, x, payload)),
        Expr::Case(scrut, y, body) => {
            let scrut = subst_expr(scrut, x, payload);
            if *y == x {
                Expr::case(scrut, *y, (**body).clone())
            } else if free_term_vars(payload).contains(y) {
                let fresh = freshen(*y);
                let renamed = subst_expr(body, *y, &Expr::Var(fresh));
                Expr::case(scrut, fresh, subst_expr(&renamed, x, payload))
            } else {
                Expr::case(scrut, *y, subst_expr(body, x, payload))
            }
        }
    }
}

/// `e[τ/α]`: substitutes a type for a type variable in an expression.
pub fn subst_ty_in_expr(e: &Expr, alpha: Symbol, payload: &Ty) -> Expr {
    match e {
        Expr::Var(_) | Expr::Lit(_) | Expr::Error => e.clone(),
        Expr::App(a, b) => Expr::app(
            subst_ty_in_expr(a, alpha, payload),
            subst_ty_in_expr(b, alpha, payload),
        ),
        Expr::Lam(x, ty, body) => Expr::lam(
            *x,
            subst_ty_in_ty(ty, alpha, payload),
            subst_ty_in_expr(body, alpha, payload),
        ),
        Expr::TyLam(a, k, body) => {
            if *a == alpha {
                e.clone()
            } else if free_ty_vars(payload).contains(a) {
                let fresh = freshen(*a);
                let renamed = subst_ty_in_expr(body, *a, &Ty::Var(fresh));
                Expr::ty_lam(fresh, *k, subst_ty_in_expr(&renamed, alpha, payload))
            } else {
                Expr::ty_lam(*a, *k, subst_ty_in_expr(body, alpha, payload))
            }
        }
        Expr::TyApp(f, ty) => Expr::ty_app(
            subst_ty_in_expr(f, alpha, payload),
            subst_ty_in_ty(ty, alpha, payload),
        ),
        Expr::RepLam(r, body) => {
            if free_rep_vars_ty(payload).contains(r) {
                let fresh = freshen(*r);
                let renamed = subst_rep_in_expr(body, *r, Rho::Var(fresh));
                Expr::rep_lam(fresh, subst_ty_in_expr(&renamed, alpha, payload))
            } else {
                Expr::rep_lam(*r, subst_ty_in_expr(body, alpha, payload))
            }
        }
        Expr::RepApp(f, rho) => Expr::rep_app(subst_ty_in_expr(f, alpha, payload), *rho),
        Expr::Con(inner) => Expr::con(subst_ty_in_expr(inner, alpha, payload)),
        Expr::Case(scrut, x, body) => Expr::case(
            subst_ty_in_expr(scrut, alpha, payload),
            *x,
            subst_ty_in_expr(body, alpha, payload),
        ),
    }
}

/// `e[ρ/r]`: substitutes a representation for a rep variable in an
/// expression.
pub fn subst_rep_in_expr(e: &Expr, r: Symbol, rho: Rho) -> Expr {
    fn subst_kind(LKind(k): LKind, r: Symbol, rho: Rho) -> LKind {
        match k {
            Rho::Var(v) if v == r => LKind(rho),
            _ => LKind(k),
        }
    }
    fn subst_rho(inner: Rho, r: Symbol, rho: Rho) -> Rho {
        match inner {
            Rho::Var(v) if v == r => rho,
            _ => inner,
        }
    }
    match e {
        Expr::Var(_) | Expr::Lit(_) | Expr::Error => e.clone(),
        Expr::App(a, b) => Expr::app(subst_rep_in_expr(a, r, rho), subst_rep_in_expr(b, r, rho)),
        Expr::Lam(x, ty, body) => Expr::lam(
            *x,
            subst_rep_in_ty(ty, r, rho),
            subst_rep_in_expr(body, r, rho),
        ),
        Expr::TyLam(a, k, body) => {
            Expr::ty_lam(*a, subst_kind(*k, r, rho), subst_rep_in_expr(body, r, rho))
        }
        Expr::TyApp(f, ty) => {
            Expr::ty_app(subst_rep_in_expr(f, r, rho), subst_rep_in_ty(ty, r, rho))
        }
        Expr::RepLam(s, body) => {
            if *s == r {
                e.clone()
            } else if matches!(rho, Rho::Var(v) if v == *s) {
                let fresh = freshen(*s);
                let renamed = subst_rep_in_expr(body, *s, Rho::Var(fresh));
                Expr::rep_lam(fresh, subst_rep_in_expr(&renamed, r, rho))
            } else {
                Expr::rep_lam(*s, subst_rep_in_expr(body, r, rho))
            }
        }
        Expr::RepApp(f, inner) => {
            Expr::rep_app(subst_rep_in_expr(f, r, rho), subst_rho(*inner, r, rho))
        }
        Expr::Con(inner) => Expr::con(subst_rep_in_expr(inner, r, rho)),
        Expr::Case(scrut, x, body) => Expr::case(
            subst_rep_in_expr(scrut, r, rho),
            *x,
            subst_rep_in_expr(body, r, rho),
        ),
    }
}

// ---------------------------------------------------------------------------
// α-equivalence of types
// ---------------------------------------------------------------------------

/// α-equivalence of types, used by the checker at E_APP (the argument type
/// must *be* the domain type) and by the preservation tests.
pub fn alpha_eq_ty(t1: &Ty, t2: &Ty) -> bool {
    fn go(
        t1: &Ty,
        t2: &Ty,
        env: &mut Vec<(Symbol, Symbol)>,
        renv: &mut Vec<(Symbol, Symbol)>,
    ) -> bool {
        match (t1, t2) {
            (Ty::Int, Ty::Int) | (Ty::IntHash, Ty::IntHash) => true,
            (Ty::Arrow(a1, b1), Ty::Arrow(a2, b2)) => {
                go(a1, a2, env, renv) && go(b1, b2, env, renv)
            }
            (Ty::Var(v1), Ty::Var(v2)) => {
                // Look for the most recent binding of either side.
                for (l, r) in env.iter().rev() {
                    if l == v1 || r == v2 {
                        return l == v1 && r == v2;
                    }
                }
                v1 == v2
            }
            (Ty::ForallTy(a1, k1, b1), Ty::ForallTy(a2, k2, b2)) => {
                if !kind_eq(*k1, *k2, renv) {
                    return false;
                }
                env.push((*a1, *a2));
                let ok = go(b1, b2, env, renv);
                env.pop();
                ok
            }
            (Ty::ForallRep(r1, b1), Ty::ForallRep(r2, b2)) => {
                renv.push((*r1, *r2));
                let ok = go(b1, b2, env, renv);
                renv.pop();
                ok
            }
            _ => false,
        }
    }

    fn kind_eq(LKind(k1): LKind, LKind(k2): LKind, renv: &[(Symbol, Symbol)]) -> bool {
        match (k1, k2) {
            (Rho::Concrete(u1), Rho::Concrete(u2)) => u1 == u2,
            (Rho::Var(v1), Rho::Var(v2)) => {
                for (l, r) in renv.iter().rev() {
                    if *l == v1 || *r == v2 {
                        return *l == v1 && *r == v2;
                    }
                }
                v1 == v2
            }
            _ => false,
        }
    }

    go(t1, t2, &mut Vec::new(), &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn simple_term_substitution() {
        let e = Expr::app(Expr::Var(sym("f")), Expr::Var(sym("x")));
        let out = subst_expr(&e, sym("x"), &Expr::Lit(1));
        assert_eq!(out, Expr::app(Expr::Var(sym("f")), Expr::Lit(1)));
    }

    #[test]
    fn substitution_respects_shadowing() {
        // (λx. x)[1/x] = λx. x
        let e = Expr::lam("x", Ty::IntHash, Expr::Var(sym("x")));
        assert_eq!(subst_expr(&e, sym("x"), &Expr::Lit(1)), e);
    }

    #[test]
    fn substitution_avoids_capture() {
        // (λy. x)[y/x] must not become λy. y.
        let e = Expr::lam("y", Ty::Int, Expr::Var(sym("x")));
        let out = subst_expr(&e, sym("x"), &Expr::Var(sym("y")));
        match out {
            Expr::Lam(binder, _, body) => {
                assert_ne!(binder, sym("y"), "binder should have been freshened");
                assert_eq!(*body, Expr::Var(sym("y")));
            }
            other => panic!("expected lambda, got {other}"),
        }
    }

    #[test]
    fn ty_substitution_under_forall_avoids_capture() {
        // (∀b. a -> b)[b/a] must not capture.
        let t = Ty::forall_ty(
            "b",
            LKind::P,
            Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
        );
        let out = subst_ty_in_ty(&t, sym("a"), &Ty::Var(sym("b")));
        match out {
            Ty::ForallTy(binder, _, body) => {
                assert_ne!(binder, sym("b"));
                assert_eq!(*body, Ty::arrow(Ty::Var(sym("b")), Ty::Var(binder)));
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn rep_substitution_in_types() {
        // (∀α:TYPE r. α -> Int)[I/r]
        let t = Ty::forall_ty(
            "a",
            LKind::var(sym("r")),
            Ty::arrow(Ty::Var(sym("a")), Ty::Int),
        );
        let out = subst_rep_in_ty(&t, sym("r"), Rho::I);
        assert_eq!(
            out,
            Ty::forall_ty("a", LKind::I, Ty::arrow(Ty::Var(sym("a")), Ty::Int))
        );
    }

    #[test]
    fn rep_substitution_respects_shadowing() {
        let t = Ty::forall_rep(
            "r",
            Ty::forall_ty("a", LKind::var(sym("r")), Ty::Var(sym("a"))),
        );
        assert_eq!(subst_rep_in_ty(&t, sym("r"), Rho::P), t);
    }

    #[test]
    fn alpha_equivalence_of_foralls() {
        let t1 = Ty::forall_ty(
            "a",
            LKind::P,
            Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("a"))),
        );
        let t2 = Ty::forall_ty(
            "b",
            LKind::P,
            Ty::arrow(Ty::Var(sym("b")), Ty::Var(sym("b"))),
        );
        assert!(alpha_eq_ty(&t1, &t2));
        let t3 = Ty::forall_ty(
            "a",
            LKind::I,
            Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("a"))),
        );
        assert!(!alpha_eq_ty(&t1, &t3), "kinds must match");
    }

    #[test]
    fn alpha_equivalence_of_rep_foralls() {
        let t1 = Ty::forall_rep(
            "r",
            Ty::forall_ty(
                "a",
                LKind::var(sym("r")),
                Ty::arrow(Ty::Int, Ty::Var(sym("a"))),
            ),
        );
        let t2 = Ty::forall_rep(
            "s",
            Ty::forall_ty(
                "b",
                LKind::var(sym("s")),
                Ty::arrow(Ty::Int, Ty::Var(sym("b"))),
            ),
        );
        assert!(alpha_eq_ty(&t1, &t2));
    }

    #[test]
    fn alpha_inequivalence_detects_swaps() {
        // ∀a b. a -> b  vs  ∀a b. b -> a
        let t1 = Ty::forall_ty(
            "a",
            LKind::P,
            Ty::forall_ty(
                "b",
                LKind::P,
                Ty::arrow(Ty::Var(sym("a")), Ty::Var(sym("b"))),
            ),
        );
        let t2 = Ty::forall_ty(
            "a",
            LKind::P,
            Ty::forall_ty(
                "b",
                LKind::P,
                Ty::arrow(Ty::Var(sym("b")), Ty::Var(sym("a"))),
            ),
        );
        assert!(!alpha_eq_ty(&t1, &t2));
    }

    #[test]
    fn free_vars_of_open_terms() {
        let e = Expr::lam(
            "x",
            Ty::Int,
            Expr::app(Expr::Var(sym("f")), Expr::Var(sym("x"))),
        );
        assert_eq!(free_term_vars(&e), vec![sym("f")]);
    }

    #[test]
    fn free_rep_vars_see_through_ty_binders() {
        let t = Ty::forall_ty("a", LKind::var(sym("r")), Ty::Var(sym("a")));
        assert_eq!(free_rep_vars_ty(&t), vec![sym("r")]);
        let closed = Ty::forall_rep("r", t);
        assert!(free_rep_vars_ty(&closed).is_empty());
    }

    #[test]
    fn subst_ty_in_expr_rewrites_annotations() {
        let e = Expr::lam("x", Ty::Var(sym("a")), Expr::Var(sym("x")));
        let out = subst_ty_in_expr(&e, sym("a"), &Ty::IntHash);
        assert_eq!(out, Expr::lam("x", Ty::IntHash, Expr::Var(sym("x"))));
    }

    #[test]
    fn subst_rep_in_expr_rewrites_kinds_and_rep_apps() {
        let e = Expr::rep_app(
            Expr::ty_lam("a", LKind::var(sym("r")), Expr::Var(sym("y"))),
            Rho::Var(sym("r")),
        );
        let out = subst_rep_in_expr(&e, sym("r"), Rho::I);
        assert_eq!(
            out,
            Expr::rep_app(Expr::ty_lam("a", LKind::I, Expr::Var(sym("y"))), Rho::I)
        );
    }
}
