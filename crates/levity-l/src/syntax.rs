//! The grammar of `L` (Figure 2).
//!
//! `L` is a variant of System F with:
//!
//! * base types `Int` (boxed, lifted) and `Int#` (unboxed integer);
//! * the data constructor `I#[e]` and `case e₁ of I#[x] -> e₂`;
//! * `error` (halts the machine);
//! * and — the novelty — *representation abstraction* `Λr. e` and
//!   application `e ρ`, where `ρ` ranges over representation variables and
//!   the two concrete representations `P` (pointer) and `I` (integer).
//!
//! Kinds are `TYPE ρ`; a kind `TYPE υ` with `υ ∈ {P, I}` is *concrete*.
//! The typing rules (Figure 3) demand concrete kinds exactly where the
//! §5.1 restrictions do: at λ-binders and at function applications.

use std::fmt;

use levity_core::symbol::Symbol;

/// A concrete representation `υ ::= P | I` (Figure 2).
///
/// `P` is "pointer": boxed, lifted, call-by-need. `I` is "integer":
/// unboxed, call-by-value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConcreteRep {
    /// Pointer representation (boxed, lifted).
    P,
    /// Integer representation (unboxed).
    I,
}

impl fmt::Display for ConcreteRep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteRep::P => f.write_str("P"),
            ConcreteRep::I => f.write_str("I"),
        }
    }
}

/// A runtime representation `ρ ::= r | υ` (Figure 2): either a
/// representation variable or a concrete representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rho {
    /// A representation variable `r`.
    Var(Symbol),
    /// A concrete representation `υ`.
    Concrete(ConcreteRep),
}

impl Rho {
    /// Shorthand for `Rho::Concrete(ConcreteRep::P)`.
    pub const P: Rho = Rho::Concrete(ConcreteRep::P);
    /// Shorthand for `Rho::Concrete(ConcreteRep::I)`.
    pub const I: Rho = Rho::Concrete(ConcreteRep::I);

    /// The concrete representation, if this is not a variable.
    pub fn as_concrete(self) -> Option<ConcreteRep> {
        match self {
            Rho::Var(_) => None,
            Rho::Concrete(u) => Some(u),
        }
    }
}

impl fmt::Display for Rho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rho::Var(r) => write!(f, "{r}"),
            Rho::Concrete(u) => write!(f, "{u}"),
        }
    }
}

/// A kind `κ ::= TYPE ρ` (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LKind(pub Rho);

impl LKind {
    /// `TYPE P`.
    pub const P: LKind = LKind(Rho::P);
    /// `TYPE I`.
    pub const I: LKind = LKind(Rho::I);

    /// `TYPE r` for a representation variable.
    pub fn var(r: Symbol) -> LKind {
        LKind(Rho::Var(r))
    }

    /// Is the representation concrete (`TYPE υ`)? This is the premise
    /// highlighted in E_APP and E_LAM (Figure 3).
    pub fn is_concrete(self) -> bool {
        self.0.as_concrete().is_some()
    }
}

impl fmt::Display for LKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TYPE {}", self.0)
    }
}

/// A type `τ` (Figure 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `Int`: boxed, lifted integers, of kind `TYPE P`.
    Int,
    /// `Int#`: unboxed integers, of kind `TYPE I`.
    IntHash,
    /// `τ₁ -> τ₂`, of kind `TYPE P` (functions are boxed and lifted).
    Arrow(Box<Ty>, Box<Ty>),
    /// A type variable `α`.
    Var(Symbol),
    /// `∀α:κ. τ`.
    ForallTy(Symbol, LKind, Box<Ty>),
    /// `∀r. τ`.
    ForallRep(Symbol, Box<Ty>),
}

impl Ty {
    /// `τ₁ -> τ₂`.
    pub fn arrow(from: Ty, to: Ty) -> Ty {
        Ty::Arrow(Box::new(from), Box::new(to))
    }

    /// `∀α:κ. τ`.
    pub fn forall_ty(alpha: impl Into<Symbol>, kind: LKind, body: Ty) -> Ty {
        Ty::ForallTy(alpha.into(), kind, Box::new(body))
    }

    /// `∀r. τ`.
    pub fn forall_rep(r: impl Into<Symbol>, body: Ty) -> Ty {
        Ty::ForallRep(r.into(), Box::new(body))
    }

    /// The type of `error` (rule E_ERROR):
    /// `∀r. ∀α:TYPE r. Int -> α`.
    ///
    /// (`L` uses `Int` where Haskell's `error` takes a `String`.)
    pub fn error_type() -> Ty {
        let r = Symbol::intern("r");
        let a = Symbol::intern("a");
        Ty::forall_rep(
            r,
            Ty::forall_ty(a, LKind::var(r), Ty::arrow(Ty::Int, Ty::Var(a))),
        )
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => f.write_str("Int"),
            Ty::IntHash => f.write_str("Int#"),
            Ty::Arrow(a, b) => {
                if matches!(**a, Ty::Arrow(..) | Ty::ForallTy(..) | Ty::ForallRep(..)) {
                    write!(f, "({a}) -> {b}")
                } else {
                    write!(f, "{a} -> {b}")
                }
            }
            Ty::Var(v) => write!(f, "{v}"),
            Ty::ForallTy(a, k, t) => write!(f, "forall ({a} :: {k}). {t}"),
            Ty::ForallRep(r, t) => write!(f, "forall {r}. {t}"),
        }
    }
}

/// An expression `e` (Figure 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A term variable `x`.
    Var(Symbol),
    /// Application `e₁ e₂`.
    App(Box<Expr>, Box<Expr>),
    /// Abstraction `λx:τ. e`.
    Lam(Symbol, Ty, Box<Expr>),
    /// Type abstraction `Λα:κ. e`.
    TyLam(Symbol, LKind, Box<Expr>),
    /// Type application `e τ`.
    TyApp(Box<Expr>, Ty),
    /// Representation abstraction `Λr. e` — the novel form.
    RepLam(Symbol, Box<Expr>),
    /// Representation application `e ρ` — the novel form.
    RepApp(Box<Expr>, Rho),
    /// The data constructor `I#[e]`, boxing an `Int#` into an `Int`.
    Con(Box<Expr>),
    /// `case e₁ of I#[x] -> e₂`, unboxing an `Int`.
    Case(Box<Expr>, Symbol, Box<Expr>),
    /// An integer literal `n`, of type `Int#`.
    Lit(i64),
    /// `error`: halts the machine when evaluated (S_ERROR / ERR).
    Error,
}

impl Expr {
    /// `e₁ e₂`.
    pub fn app(fun: Expr, arg: Expr) -> Expr {
        Expr::App(Box::new(fun), Box::new(arg))
    }

    /// `λx:τ. e`.
    pub fn lam(x: impl Into<Symbol>, ty: Ty, body: Expr) -> Expr {
        Expr::Lam(x.into(), ty, Box::new(body))
    }

    /// `Λα:κ. e`.
    pub fn ty_lam(alpha: impl Into<Symbol>, kind: LKind, body: Expr) -> Expr {
        Expr::TyLam(alpha.into(), kind, Box::new(body))
    }

    /// `e τ`.
    pub fn ty_app(fun: Expr, ty: Ty) -> Expr {
        Expr::TyApp(Box::new(fun), ty)
    }

    /// `Λr. e`.
    pub fn rep_lam(r: impl Into<Symbol>, body: Expr) -> Expr {
        Expr::RepLam(r.into(), Box::new(body))
    }

    /// `e ρ`.
    pub fn rep_app(fun: Expr, rho: Rho) -> Expr {
        Expr::RepApp(Box::new(fun), rho)
    }

    /// `I#[e]`.
    pub fn con(e: Expr) -> Expr {
        Expr::Con(Box::new(e))
    }

    /// `case scrut of I#[x] -> body`.
    pub fn case(scrut: Expr, x: impl Into<Symbol>, body: Expr) -> Expr {
        Expr::Case(Box::new(scrut), x.into(), Box::new(body))
    }

    /// Is this expression a value (Figure 2)?
    ///
    /// Note that type and representation abstractions are values only when
    /// their *bodies* are values: `L` supports type erasure, so evaluation
    /// proceeds under `Λ` (§6.1).
    pub fn is_value(&self) -> bool {
        match self {
            Expr::Lam(..) | Expr::Lit(_) => true,
            Expr::TyLam(_, _, body) | Expr::RepLam(_, body) => body.is_value(),
            Expr::Con(inner) => inner.is_value(),
            _ => false,
        }
    }

    /// Number of AST nodes, used to bound generated terms in tests.
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Lit(_) | Expr::Error => 1,
            Expr::App(a, b) => 1 + a.size() + b.size(),
            Expr::Lam(_, _, b) | Expr::TyLam(_, _, b) | Expr::RepLam(_, b) | Expr::Con(b) => {
                1 + b.size()
            }
            Expr::TyApp(a, _) | Expr::RepApp(a, _) => 1 + a.size(),
            Expr::Case(a, _, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x) => write!(f, "{x}"),
            Expr::App(e1, e2) => {
                write_atom(f, e1)?;
                f.write_str(" ")?;
                write_atom(f, e2)
            }
            Expr::Lam(x, ty, body) => write!(f, "\\({x} : {ty}). {body}"),
            Expr::TyLam(a, k, body) => write!(f, "/\\({a} :: {k}). {body}"),
            Expr::TyApp(e, ty) => {
                write_atom(f, e)?;
                write!(f, " [{ty}]")
            }
            Expr::RepLam(r, body) => write!(f, "/\\{r}. {body}"),
            Expr::RepApp(e, rho) => {
                write_atom(f, e)?;
                write!(f, " {{{rho}}}")
            }
            Expr::Con(e) => write!(f, "I#[{e}]"),
            Expr::Case(scrut, x, body) => {
                write!(f, "case {scrut} of I#[{x}] -> {body}")
            }
            Expr::Lit(n) => write!(f, "{n}"),
            Expr::Error => f.write_str("error"),
        }
    }
}

/// Parenthesizes non-atomic expressions when printed in application
/// position.
fn write_atom(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
    match e {
        Expr::Var(_) | Expr::Lit(_) | Expr::Error | Expr::Con(_) => write!(f, "{e}"),
        _ => write!(f, "({e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn literals_and_lambdas_are_values() {
        assert!(Expr::Lit(3).is_value());
        assert!(Expr::lam("x", Ty::Int, Expr::Var(sym("x"))).is_value());
    }

    #[test]
    fn value_under_type_lambda_requires_value_body() {
        // Λα:TYPE P. 3 is a value; Λα:TYPE P. (case ... ) is not.
        let v = Expr::ty_lam("a", LKind::P, Expr::Lit(3));
        assert!(v.is_value());
        let not_v = Expr::ty_lam(
            "a",
            LKind::P,
            Expr::case(Expr::con(Expr::Lit(1)), "x", Expr::Var(sym("x"))),
        );
        assert!(!not_v.is_value());
    }

    #[test]
    fn con_of_value_is_value() {
        assert!(Expr::con(Expr::Lit(1)).is_value());
        assert!(!Expr::con(Expr::case(
            Expr::con(Expr::Lit(1)),
            "x",
            Expr::Var(sym("x"))
        ))
        .is_value());
    }

    #[test]
    fn error_is_not_a_value() {
        assert!(!Expr::Error.is_value());
    }

    #[test]
    fn applications_are_not_values() {
        let e = Expr::app(
            Expr::lam("x", Ty::Int, Expr::Var(sym("x"))),
            Expr::con(Expr::Lit(1)),
        );
        assert!(!e.is_value());
    }

    #[test]
    fn error_type_is_the_paper_type() {
        assert_eq!(
            Ty::error_type().to_string(),
            "forall r. forall (a :: TYPE r). Int -> a"
        );
    }

    #[test]
    fn display_round_trips_shapes() {
        let e = Expr::rep_app(Expr::ty_app(Expr::Error, Ty::IntHash), Rho::I);
        assert_eq!(e.to_string(), "(error [Int#]) {I}");
        let lam = Expr::lam("x", Ty::IntHash, Expr::Var(sym("x")));
        assert_eq!(lam.to_string(), "\\(x : Int#). x");
    }

    #[test]
    fn arrow_display_parenthesizes_left_nesting() {
        let t = Ty::arrow(Ty::arrow(Ty::Int, Ty::Int), Ty::Int);
        assert_eq!(t.to_string(), "(Int -> Int) -> Int");
        let t2 = Ty::arrow(Ty::Int, Ty::arrow(Ty::Int, Ty::Int));
        assert_eq!(t2.to_string(), "Int -> Int -> Int");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::app(
            Expr::lam("x", Ty::Int, Expr::Var(sym("x"))),
            Expr::con(Expr::Lit(1)),
        );
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn kind_concreteness() {
        assert!(LKind::P.is_concrete());
        assert!(LKind::I.is_concrete());
        assert!(!LKind::var(sym("r")).is_concrete());
    }
}
