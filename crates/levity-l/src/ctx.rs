//! Typing contexts `Γ ::= ∅ | Γ, x:τ | Γ, α:κ | Γ, r` (Figure 2).

use std::fmt;

use levity_core::symbol::Symbol;

use crate::syntax::{LKind, Ty};

/// A single context entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Binding {
    /// A term variable `x : τ`.
    Term(Symbol, Ty),
    /// A type variable `α : κ`.
    TyVar(Symbol, LKind),
    /// A representation variable `r`.
    RepVar(Symbol),
}

/// An ordered typing context. Later bindings shadow earlier ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ctx {
    bindings: Vec<Binding>,
}

impl Ctx {
    /// The empty context `∅`.
    pub fn new() -> Ctx {
        Ctx::default()
    }

    /// Pushes `x : τ`.
    pub fn push_term(&mut self, x: Symbol, ty: Ty) {
        self.bindings.push(Binding::Term(x, ty));
    }

    /// Pushes `α : κ`.
    pub fn push_ty_var(&mut self, alpha: Symbol, kind: LKind) {
        self.bindings.push(Binding::TyVar(alpha, kind));
    }

    /// Pushes `r`.
    pub fn push_rep_var(&mut self, r: Symbol) {
        self.bindings.push(Binding::RepVar(r));
    }

    /// Pops the most recent binding.
    ///
    /// # Panics
    ///
    /// Panics if the context is empty — that is a checker bug, not a user
    /// error.
    pub fn pop(&mut self) {
        self.bindings.pop().expect("popped an empty context");
    }

    /// The type of term variable `x`, if bound.
    pub fn lookup_term(&self, x: Symbol) -> Option<&Ty> {
        self.bindings.iter().rev().find_map(|b| match b {
            Binding::Term(y, ty) if *y == x => Some(ty),
            _ => None,
        })
    }

    /// The kind of type variable `α`, if bound.
    pub fn lookup_ty_var(&self, alpha: Symbol) -> Option<LKind> {
        self.bindings.iter().rev().find_map(|b| match b {
            Binding::TyVar(beta, k) if *beta == alpha => Some(*k),
            _ => None,
        })
    }

    /// Is representation variable `r` in scope? (Premise of K_VAR.)
    pub fn has_rep_var(&self, r: Symbol) -> bool {
        self.bindings
            .iter()
            .rev()
            .any(|b| matches!(b, Binding::RepVar(s) if *s == r))
    }

    /// Does the context contain *no term bindings*? Both Progress and
    /// Simulation (§6) are stated under this condition.
    pub fn has_no_term_bindings(&self) -> bool {
        !self.bindings.iter().any(|b| matches!(b, Binding::Term(..)))
    }

    /// All term bindings, oldest first.
    pub fn term_bindings(&self) -> impl Iterator<Item = (Symbol, &Ty)> {
        self.bindings.iter().filter_map(|b| match b {
            Binding::Term(x, ty) => Some((*x, ty)),
            _ => None,
        })
    }

    /// Number of bindings; used by the checker to truncate on exit.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Is the context empty?
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return f.write_str("∅");
        }
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match b {
                Binding::Term(x, ty) => write!(f, "{x} : {ty}")?,
                Binding::TyVar(a, k) => write!(f, "{a} :: {k}")?,
                Binding::RepVar(r) => write!(f, "{r}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn lookup_respects_shadowing() {
        let mut ctx = Ctx::new();
        ctx.push_term(sym("x"), Ty::Int);
        ctx.push_term(sym("x"), Ty::IntHash);
        assert_eq!(ctx.lookup_term(sym("x")), Some(&Ty::IntHash));
        ctx.pop();
        assert_eq!(ctx.lookup_term(sym("x")), Some(&Ty::Int));
    }

    #[test]
    fn rep_vars_are_tracked() {
        let mut ctx = Ctx::new();
        assert!(!ctx.has_rep_var(sym("r")));
        ctx.push_rep_var(sym("r"));
        assert!(ctx.has_rep_var(sym("r")));
    }

    #[test]
    fn no_term_bindings_predicate() {
        let mut ctx = Ctx::new();
        ctx.push_rep_var(sym("r"));
        ctx.push_ty_var(sym("a"), LKind::var(sym("r")));
        assert!(ctx.has_no_term_bindings());
        ctx.push_term(sym("x"), Ty::Var(sym("a")));
        assert!(!ctx.has_no_term_bindings());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Ctx::new().to_string(), "∅");
        let mut ctx = Ctx::new();
        ctx.push_term(sym("x"), Ty::Int);
        assert_eq!(ctx.to_string(), "x : Int");
    }
}
