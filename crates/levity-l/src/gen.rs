//! Random generation of *well-typed* `L` terms.
//!
//! The §6 theorems (Preservation, Progress, Compilation, Simulation) are
//! universally quantified over well-typed terms; we test them by sampling
//! this generator. Generation is type-directed: first sample a goal type
//! whose kind is concrete, then synthesize a term of that type, choosing
//! among the introduction form, variables of matching type, β-redex
//! wrappers (`(λx:σ. …) e`), type- and representation-application
//! wrappers (`(Λα:κ. e) σ`, `(Λr. e) ρ`), `case` wrappers, and `error`.
//!
//! Terms are closed and — because `L` has no recursion — always
//! terminate, so the tests can run them to completion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use levity_core::symbol::Symbol;

use crate::subst::alpha_eq_ty;
use crate::syntax::{ConcreteRep, Expr, LKind, Rho, Ty};

/// Tuning knobs for the generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Maximum depth of the generated term.
    pub max_depth: usize,
    /// Whether `error` may appear (introduces ⊥ outcomes).
    pub allow_error: bool,
    /// Whether representation polymorphism (`Λr`/`{ρ}`) may appear.
    pub allow_rep_poly: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 6,
            allow_error: true,
            allow_rep_poly: true,
        }
    }
}

/// A deterministic generator of closed, well-typed `L` terms.
#[derive(Debug)]
pub struct Generator {
    rng: StdRng,
    config: GenConfig,
    fresh: u64,
}

impl Generator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, config: GenConfig) -> Generator {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            config,
            fresh: 0,
        }
    }

    /// Generates one closed well-typed term together with its type.
    ///
    /// Retries internally until synthesis succeeds (leaf cases always
    /// succeed for the closed goal types produced here, so this
    /// terminates).
    pub fn generate(&mut self) -> (Expr, Ty) {
        loop {
            let ty = self.gen_goal_type(self.config.max_depth.min(3));
            let mut env = Vec::new();
            if let Some(e) = self.gen_expr(&mut env, &ty, self.config.max_depth) {
                return (e, ty);
            }
        }
    }

    fn fresh(&mut self, prefix: &str) -> Symbol {
        let n = self.fresh;
        self.fresh += 1;
        Symbol::intern(&format!("{prefix}_{n}"))
    }

    /// Samples a closed type whose kind is concrete.
    fn gen_goal_type(&mut self, depth: usize) -> Ty {
        if depth == 0 {
            return if self.rng.random::<bool>() {
                Ty::Int
            } else {
                Ty::IntHash
            };
        }
        match self.rng.random_range(0..6u8) {
            0 => Ty::Int,
            1 => Ty::IntHash,
            2 | 3 => {
                let dom = self.gen_goal_type(depth - 1);
                let cod = self.gen_goal_type(depth - 1);
                Ty::arrow(dom, cod)
            }
            4 => {
                // ∀α:κ. …α used only at concrete positions: keep it simple
                // by generating ∀α:κ. α -> α or ∀α:κ. closed.
                let alpha = self.fresh("a");
                let kind = if self.rng.random::<bool>() {
                    LKind::P
                } else {
                    LKind::I
                };
                if self.rng.random::<bool>() {
                    Ty::forall_ty(alpha, kind, Ty::arrow(Ty::Var(alpha), Ty::Var(alpha)))
                } else {
                    Ty::forall_ty(alpha, kind, self.gen_goal_type(depth - 1))
                }
            }
            _ => {
                if self.config.allow_rep_poly {
                    // The error-shaped type: ∀r. ∀α:TYPE r. Int -> α.
                    let r = self.fresh("r");
                    let alpha = self.fresh("a");
                    Ty::forall_rep(
                        r,
                        Ty::forall_ty(alpha, LKind::var(r), Ty::arrow(Ty::Int, Ty::Var(alpha))),
                    )
                } else {
                    self.gen_goal_type(depth - 1)
                }
            }
        }
    }

    /// The concrete kind of a *closed-enough* type under the generation
    /// environment. Type variables bound by generated `ForallTy` binders
    /// carry their kind in the environment.
    fn kind_of(&self, env: &[EnvEntry], ty: &Ty) -> Option<ConcreteRep> {
        match ty {
            Ty::Int | Ty::Arrow(..) => Some(ConcreteRep::P),
            Ty::IntHash => Some(ConcreteRep::I),
            Ty::Var(a) => env.iter().rev().find_map(|e| match e {
                EnvEntry::TyVar(b, LKind(Rho::Concrete(u))) if b == a => Some(*u),
                EnvEntry::TyVar(b, _) if b == a => None,
                _ => None,
            }),
            Ty::ForallTy(a, k, body) => {
                let mut env2 = env.to_vec();
                env2.push(EnvEntry::TyVar(*a, *k));
                self.kind_of(&env2, body)
            }
            Ty::ForallRep(_, body) => self.kind_of(env, body),
        }
    }

    fn gen_expr(&mut self, env: &mut Vec<EnvEntry>, ty: &Ty, depth: usize) -> Option<Expr> {
        // With remaining depth, sometimes wrap in an elimination form.
        if depth > 0 {
            let roll = self.rng.random_range(0..10u8);
            match roll {
                // β-redex wrapper: (λx:σ. goal) arg.
                0 => {
                    if let Some(e) = self.try_app_wrapper(env, ty, depth) {
                        return Some(e);
                    }
                }
                // Type-application wrapper: (Λα:κ. goal) σ.
                1 => {
                    if let Some(e) = self.try_ty_app_wrapper(env, ty, depth) {
                        return Some(e);
                    }
                }
                // Rep-application wrapper: (Λr. goal) ρ.
                2 if self.config.allow_rep_poly => {
                    if let Some(e) = self.try_rep_app_wrapper(env, ty, depth) {
                        return Some(e);
                    }
                }
                // case wrapper: case scrut of I#[x] -> goal.
                3 => {
                    if let Some(e) = self.try_case_wrapper(env, ty, depth) {
                        return Some(e);
                    }
                }
                // error at the goal type.
                4 if self.config.allow_error => {
                    if let Some(e) = self.try_error(env, ty, depth) {
                        return Some(e);
                    }
                }
                // A variable of the goal type.
                5 | 6 => {
                    if let Some(e) = self.try_var(env, ty) {
                        return Some(e);
                    }
                }
                _ => {}
            }
        }
        // Introduction form for the goal type.
        match ty {
            Ty::Int => {
                let inner = self.gen_expr(env, &Ty::IntHash, depth.saturating_sub(1))?;
                Some(Expr::con(inner))
            }
            Ty::IntHash => Some(Expr::Lit(self.rng.random_range(-100..100))),
            Ty::Arrow(dom, cod) => {
                // E_LAM needs the domain kind concrete.
                self.kind_of(env, dom)?;
                let x = self.fresh("x");
                env.push(EnvEntry::Term(x, (**dom).clone()));
                let body = self.gen_expr(env, cod, depth.saturating_sub(1));
                env.pop();
                Some(Expr::lam(x, (**dom).clone(), body?))
            }
            Ty::ForallTy(alpha, kind, body) => {
                env.push(EnvEntry::TyVar(*alpha, *kind));
                let inner = self.gen_expr(env, body, depth.saturating_sub(1));
                env.pop();
                Some(Expr::ty_lam(*alpha, *kind, inner?))
            }
            Ty::ForallRep(r, body) => {
                env.push(EnvEntry::RepVar(*r));
                let inner = self.gen_expr(env, body, depth.saturating_sub(1));
                env.pop();
                Some(Expr::rep_lam(*r, inner?))
            }
            Ty::Var(_) => self.try_var(env, ty).or_else(|| {
                if self.config.allow_error {
                    self.try_error(env, ty, depth)
                } else {
                    None
                }
            }),
        }
    }

    fn try_var(&mut self, env: &[EnvEntry], ty: &Ty) -> Option<Expr> {
        let candidates: Vec<Symbol> = env
            .iter()
            .filter_map(|e| match e {
                EnvEntry::Term(x, t) if alpha_eq_ty(t, ty) => Some(*x),
                _ => None,
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let ix = self.rng.random_range(0..candidates.len());
        Some(Expr::Var(candidates[ix]))
    }

    fn try_app_wrapper(&mut self, env: &mut Vec<EnvEntry>, ty: &Ty, depth: usize) -> Option<Expr> {
        // Choose an argument type with a concrete kind.
        let arg_ty = match self.rng.random_range(0..3u8) {
            0 => Ty::Int,
            1 => Ty::IntHash,
            _ => Ty::arrow(Ty::Int, Ty::Int),
        };
        let x = self.fresh("x");
        env.push(EnvEntry::Term(x, arg_ty.clone()));
        let body = self.gen_expr(env, ty, depth - 1);
        env.pop();
        let body = body?;
        let arg = self.gen_expr(env, &arg_ty, depth - 1)?;
        Some(Expr::app(Expr::lam(x, arg_ty, body), arg))
    }

    fn try_ty_app_wrapper(
        &mut self,
        env: &mut Vec<EnvEntry>,
        ty: &Ty,
        depth: usize,
    ) -> Option<Expr> {
        let alpha = self.fresh("a");
        let (kind, arg_ty) = if self.rng.random::<bool>() {
            (LKind::P, Ty::Int)
        } else {
            (LKind::I, Ty::IntHash)
        };
        // α is fresh and never used when generating the body, so
        // (Λα:κ. body) σ : ty[σ/α] = ty.
        let body = self.gen_expr(env, ty, depth - 1)?;
        Some(Expr::ty_app(Expr::ty_lam(alpha, kind, body), arg_ty))
    }

    fn try_rep_app_wrapper(
        &mut self,
        env: &mut Vec<EnvEntry>,
        ty: &Ty,
        depth: usize,
    ) -> Option<Expr> {
        let r = self.fresh("r");
        let rho = if self.rng.random::<bool>() {
            Rho::P
        } else {
            Rho::I
        };
        // The generated body never mentions the fresh r, and ty must not
        // have kind TYPE r (it cannot: r is fresh), so the RepLam checks.
        let body = self.gen_expr(env, ty, depth - 1)?;
        Some(Expr::rep_app(Expr::rep_lam(r, body), rho))
    }

    fn try_case_wrapper(&mut self, env: &mut Vec<EnvEntry>, ty: &Ty, depth: usize) -> Option<Expr> {
        let scrut = self.gen_expr(env, &Ty::Int, depth - 1)?;
        let x = self.fresh("x");
        env.push(EnvEntry::Term(x, Ty::IntHash));
        let body = self.gen_expr(env, ty, depth - 1);
        env.pop();
        Some(Expr::case(scrut, x, body?))
    }

    fn try_error(&mut self, env: &mut Vec<EnvEntry>, ty: &Ty, depth: usize) -> Option<Expr> {
        let rep = self.kind_of(env, ty)?;
        let rho = match rep {
            ConcreteRep::P => Rho::P,
            ConcreteRep::I => Rho::I,
        };
        let msg = self.gen_expr(env, &Ty::Int, depth.saturating_sub(1).min(1))?;
        Some(Expr::app(
            Expr::ty_app(Expr::rep_app(Expr::Error, rho), ty.clone()),
            msg,
        ))
    }
}

#[derive(Clone, Debug)]
enum EnvEntry {
    Term(Symbol, Ty),
    TyVar(Symbol, LKind),
    /// Rep variables are tracked for scoping only; the generator never
    /// reuses them (fresh binders), so the name itself goes unread.
    RepVar(#[allow(dead_code)] Symbol),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::check_closed;

    #[test]
    fn generated_terms_typecheck() {
        let mut generator = Generator::new(0xBEEF, GenConfig::default());
        for i in 0..500 {
            let (e, ty) = generator.generate();
            let inferred = check_closed(&e)
                .unwrap_or_else(|err| panic!("generated ill-typed term #{i}: {e}\nerror: {err}"));
            assert!(
                alpha_eq_ty(&inferred, &ty),
                "type mismatch for {e}: expected {ty}, inferred {inferred}"
            );
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut g1 = Generator::new(7, GenConfig::default());
        let mut g2 = Generator::new(7, GenConfig::default());
        for _ in 0..50 {
            assert_eq!(g1.generate(), g2.generate());
        }
    }

    #[test]
    fn generator_without_error_never_emits_error() {
        let config = GenConfig {
            allow_error: false,
            ..GenConfig::default()
        };
        let mut generator = Generator::new(42, config);
        fn mentions_error(e: &Expr) -> bool {
            match e {
                Expr::Error => true,
                Expr::Var(_) | Expr::Lit(_) => false,
                Expr::App(a, b) | Expr::Case(a, _, b) => mentions_error(a) || mentions_error(b),
                Expr::Lam(_, _, b) | Expr::TyLam(_, _, b) | Expr::RepLam(_, b) | Expr::Con(b) => {
                    mentions_error(b)
                }
                Expr::TyApp(a, _) | Expr::RepApp(a, _) => mentions_error(a),
            }
        }
        for _ in 0..200 {
            let (e, _) = generator.generate();
            assert!(!mentions_error(&e), "unexpected error in {e}");
        }
    }

    #[test]
    fn generated_terms_have_bounded_but_nontrivial_sizes() {
        let mut generator = Generator::new(1, GenConfig::default());
        let mut max_size = 0;
        for _ in 0..200 {
            let (e, _) = generator.generate();
            max_size = max_size.max(e.size());
        }
        assert!(max_size > 5, "generator only produces trivial terms");
    }
}
