//! The operational semantics of `L` (Figure 4).
//!
//! Evaluation is *type-directed*: an application `e₁ e₂` is lazy
//! (call-by-name: S_APPLAZY / S_BETAPTR) when the argument type has kind
//! `TYPE P`, and strict (call-by-value, argument first: S_APPSTRICT /
//! S_APPSTRICT2 / S_BETAUNBOXED) when it has kind `TYPE I`. This is the
//! formal version of "the kind determines the calling convention".
//!
//! Because `L` erases types, evaluation also proceeds *under* `Λ`
//! (S_TLAM, S_RLAM), and `Λ`-abstractions are values only when their
//! bodies are (§6.1).

use std::fmt;

use crate::ctx::Ctx;
use crate::subst::{subst_expr, subst_rep_in_expr, subst_ty_in_expr};
use crate::syntax::{ConcreteRep, Expr};
use crate::typecheck::{ty_concrete_kind, type_of, TypeError};

/// The result of one small step `Γ ⊢ e → e'`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// `e` stepped to the contained expression.
    To(Expr),
    /// `e` is already a value; no rule applies.
    Value,
    /// `e` stepped to ⊥: the machine aborted (S_ERROR).
    Bottom,
}

/// Why the step relation got stuck (only possible on ill-typed input;
/// Progress guarantees this never happens for well-typed closed terms).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepError {
    /// The semantics needed a type and type checking failed.
    Type(TypeError),
    /// No rule applies and the expression is not a value.
    Stuck(Expr),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Type(e) => write!(f, "type error during evaluation: {e}"),
            StepError::Stuck(e) => write!(f, "stuck expression: {e}"),
        }
    }
}

impl std::error::Error for StepError {}

impl From<TypeError> for StepError {
    fn from(e: TypeError) -> StepError {
        StepError::Type(e)
    }
}

/// Performs one step of `Γ ⊢ e → e'` (Figure 4).
///
/// The context matters only for the type-directed choice between lazy and
/// strict application and for stepping under binders; closed terms use
/// [`step_closed`].
///
/// # Errors
///
/// Returns [`StepError`] only on ill-typed input.
pub fn step(ctx: &mut Ctx, e: &Expr) -> Result<Step, StepError> {
    if e.is_value() {
        return Ok(Step::Value);
    }
    match e {
        // A free variable is stuck, not a value; Progress rules this out
        // for contexts without term bindings.
        Expr::Var(_) => Err(StepError::Stuck(e.clone())),
        // Handled by the is_value check above.
        Expr::Lam(..) | Expr::Lit(_) => Ok(Step::Value),

        // S_ERROR: error → ⊥.
        Expr::Error => Ok(Step::Bottom),

        Expr::App(e1, e2) => {
            // The choice of strategy is dictated by the *kind* of the
            // argument type (S_APPLAZY vs S_APPSTRICT).
            let arg_ty = type_of(ctx, e2)?;
            let rep = ty_concrete_kind(ctx, &arg_ty)?;
            match rep {
                ConcreteRep::P => {
                    // S_BETAPTR: call-by-name; substitute e2 unevaluated.
                    if let Expr::Lam(x, _, body) = &**e1 {
                        return Ok(Step::To(subst_expr(body, *x, e2)));
                    }
                    // S_APPLAZY: evaluate the function.
                    match step(ctx, e1)? {
                        Step::To(e1p) => Ok(Step::To(Expr::app(e1p, (**e2).clone()))),
                        Step::Bottom => Ok(Step::Bottom),
                        Step::Value => Err(StepError::Stuck(e.clone())),
                    }
                }
                ConcreteRep::I => {
                    if !e2.is_value() {
                        // S_APPSTRICT: evaluate the argument first.
                        return match step(ctx, e2)? {
                            Step::To(e2p) => Ok(Step::To(Expr::app((**e1).clone(), e2p))),
                            Step::Bottom => Ok(Step::Bottom),
                            Step::Value => Err(StepError::Stuck(e.clone())),
                        };
                    }
                    // S_BETAUNBOXED: argument is a value; β-reduce.
                    if let Expr::Lam(x, _, body) = &**e1 {
                        return Ok(Step::To(subst_expr(body, *x, e2)));
                    }
                    // S_APPSTRICT2: then evaluate the function.
                    match step(ctx, e1)? {
                        Step::To(e1p) => Ok(Step::To(Expr::app(e1p, (**e2).clone()))),
                        Step::Bottom => Ok(Step::Bottom),
                        Step::Value => Err(StepError::Stuck(e.clone())),
                    }
                }
            }
        }

        // S_TBETA / S_TAPP.
        Expr::TyApp(fun, ty_arg) => {
            if let Expr::TyLam(alpha, _, body) = &**fun {
                if body.is_value() {
                    return Ok(Step::To(subst_ty_in_expr(body, *alpha, ty_arg)));
                }
            }
            match step(ctx, fun)? {
                Step::To(fp) => Ok(Step::To(Expr::ty_app(fp, ty_arg.clone()))),
                Step::Bottom => Ok(Step::Bottom),
                Step::Value => Err(StepError::Stuck(e.clone())),
            }
        }

        // S_RBETA / S_RAPP.
        Expr::RepApp(fun, rho) => {
            if let Expr::RepLam(r, body) = &**fun {
                if body.is_value() {
                    return Ok(Step::To(subst_rep_in_expr(body, *r, *rho)));
                }
            }
            match step(ctx, fun)? {
                Step::To(fp) => Ok(Step::To(Expr::rep_app(fp, *rho))),
                Step::Bottom => Ok(Step::Bottom),
                Step::Value => Err(StepError::Stuck(e.clone())),
            }
        }

        // S_TLAM: evaluate under Λ (type erasure).
        Expr::TyLam(alpha, kind, body) => {
            ctx.push_ty_var(*alpha, *kind);
            let inner = step(ctx, body);
            ctx.pop();
            match inner? {
                Step::To(bp) => Ok(Step::To(Expr::ty_lam(*alpha, *kind, bp))),
                Step::Bottom => Ok(Step::Bottom),
                Step::Value => Err(StepError::Stuck(e.clone())),
            }
        }

        // S_RLAM: evaluate under Λr.
        Expr::RepLam(r, body) => {
            ctx.push_rep_var(*r);
            let inner = step(ctx, body);
            ctx.pop();
            match inner? {
                Step::To(bp) => Ok(Step::To(Expr::rep_lam(*r, bp))),
                Step::Bottom => Ok(Step::Bottom),
                Step::Value => Err(StepError::Stuck(e.clone())),
            }
        }

        // S_CON: the field of I# is an Int#, evaluated strictly.
        Expr::Con(inner) => match step(ctx, inner)? {
            Step::To(ip) => Ok(Step::To(Expr::con(ip))),
            Step::Bottom => Ok(Step::Bottom),
            Step::Value => Err(StepError::Stuck(e.clone())),
        },

        // S_MATCH / S_CASE.
        Expr::Case(scrut, x, body) => {
            if let Expr::Con(inner) = &**scrut {
                if let Expr::Lit(_) = &**inner {
                    return Ok(Step::To(subst_expr(body, *x, inner)));
                }
            }
            match step(ctx, scrut)? {
                Step::To(sp) => Ok(Step::To(Expr::case(sp, *x, (**body).clone()))),
                Step::Bottom => Ok(Step::Bottom),
                Step::Value => Err(StepError::Stuck(e.clone())),
            }
        }
    }
}

/// One step of a closed expression.
pub fn step_closed(e: &Expr) -> Result<Step, StepError> {
    step(&mut Ctx::new(), e)
}

/// The observable outcome of running an `L` expression to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Evaluated to a value.
    Value(Expr),
    /// The machine aborted via `error` (⊥).
    Bottom,
    /// Fuel ran out (cannot happen for well-typed terms given enough fuel:
    /// `L` has no recursion, so all well-typed terms terminate).
    OutOfFuel(Expr),
}

impl Outcome {
    /// The value, if the outcome is a value.
    pub fn value(&self) -> Option<&Expr> {
        match self {
            Outcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Runs `e` for at most `fuel` steps, recording the number of steps taken.
///
/// # Errors
///
/// Returns [`StepError`] only on ill-typed input.
pub fn eval(ctx: &mut Ctx, e: &Expr, fuel: usize) -> Result<(Outcome, usize), StepError> {
    let mut cur = e.clone();
    for taken in 0..fuel {
        match step(ctx, &cur)? {
            Step::To(next) => cur = next,
            Step::Value => return Ok((Outcome::Value(cur), taken)),
            Step::Bottom => return Ok((Outcome::Bottom, taken + 1)),
        }
    }
    if cur.is_value() {
        Ok((Outcome::Value(cur), fuel))
    } else {
        Ok((Outcome::OutOfFuel(cur), fuel))
    }
}

/// Evaluates a closed expression with the given fuel.
///
/// # Errors
///
/// Returns [`StepError`] only on ill-typed input.
///
/// # Examples
///
/// ```
/// use levity_l::step::{eval_closed, Outcome};
/// use levity_l::syntax::{Expr, Ty};
///
/// // (\(x : Int#). x) 7  —  strict application of an unboxed argument.
/// let e = Expr::app(Expr::lam("x", Ty::IntHash, Expr::Var("x".into())), Expr::Lit(7));
/// let (outcome, _steps) = eval_closed(&e, 100)?;
/// assert_eq!(outcome, Outcome::Value(Expr::Lit(7)));
/// # Ok::<(), levity_l::step::StepError>(())
/// ```
pub fn eval_closed(e: &Expr, fuel: usize) -> Result<(Outcome, usize), StepError> {
    eval(&mut Ctx::new(), e, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{LKind, Rho, Ty};
    use levity_core::symbol::Symbol;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn run(e: &Expr) -> Outcome {
        eval_closed(e, 10_000)
            .expect("evaluation should not get stuck")
            .0
    }

    #[test]
    fn beta_unboxed() {
        let e = Expr::app(
            Expr::lam("x", Ty::IntHash, Expr::Var(sym("x"))),
            Expr::Lit(3),
        );
        assert_eq!(run(&e), Outcome::Value(Expr::Lit(3)));
    }

    #[test]
    fn beta_pointer_is_call_by_name() {
        // (λx:Int. I#[5]) (error {P} [Int] (I#[0])) evaluates to I#[5]
        // without touching the erroring argument: S_BETAPTR substitutes
        // the argument unevaluated.
        let diverging_arg = Expr::app(
            Expr::ty_app(Expr::rep_app(Expr::Error, Rho::P), Ty::Int),
            Expr::con(Expr::Lit(0)),
        );
        let e = Expr::app(
            Expr::lam("x", Ty::Int, Expr::con(Expr::Lit(5))),
            diverging_arg,
        );
        assert_eq!(run(&e), Outcome::Value(Expr::con(Expr::Lit(5))));
    }

    #[test]
    fn strict_application_evaluates_argument_first() {
        // (λx:Int#. 5) (case (error {P} [Int] (I#[0])) of I#[y] -> y)
        // must hit ⊥: the Int# argument is evaluated before the call.
        let erroring = Expr::case(
            Expr::app(
                Expr::ty_app(Expr::rep_app(Expr::Error, Rho::P), Ty::Int),
                Expr::con(Expr::Lit(0)),
            ),
            "y",
            Expr::Var(sym("y")),
        );
        let e = Expr::app(Expr::lam("x", Ty::IntHash, Expr::Lit(5)), erroring);
        assert_eq!(run(&e), Outcome::Bottom);
    }

    #[test]
    fn case_unboxes_and_substitutes() {
        let e = Expr::case(Expr::con(Expr::Lit(9)), "x", Expr::Var(sym("x")));
        assert_eq!(run(&e), Outcome::Value(Expr::Lit(9)));
    }

    #[test]
    fn case_forces_scrutinee() {
        // case ((λy:Int#. I#[y]) 4) of I#[x] -> x
        let e = Expr::case(
            Expr::app(
                Expr::lam("y", Ty::IntHash, Expr::con(Expr::Var(sym("y")))),
                Expr::Lit(4),
            ),
            "x",
            Expr::Var(sym("x")),
        );
        assert_eq!(run(&e), Outcome::Value(Expr::Lit(4)));
    }

    #[test]
    fn type_beta_after_body_is_value() {
        // (Λα:TYPE P. λx:α. x) [Int] applied to I#[2].
        let e = Expr::app(
            Expr::ty_app(
                Expr::ty_lam(
                    "a",
                    LKind::P,
                    Expr::lam("x", Ty::Var(sym("a")), Expr::Var(sym("x"))),
                ),
                Ty::Int,
            ),
            Expr::con(Expr::Lit(2)),
        );
        assert_eq!(run(&e), Outcome::Value(Expr::con(Expr::Lit(2))));
    }

    #[test]
    fn evaluation_proceeds_under_type_lambda() {
        // Λα:TYPE P. ((λx:Int#. λy:α. y) 1) steps under the Λ until the
        // body is a value.
        let e = Expr::ty_lam(
            "a",
            LKind::P,
            Expr::app(
                Expr::lam(
                    "x",
                    Ty::IntHash,
                    Expr::lam("y", Ty::Var(sym("a")), Expr::Var(sym("y"))),
                ),
                Expr::Lit(1),
            ),
        );
        let out = run(&e);
        match out {
            Outcome::Value(Expr::TyLam(_, _, body)) => assert!(body.is_value()),
            other => panic!("expected a TyLam value, got {other:?}"),
        }
    }

    #[test]
    fn rep_beta() {
        // (Λr. Λα:TYPE r. λs:Int. error {r} [α] s) {I} [Int#] (I#[1]) → ⊥
        let my_error = Expr::rep_lam(
            "r",
            Expr::ty_lam(
                "a",
                LKind::var(sym("r")),
                Expr::lam(
                    "s",
                    Ty::Int,
                    Expr::app(
                        Expr::ty_app(
                            Expr::rep_app(Expr::Error, Rho::Var(sym("r"))),
                            Ty::Var(sym("a")),
                        ),
                        Expr::Var(sym("s")),
                    ),
                ),
            ),
        );
        let e = Expr::app(
            Expr::ty_app(Expr::rep_app(my_error, Rho::I), Ty::IntHash),
            Expr::con(Expr::Lit(1)),
        );
        assert_eq!(run(&e), Outcome::Bottom);
    }

    #[test]
    fn error_alone_bottoms() {
        assert_eq!(run(&Expr::Error), Outcome::Bottom);
    }

    #[test]
    fn con_evaluates_strictly() {
        // I#[(λx:Int#. x) 8]
        let e = Expr::con(Expr::app(
            Expr::lam("x", Ty::IntHash, Expr::Var(sym("x"))),
            Expr::Lit(8),
        ));
        assert_eq!(run(&e), Outcome::Value(Expr::con(Expr::Lit(8))));
    }

    #[test]
    fn steps_are_counted() {
        let e = Expr::app(
            Expr::lam("x", Ty::IntHash, Expr::Var(sym("x"))),
            Expr::Lit(3),
        );
        let (out, steps) = eval_closed(&e, 100).unwrap();
        assert_eq!(out, Outcome::Value(Expr::Lit(3)));
        assert_eq!(steps, 1);
    }

    #[test]
    fn out_of_fuel_reports_progress() {
        // A term needing a few steps with fuel 0 reports OutOfFuel.
        let e = Expr::case(Expr::con(Expr::Lit(1)), "x", Expr::Var(sym("x")));
        let (out, _) = eval_closed(&e, 0).unwrap();
        assert!(matches!(out, Outcome::OutOfFuel(_)));
    }
}
