//! Core types: the full-spectrum version of the paper's type language.
//!
//! Where the formal `L` has two base types and kinds `TYPE P`/`TYPE I`,
//! Core types range over arbitrary type constructors with arbitrary
//! kinds, the full `Rep` grammar (§4.1–4.2), unboxed tuples, and
//! class-dictionary types. The function arrow has the §4.3 kind
//!
//! ```text
//! (->) :: forall (r1 :: Rep) (r2 :: Rep). TYPE r1 -> TYPE r2 -> Type
//! ```
//!
//! so `Int# -> Int#` is well-kinded with no sub-kinding anywhere.

use std::fmt;
use std::sync::Arc;

use levity_core::kind::Kind;
use levity_core::pretty::PrintOptions;
use levity_core::rep::{Rep, RepTy};
use levity_core::symbol::Symbol;

/// A type constructor: a name with a kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TyCon {
    /// Constructor name (`Int`, `Maybe`, `Array#`, ...).
    pub name: Symbol,
    /// Its kind (`Type`, `Type -> Type`, `Type -> TYPE UnliftedRep`, ...).
    pub kind: Kind,
}

impl TyCon {
    /// A constructor of kind `Type`.
    pub fn lifted(name: impl Into<Symbol>) -> TyCon {
        TyCon {
            name: name.into(),
            kind: Kind::TYPE,
        }
    }

    /// A constructor of kind `TYPE rep`.
    pub fn of_rep(name: impl Into<Symbol>, rep: Rep) -> TyCon {
        TyCon {
            name: name.into(),
            kind: Kind::of_rep(rep),
        }
    }
}

impl fmt::Display for TyCon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A Core type.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// A (possibly partial) application of a type constructor:
    /// `Maybe Int`, `Array# Bool`, or bare `Int`.
    Con(Arc<TyCon>, Vec<Type>),
    /// A type variable.
    Var(Symbol),
    /// `τ₁ -> τ₂` with the §4.3 levity-polymorphic arrow kind.
    Fun(Box<Type>, Box<Type>),
    /// `forall (a :: κ). τ`.
    ForallTy(Symbol, Kind, Box<Type>),
    /// `forall (r :: Rep). τ`.
    ForallRep(Symbol, Box<Type>),
    /// `(# τ₁, …, τₙ #)` of kind `TYPE (TupleRep '[…])`.
    UnboxedTuple(Vec<Type>),
    /// The dictionary type for a class constraint `C τ` — an ordinary
    /// boxed, lifted record (§7.3).
    Dict(Symbol, Box<Type>),
}

impl Type {
    /// `τ₁ -> τ₂`.
    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// Curried function type over several arguments.
    pub fn funs(args: impl IntoIterator<Item = Type>, result: Type) -> Type {
        let args: Vec<_> = args.into_iter().collect();
        args.into_iter()
            .rev()
            .fold(result, |acc, a| Type::fun(a, acc))
    }

    /// `forall (a :: κ). τ`.
    pub fn forall_ty(a: impl Into<Symbol>, kind: Kind, body: Type) -> Type {
        Type::ForallTy(a.into(), kind, Box::new(body))
    }

    /// `forall (r :: Rep). τ`.
    pub fn forall_rep(r: impl Into<Symbol>, body: Type) -> Type {
        Type::ForallRep(r.into(), Box::new(body))
    }

    /// A bare type constructor.
    pub fn con0(tc: &Arc<TyCon>) -> Type {
        Type::Con(Arc::clone(tc), Vec::new())
    }

    /// Splits a curried function type into arguments and result.
    pub fn split_funs(&self) -> (Vec<&Type>, &Type) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Type::Fun(a, b) = cur {
            args.push(&**a);
            cur = b;
        }
        (args, cur)
    }

    /// Free type variables (not representation variables).
    pub fn free_ty_vars(&self) -> Vec<Symbol> {
        fn go(t: &Type, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
            match t {
                Type::Var(v) => {
                    if !bound.contains(v) && !out.contains(v) {
                        out.push(*v);
                    }
                }
                Type::Con(_, args) => args.iter().for_each(|a| go(a, bound, out)),
                Type::Fun(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Type::ForallTy(a, _, body) => {
                    bound.push(*a);
                    go(body, bound, out);
                    bound.pop();
                }
                Type::ForallRep(_, body) => go(body, bound, out),
                Type::UnboxedTuple(ts) => ts.iter().for_each(|t| go(t, bound, out)),
                Type::Dict(_, t) => go(t, bound, out),
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Free representation variables (from kinds of quantifiers and
    /// `TYPE r` kinds reached through constructors do not occur in types
    /// directly; rep vars occur in `ForallTy` kinds and are bound by
    /// `ForallRep`).
    pub fn free_rep_vars(&self) -> Vec<Symbol> {
        fn go(t: &Type, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
            match t {
                Type::Var(_) => {}
                Type::Con(_, args) => args.iter().for_each(|a| go(a, bound, out)),
                Type::Fun(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Type::ForallTy(_, kind, body) => {
                    for v in kind.free_rep_vars() {
                        if !bound.contains(&v) && !out.contains(&v) {
                            out.push(v);
                        }
                    }
                    go(body, bound, out);
                }
                Type::ForallRep(r, body) => {
                    bound.push(*r);
                    go(body, bound, out);
                    bound.pop();
                }
                Type::UnboxedTuple(ts) => ts.iter().for_each(|t| go(t, bound, out)),
                Type::Dict(_, t) => go(t, bound, out),
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Substitutes a type for a type variable (capture-avoiding via the
    /// global fresh supply).
    pub fn subst_ty(&self, var: Symbol, payload: &Type) -> Type {
        match self {
            Type::Var(v) if *v == var => payload.clone(),
            Type::Var(_) => self.clone(),
            Type::Con(tc, args) => Type::Con(
                Arc::clone(tc),
                args.iter().map(|a| a.subst_ty(var, payload)).collect(),
            ),
            Type::Fun(a, b) => Type::fun(a.subst_ty(var, payload), b.subst_ty(var, payload)),
            Type::ForallTy(a, kind, body) => {
                if *a == var {
                    self.clone()
                } else if payload.free_ty_vars().contains(a) {
                    let fresh = crate::freshen(*a);
                    let renamed = body.subst_ty(*a, &Type::Var(fresh));
                    Type::forall_ty(fresh, kind.clone(), renamed.subst_ty(var, payload))
                } else {
                    Type::forall_ty(*a, kind.clone(), body.subst_ty(var, payload))
                }
            }
            Type::ForallRep(r, body) => {
                if payload.free_rep_vars().contains(r) {
                    let fresh = crate::freshen(*r);
                    let renamed = body.subst_rep(*r, &RepTy::Var(fresh));
                    Type::forall_rep(fresh, renamed.subst_ty(var, payload))
                } else {
                    Type::forall_rep(*r, body.subst_ty(var, payload))
                }
            }
            Type::UnboxedTuple(ts) => {
                Type::UnboxedTuple(ts.iter().map(|t| t.subst_ty(var, payload)).collect())
            }
            Type::Dict(c, t) => Type::Dict(*c, Box::new(t.subst_ty(var, payload))),
        }
    }

    /// Substitutes a representation for a representation variable.
    pub fn subst_rep(&self, var: Symbol, payload: &RepTy) -> Type {
        match self {
            Type::Var(_) => self.clone(),
            Type::Con(tc, args) => Type::Con(
                Arc::clone(tc),
                args.iter().map(|a| a.subst_rep(var, payload)).collect(),
            ),
            Type::Fun(a, b) => Type::fun(a.subst_rep(var, payload), b.subst_rep(var, payload)),
            Type::ForallTy(a, kind, body) => Type::forall_ty(
                *a,
                kind.substitute_rep(var, payload),
                body.subst_rep(var, payload),
            ),
            Type::ForallRep(r, body) => {
                if *r == var {
                    self.clone()
                } else if matches!(payload, RepTy::Var(v) if v == r) {
                    let fresh = crate::freshen(*r);
                    let renamed = body.subst_rep(*r, &RepTy::Var(fresh));
                    Type::forall_rep(fresh, renamed.subst_rep(var, payload))
                } else {
                    Type::forall_rep(*r, body.subst_rep(var, payload))
                }
            }
            Type::UnboxedTuple(ts) => {
                Type::UnboxedTuple(ts.iter().map(|t| t.subst_rep(var, payload)).collect())
            }
            Type::Dict(c, t) => Type::Dict(*c, Box::new(t.subst_rep(var, payload))),
        }
    }

    /// α-equivalence of Core types.
    pub fn alpha_eq(&self, other: &Type) -> bool {
        fn go(
            t1: &Type,
            t2: &Type,
            env: &mut Vec<(Symbol, Symbol)>,
            renv: &mut Vec<(Symbol, Symbol)>,
        ) -> bool {
            match (t1, t2) {
                (Type::Var(a), Type::Var(b)) => {
                    for (l, r) in env.iter().rev() {
                        if l == a || r == b {
                            return l == a && r == b;
                        }
                    }
                    a == b
                }
                (Type::Con(c1, a1), Type::Con(c2, a2)) => {
                    c1.name == c2.name
                        && a1.len() == a2.len()
                        && a1.iter().zip(a2).all(|(x, y)| go(x, y, env, renv))
                }
                (Type::Fun(a1, b1), Type::Fun(a2, b2)) => {
                    go(a1, a2, env, renv) && go(b1, b2, env, renv)
                }
                (Type::ForallTy(a1, k1, b1), Type::ForallTy(a2, k2, b2)) => {
                    if !kind_alpha_eq(k1, k2, renv) {
                        return false;
                    }
                    env.push((*a1, *a2));
                    let ok = go(b1, b2, env, renv);
                    env.pop();
                    ok
                }
                (Type::ForallRep(r1, b1), Type::ForallRep(r2, b2)) => {
                    renv.push((*r1, *r2));
                    let ok = go(b1, b2, env, renv);
                    renv.pop();
                    ok
                }
                (Type::UnboxedTuple(x), Type::UnboxedTuple(y)) => {
                    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| go(a, b, env, renv))
                }
                (Type::Dict(c1, t1), Type::Dict(c2, t2)) => c1 == c2 && go(t1, t2, env, renv),
                _ => false,
            }
        }

        fn rep_alpha_eq(r1: &RepTy, r2: &RepTy, renv: &[(Symbol, Symbol)]) -> bool {
            match (r1, r2) {
                (RepTy::Var(a), RepTy::Var(b)) => {
                    for (l, r) in renv.iter().rev() {
                        if l == a || r == b {
                            return l == a && r == b;
                        }
                    }
                    a == b
                }
                (RepTy::Concrete(a), RepTy::Concrete(b)) => a == b,
                (RepTy::Tuple(x), RepTy::Tuple(y)) | (RepTy::Sum(x), RepTy::Sum(y)) => {
                    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| rep_alpha_eq(a, b, renv))
                }
                _ => false,
            }
        }

        fn kind_alpha_eq(k1: &Kind, k2: &Kind, renv: &[(Symbol, Symbol)]) -> bool {
            match (k1, k2) {
                (Kind::Type(r1), Kind::Type(r2)) => rep_alpha_eq(r1, r2, renv),
                (Kind::Arrow(a1, b1), Kind::Arrow(a2, b2)) => {
                    kind_alpha_eq(a1, a2, renv) && kind_alpha_eq(b1, b2, renv)
                }
                (Kind::Rep, Kind::Rep) => true,
                _ => false,
            }
        }

        go(self, other, &mut Vec::new(), &mut Vec::new())
    }

    /// Renders this type under the §8.1 printing policy: unless
    /// `opts.explicit_runtime_reps`, all `forall (r :: Rep)` quantifiers
    /// are removed and their variables defaulted to `LiftedRep`, exactly
    /// as GHC does for `($)`.
    pub fn display_with(&self, opts: &PrintOptions) -> String {
        let shown = if opts.explicit_runtime_reps {
            self.clone()
        } else {
            let mut t = self.clone();
            while let Type::ForallRep(r, body) = t {
                t = body.subst_rep(r, &RepTy::LIFTED);
            }
            t
        };
        format!("{shown}")
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self, f, 0)
    }
}

/// Precedence: 0 = top, 1 = function argument, 2 = constructor argument.
fn fmt_type(t: &Type, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match t {
        Type::Con(tc, args) => {
            if args.is_empty() {
                write!(f, "{tc}")
            } else {
                if prec >= 2 {
                    f.write_str("(")?;
                }
                write!(f, "{tc}")?;
                for a in args {
                    f.write_str(" ")?;
                    fmt_type(a, f, 2)?;
                }
                if prec >= 2 {
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
        Type::Var(v) => write!(f, "{v}"),
        Type::Fun(a, b) => {
            if prec >= 1 {
                f.write_str("(")?;
            }
            fmt_type(a, f, 1)?;
            f.write_str(" -> ")?;
            fmt_type(b, f, 0)?;
            if prec >= 1 {
                f.write_str(")")?;
            }
            Ok(())
        }
        Type::ForallTy(..) | Type::ForallRep(..) => {
            if prec >= 1 {
                f.write_str("(")?;
            }
            // Collect a run of quantifiers for compact printing.
            f.write_str("forall")?;
            let mut cur = t;
            loop {
                match cur {
                    Type::ForallTy(a, kind, body) => {
                        if *kind == Kind::TYPE {
                            write!(f, " {a}")?;
                        } else {
                            write!(f, " ({a} :: {kind})")?;
                        }
                        cur = body;
                    }
                    Type::ForallRep(r, body) => {
                        write!(f, " ({r} :: Rep)")?;
                        cur = body;
                    }
                    _ => break,
                }
            }
            f.write_str(". ")?;
            fmt_type(cur, f, 0)?;
            if prec >= 1 {
                f.write_str(")")?;
            }
            Ok(())
        }
        Type::UnboxedTuple(ts) => {
            f.write_str("(#")?;
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                f.write_str(" ")?;
                fmt_type(t, f, 0)?;
            }
            f.write_str(" #)")
        }
        Type::Dict(c, t) => {
            if prec >= 2 {
                f.write_str("(")?;
            }
            write!(f, "{c} ")?;
            fmt_type(t, f, 2)?;
            if prec >= 2 {
                f.write_str(")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn display_of_basic_types() {
        let b = builtin::builtins();
        assert_eq!(Type::con0(&b.int).to_string(), "Int");
        assert_eq!(Type::con0(&b.int_hash).to_string(), "Int#");
        assert_eq!(
            Type::fun(Type::con0(&b.int_hash), Type::con0(&b.int_hash)).to_string(),
            "Int# -> Int#"
        );
        assert_eq!(
            Type::Con(Arc::clone(&b.maybe), vec![Type::con0(&b.int)]).to_string(),
            "Maybe Int"
        );
    }

    #[test]
    fn forall_display_groups_quantifiers() {
        let t = Type::forall_rep(
            "r",
            Type::forall_ty(
                "a",
                Kind::TYPE,
                Type::forall_ty(
                    "b",
                    Kind::of_rep_var(Symbol::intern("r")),
                    Type::fun(
                        Type::fun(
                            Type::Var(Symbol::intern("a")),
                            Type::Var(Symbol::intern("b")),
                        ),
                        Type::fun(
                            Type::Var(Symbol::intern("a")),
                            Type::Var(Symbol::intern("b")),
                        ),
                    ),
                ),
            ),
        );
        assert_eq!(
            t.to_string(),
            "forall (r :: Rep) a (b :: TYPE r). (a -> b) -> a -> b"
        );
    }

    #[test]
    fn section_8_1_default_printing_of_dollar() {
        // With the default options, the levity-polymorphic ($) prints as
        // the beginner-friendly type; with -fprint-explicit-runtime-reps
        // the full type appears.
        let r = Symbol::intern("r");
        let dollar = Type::forall_rep(
            "r",
            Type::forall_ty(
                "a",
                Kind::TYPE,
                Type::forall_ty(
                    "b",
                    Kind::of_rep_var(r),
                    Type::fun(
                        Type::fun(
                            Type::Var(Symbol::intern("a")),
                            Type::Var(Symbol::intern("b")),
                        ),
                        Type::fun(
                            Type::Var(Symbol::intern("a")),
                            Type::Var(Symbol::intern("b")),
                        ),
                    ),
                ),
            ),
        );
        assert_eq!(
            dollar.display_with(&PrintOptions::default()),
            "forall a b. (a -> b) -> a -> b"
        );
        assert_eq!(
            dollar.display_with(&PrintOptions::explicit()),
            "forall (r :: Rep) a (b :: TYPE r). (a -> b) -> a -> b"
        );
    }

    #[test]
    fn unboxed_tuple_display() {
        let b = builtin::builtins();
        let t = Type::UnboxedTuple(vec![Type::con0(&b.int_hash), Type::con0(&b.bool)]);
        assert_eq!(t.to_string(), "(# Int#, Bool #)");
    }

    #[test]
    fn alpha_equivalence() {
        let t1 = Type::forall_ty(
            "a",
            Kind::TYPE,
            Type::fun(Type::Var("a".into()), Type::Var("a".into())),
        );
        let t2 = Type::forall_ty(
            "z",
            Kind::TYPE,
            Type::fun(Type::Var("z".into()), Type::Var("z".into())),
        );
        assert!(t1.alpha_eq(&t2));
        let t3 = Type::forall_ty(
            "a",
            Kind::of_rep(Rep::Int),
            Type::fun(Type::Var("a".into()), Type::Var("a".into())),
        );
        assert!(!t1.alpha_eq(&t3));
    }

    #[test]
    fn substitution_in_types() {
        let b = builtin::builtins();
        let t = Type::fun(Type::Var("a".into()), Type::Var("a".into()));
        let out = t.subst_ty("a".into(), &Type::con0(&b.int_hash));
        assert_eq!(out.to_string(), "Int# -> Int#");
    }

    #[test]
    fn rep_substitution_updates_kind_annotations() {
        let r: Symbol = "r".into();
        let t = Type::forall_ty("b", Kind::of_rep_var(r), Type::Var("b".into()));
        let out = t.subst_rep(r, &RepTy::Concrete(Rep::Double));
        assert_eq!(out.to_string(), "forall (b :: TYPE DoubleRep). b");
    }

    #[test]
    fn split_funs() {
        let b = builtin::builtins();
        let t = Type::funs(
            [Type::con0(&b.int), Type::con0(&b.bool)],
            Type::con0(&b.int),
        );
        let (args, result) = t.split_funs();
        assert_eq!(args.len(), 2);
        assert_eq!(result.to_string(), "Int");
    }

    #[test]
    fn free_vars() {
        let t = Type::forall_ty(
            "a",
            Kind::TYPE,
            Type::fun(Type::Var("a".into()), Type::Var("b".into())),
        );
        assert_eq!(t.free_ty_vars(), vec![Symbol::intern("b")]);
        let t2 = Type::forall_ty("x", Kind::of_rep_var("r".into()), Type::Var("x".into()));
        assert_eq!(t2.free_rep_vars(), vec![Symbol::intern("r")]);
        let closed = Type::forall_rep("r", t2);
        assert!(closed.free_rep_vars().is_empty());
    }
}
