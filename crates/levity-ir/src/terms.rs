//! Core terms: an explicitly-typed intermediate representation in the
//! style of GHC's Core (§8.2 mentions Core as the language where the
//! levity checks run).
//!
//! Everything is type-annotated, so computing the type of a term is
//! syntax-directed and total ([`crate::typecheck::type_of`]); inference
//! happens upstream (the `levity-infer` crate) and produces these terms.

use std::fmt;
use std::sync::Arc;

use levity_core::kind::Kind;
use levity_core::rep::RepTy;
use levity_core::symbol::Symbol;
use levity_m::syntax::{Literal, PrimOp};

use crate::types::{TyCon, Type};

/// A type-level parameter of a data constructor: a representation
/// variable or a type variable. Unboxed-tuple-style constructors take
/// rep params first (§8.2: "it takes three times as many arguments as its
/// arity").
#[derive(Clone, Debug, PartialEq)]
pub enum TyParam {
    /// `r :: Rep`.
    Rep(Symbol),
    /// `a :: κ`.
    Ty(Symbol, Kind),
}

/// A type-level argument supplied to a data constructor.
#[derive(Clone, Debug, PartialEq)]
pub enum TyArg {
    /// A representation argument.
    Rep(RepTy),
    /// A type argument.
    Ty(Type),
}

/// A data constructor's full description.
#[derive(Clone, Debug, PartialEq)]
pub struct DataConInfo {
    /// Constructor name.
    pub name: Symbol,
    /// Tag within the datatype (0-based, used for case selection).
    pub tag: u32,
    /// Universally quantified parameters, outermost first.
    pub params: Vec<TyParam>,
    /// Field types, mentioning `params`.
    pub field_types: Vec<Type>,
    /// Result type, mentioning `params`.
    pub result: Type,
}

impl DataConInfo {
    /// Number of term-level fields.
    pub fn arity(&self) -> usize {
        self.field_types.len()
    }

    /// Instantiates field and result types at the given type arguments.
    ///
    /// # Errors
    ///
    /// Returns `None` on arity or sort mismatch between `params` and
    /// `args`.
    pub fn instantiate(&self, args: &[TyArg]) -> Option<(Vec<Type>, Type)> {
        if args.len() != self.params.len() {
            return None;
        }
        let mut fields = self.field_types.clone();
        let mut result = self.result.clone();
        for (param, arg) in self.params.iter().zip(args) {
            match (param, arg) {
                (TyParam::Ty(v, _), TyArg::Ty(t)) => {
                    fields = fields.into_iter().map(|f| f.subst_ty(*v, t)).collect();
                    result = result.subst_ty(*v, t);
                }
                (TyParam::Rep(v), TyArg::Rep(r)) => {
                    fields = fields.into_iter().map(|f| f.subst_rep(*v, r)).collect();
                    result = result.subst_rep(*v, r);
                }
                _ => return None,
            }
        }
        Some((fields, result))
    }
}

impl fmt::Display for DataConInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A datatype declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct DataDecl {
    /// The type constructor being declared.
    pub tycon: Arc<TyCon>,
    /// Its parameters.
    pub params: Vec<TyParam>,
    /// Its constructors, in tag order.
    pub cons: Vec<Arc<DataConInfo>>,
}

/// Is a `let` recursive?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LetKind {
    /// Non-recursive: the binder scopes only over the body.
    NonRec,
    /// Recursive: the binder also scopes over its own right-hand side
    /// (must be lifted; becomes a cyclic thunk in `M`).
    Rec,
}

/// A case alternative.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreAlt {
    /// `C x₁ … xₙ -> e`, with binder types already instantiated at the
    /// scrutinee's type.
    Con {
        /// The matched constructor.
        con: Arc<DataConInfo>,
        /// Field binders with instantiated types.
        binders: Vec<(Symbol, Type)>,
        /// Right-hand side.
        rhs: CoreExpr,
    },
    /// `lit -> e`.
    Lit {
        /// The matched literal.
        lit: Literal,
        /// Right-hand side.
        rhs: CoreExpr,
    },
    /// `(# x₁, …, xₙ #) -> e` for unboxed-tuple scrutinees.
    Tuple {
        /// Component binders with their types.
        binders: Vec<(Symbol, Type)>,
        /// Right-hand side.
        rhs: CoreExpr,
    },
    /// `_ -> e` or `x -> e` (the binder, if present, names the evaluated
    /// scrutinee).
    Default {
        /// Optional binder for the scrutinee value.
        binder: Option<(Symbol, Type)>,
        /// Right-hand side.
        rhs: CoreExpr,
    },
}

impl CoreAlt {
    /// The alternative's right-hand side.
    pub fn rhs(&self) -> &CoreExpr {
        match self {
            CoreAlt::Con { rhs, .. }
            | CoreAlt::Lit { rhs, .. }
            | CoreAlt::Tuple { rhs, .. }
            | CoreAlt::Default { rhs, .. } => rhs,
        }
    }
}

/// A Core expression.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreExpr {
    /// A local variable.
    Var(Symbol),
    /// A reference to a top-level binding.
    Global(Symbol),
    /// An unboxed literal (`3#`, `2.5##`, `'c'#`).
    Lit(Literal),
    /// `e₁ e₂`.
    App(Box<CoreExpr>, Box<CoreExpr>),
    /// `e @τ`.
    TyApp(Box<CoreExpr>, Type),
    /// `e @ρ` — representation application.
    RepApp(Box<CoreExpr>, RepTy),
    /// `λ(x :: τ). e`.
    Lam(Symbol, Type, Box<CoreExpr>),
    /// `Λ(a :: κ). e`.
    TyLam(Symbol, Kind, Box<CoreExpr>),
    /// `Λ(r :: Rep). e`.
    RepLam(Symbol, Box<CoreExpr>),
    /// `let[rec] x :: τ = e₁ in e₂`.
    Let(LetKind, Symbol, Type, Box<CoreExpr>, Box<CoreExpr>),
    /// `case e of alts` (no scrutinee binder; use a `let!` upstream).
    Case(Box<CoreExpr>, Vec<CoreAlt>),
    /// Saturated constructor application `C @σ… e…`.
    Con(Arc<DataConInfo>, Vec<TyArg>, Vec<CoreExpr>),
    /// Saturated primop application.
    Prim(PrimOp, Vec<CoreExpr>),
    /// `(# e₁, …, eₙ #)` — unboxed tuple construction.
    Tuple(Vec<CoreExpr>),
    /// `error @ρ @τ "msg"` fully applied: the result type is recorded
    /// directly. Its kind may be levity-polymorphic — `error` never binds
    /// its result (§3.3).
    Error(Type, String),
}

impl CoreExpr {
    /// `e₁ e₂`.
    pub fn app(f: CoreExpr, a: CoreExpr) -> CoreExpr {
        CoreExpr::App(Box::new(f), Box::new(a))
    }

    /// n-ary application.
    pub fn apps(f: CoreExpr, args: impl IntoIterator<Item = CoreExpr>) -> CoreExpr {
        args.into_iter().fold(f, CoreExpr::app)
    }

    /// `λ(x :: τ). e`.
    pub fn lam(x: impl Into<Symbol>, ty: Type, body: CoreExpr) -> CoreExpr {
        CoreExpr::Lam(x.into(), ty, Box::new(body))
    }

    /// n-ary lambda.
    pub fn lams(binders: impl IntoIterator<Item = (Symbol, Type)>, body: CoreExpr) -> CoreExpr {
        let binders: Vec<_> = binders.into_iter().collect();
        binders
            .into_iter()
            .rev()
            .fold(body, |acc, (x, t)| CoreExpr::lam(x, t, acc))
    }

    /// `e @τ`.
    pub fn ty_app(f: CoreExpr, t: Type) -> CoreExpr {
        CoreExpr::TyApp(Box::new(f), t)
    }

    /// `e @ρ`.
    pub fn rep_app(f: CoreExpr, r: RepTy) -> CoreExpr {
        CoreExpr::RepApp(Box::new(f), r)
    }

    /// `Λ(a :: κ). e`.
    pub fn ty_lam(a: impl Into<Symbol>, k: Kind, body: CoreExpr) -> CoreExpr {
        CoreExpr::TyLam(a.into(), k, Box::new(body))
    }

    /// `Λ(r :: Rep). e`.
    pub fn rep_lam(r: impl Into<Symbol>, body: CoreExpr) -> CoreExpr {
        CoreExpr::RepLam(r.into(), Box::new(body))
    }

    /// `let x :: τ = rhs in body`.
    pub fn let_(x: impl Into<Symbol>, ty: Type, rhs: CoreExpr, body: CoreExpr) -> CoreExpr {
        CoreExpr::Let(LetKind::NonRec, x.into(), ty, Box::new(rhs), Box::new(body))
    }

    /// `case scrut of alts`.
    pub fn case(scrut: CoreExpr, alts: Vec<CoreAlt>) -> CoreExpr {
        CoreExpr::Case(Box::new(scrut), alts)
    }

    /// An integer literal.
    pub fn int(n: i64) -> CoreExpr {
        CoreExpr::Lit(Literal::Int(n))
    }

    /// Number of AST nodes (diagnostics/tests).
    pub fn size(&self) -> usize {
        match self {
            CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => 1,
            CoreExpr::App(a, b) => 1 + a.size() + b.size(),
            CoreExpr::TyApp(a, _) | CoreExpr::RepApp(a, _) => 1 + a.size(),
            CoreExpr::Lam(_, _, b) | CoreExpr::TyLam(_, _, b) | CoreExpr::RepLam(_, b) => {
                1 + b.size()
            }
            CoreExpr::Let(_, _, _, a, b) => 1 + a.size() + b.size(),
            CoreExpr::Case(s, alts) => {
                1 + s.size() + alts.iter().map(|a| a.rhs().size()).sum::<usize>()
            }
            CoreExpr::Con(_, _, fields) => 1 + fields.iter().map(CoreExpr::size).sum::<usize>(),
            CoreExpr::Prim(_, args) | CoreExpr::Tuple(args) => {
                1 + args.iter().map(CoreExpr::size).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for CoreExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreExpr::Var(x) => write!(f, "{x}"),
            CoreExpr::Global(g) => write!(f, "{g}"),
            CoreExpr::Lit(l) => write!(f, "{l}"),
            CoreExpr::App(a, b) => write!(f, "({a} {b})"),
            CoreExpr::TyApp(a, t) => write!(f, "({a} @{t})"),
            CoreExpr::RepApp(a, r) => write!(f, "({a} @{r})"),
            CoreExpr::Lam(x, t, b) => write!(f, "\\({x} :: {t}) -> {b}"),
            CoreExpr::TyLam(a, k, b) => write!(f, "/\\({a} :: {k}) -> {b}"),
            CoreExpr::RepLam(r, b) => write!(f, "/\\({r} :: Rep) -> {b}"),
            CoreExpr::Let(LetKind::NonRec, x, t, rhs, body) => {
                write!(f, "let {x} :: {t} = {rhs} in {body}")
            }
            CoreExpr::Let(LetKind::Rec, x, t, rhs, body) => {
                write!(f, "letrec {x} :: {t} = {rhs} in {body}")
            }
            CoreExpr::Case(s, alts) => {
                write!(f, "case {s} of {{")?;
                for (i, alt) in alts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    match alt {
                        CoreAlt::Con { con, binders, rhs } => {
                            write!(f, "{con}")?;
                            for (x, _) in binders {
                                write!(f, " {x}")?;
                            }
                            write!(f, " -> {rhs}")?;
                        }
                        CoreAlt::Lit { lit, rhs } => write!(f, "{lit} -> {rhs}")?,
                        CoreAlt::Tuple { binders, rhs } => {
                            write!(f, "(#")?;
                            for (i, (x, _)) in binders.iter().enumerate() {
                                if i > 0 {
                                    write!(f, ",")?;
                                }
                                write!(f, " {x}")?;
                            }
                            write!(f, " #) -> {rhs}")?;
                        }
                        CoreAlt::Default { binder, rhs } => match binder {
                            Some((x, _)) => write!(f, "{x} -> {rhs}")?,
                            None => write!(f, "_ -> {rhs}")?,
                        },
                    }
                }
                write!(f, "}}")
            }
            CoreExpr::Con(con, _, fields) => {
                write!(f, "{con}")?;
                for field in fields {
                    write!(f, " ({field})")?;
                }
                Ok(())
            }
            CoreExpr::Prim(op, args) => {
                write!(f, "({op}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            CoreExpr::Tuple(es) => {
                write!(f, "(#")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {e}")?;
                }
                write!(f, " #)")
            }
            CoreExpr::Error(t, msg) => write!(f, "error @({t}) \"{msg}\""),
        }
    }
}

/// A top-level binding.
#[derive(Clone, Debug, PartialEq)]
pub struct TopBind {
    /// The binding's name.
    pub name: Symbol,
    /// Its (checked) type; may be levity-polymorphic.
    pub ty: Type,
    /// The right-hand side.
    pub expr: CoreExpr,
}

/// A complete Core program: datatypes plus top-level bindings. All
/// top-level bindings are mutually recursive (they compile to `M`
/// globals).
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Datatype declarations (prelude + user).
    pub data_decls: Vec<Arc<DataDecl>>,
    /// Top-level value bindings.
    pub bindings: Vec<TopBind>,
}

impl Program {
    /// Finds a binding by name.
    pub fn binding(&self, name: Symbol) -> Option<&TopBind> {
        self.bindings.iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::builtins;

    #[test]
    fn instantiation_of_just() {
        let b = builtins();
        let (fields, result) = b
            .just
            .instantiate(&[TyArg::Ty(Type::con0(&b.int))])
            .unwrap();
        assert_eq!(fields[0].to_string(), "Int");
        assert_eq!(result.to_string(), "Maybe Int");
    }

    #[test]
    fn instantiation_arity_mismatch_is_detected() {
        let b = builtins();
        assert!(b.just.instantiate(&[]).is_none());
        assert!(b
            .just
            .instantiate(&[TyArg::Rep(levity_core::rep::RepTy::LIFTED)])
            .is_none());
    }

    #[test]
    fn display_of_core_terms() {
        let b = builtins();
        let e = CoreExpr::lam(
            "x",
            Type::con0(&b.int_hash),
            CoreExpr::Prim(
                PrimOp::AddI,
                vec![CoreExpr::Var("x".into()), CoreExpr::int(1)],
            ),
        );
        assert_eq!(e.to_string(), "\\(x :: Int#) -> (+# x 1#)");
    }

    #[test]
    fn size_counts_nodes() {
        let e = CoreExpr::app(CoreExpr::Var("f".into()), CoreExpr::int(1));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn program_lookup() {
        let b = builtins();
        let prog = Program {
            data_decls: b.data_decls.clone(),
            bindings: vec![TopBind {
                name: "main".into(),
                ty: Type::con0(&b.int),
                expr: CoreExpr::int(0),
            }],
        };
        assert!(prog.binding("main".into()).is_some());
        assert!(prog.binding("nope".into()).is_none());
    }
}
