//! Kinding and type checking for Core ("lint", in GHC terms).
//!
//! Core is explicitly typed, so checking is syntax-directed. Notably —
//! and unlike the formal `L` — the checker here does *not* enforce the
//! §5.1 levity restrictions: GHC performs those after type checking, in
//! the desugarer (§8.2), and so do we (see [`crate::levity`]). This split
//! lets the pipeline demonstrate the paper's point that the checks are
//! separable.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use levity_core::kind::Kind;
use levity_core::rep::{normalize_tuple, RepTy};
use levity_core::symbol::Symbol;
use levity_m::syntax::{Literal, PrimOp};

use crate::builtin::{builtins, prim_signature, Builtins};
use crate::terms::{CoreAlt, CoreExpr, DataConInfo, DataDecl, LetKind, Program, TyArg, TyParam};
use crate::types::{TyCon, Type};

/// A Core checking error.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// Unbound term variable.
    UnboundVar(Symbol),
    /// Unbound global.
    UnboundGlobal(Symbol),
    /// Unbound type variable.
    UnboundTyVar(Symbol),
    /// Unbound representation variable.
    UnboundRepVar(Symbol),
    /// Unknown type constructor.
    UnknownTyCon(Symbol),
    /// Expected a function type.
    NotAFunction(Type),
    /// Expected a forall type.
    NotAForall(Type),
    /// Type mismatch.
    Mismatch {
        /// Expected type.
        expected: Type,
        /// Actual type.
        actual: Type,
    },
    /// Kind mismatch.
    KindMismatch {
        /// Expected kind.
        expected: Kind,
        /// Actual kind.
        actual: Kind,
    },
    /// A type that should classify values (kind `TYPE ρ`) does not.
    NotAValueKind(Type, Kind),
    /// A representation variable escapes its `forall`'s scope through the
    /// kind (T_ALLREP's side condition, generalized).
    RepEscapes(Symbol, Type),
    /// Constructor applied at wrong arity (types or fields).
    ConArity(Symbol),
    /// Primop applied at wrong arity.
    PrimArity(PrimOp),
    /// A case alternative doesn't match the scrutinee's type.
    AltMismatch(String),
    /// Case with no alternatives.
    EmptyCase,
    /// A recursive let binder must be lifted (it becomes a heap thunk).
    RecBinderNotLifted(Symbol, Type),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            CoreError::UnboundGlobal(x) => write!(f, "unbound global `{x}`"),
            CoreError::UnboundTyVar(a) => write!(f, "unbound type variable `{a}`"),
            CoreError::UnboundRepVar(r) => write!(f, "unbound representation variable `{r}`"),
            CoreError::UnknownTyCon(t) => write!(f, "unknown type constructor `{t}`"),
            CoreError::NotAFunction(t) => write!(f, "expected a function type, got `{t}`"),
            CoreError::NotAForall(t) => write!(f, "expected a forall type, got `{t}`"),
            CoreError::Mismatch { expected, actual } => {
                write!(f, "type mismatch: expected `{expected}`, got `{actual}`")
            }
            CoreError::KindMismatch { expected, actual } => {
                write!(f, "kind mismatch: expected `{expected}`, got `{actual}`")
            }
            CoreError::NotAValueKind(t, k) => {
                write!(
                    f,
                    "type `{t}` has kind `{k}`, which does not classify values"
                )
            }
            CoreError::RepEscapes(r, t) => {
                write!(
                    f,
                    "representation variable `{r}` escapes in the kind of `{t}`"
                )
            }
            CoreError::ConArity(c) => write!(f, "constructor `{c}` applied at wrong arity"),
            CoreError::PrimArity(op) => write!(f, "primop `{op}` applied at wrong arity"),
            CoreError::AltMismatch(msg) => write!(f, "case alternative mismatch: {msg}"),
            CoreError::EmptyCase => write!(f, "case expression with no alternatives"),
            CoreError::RecBinderNotLifted(x, t) => write!(
                f,
                "recursive binder `{x}` has unlifted type `{t}`; recursion requires a thunk"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// The global environment: type constructors, data constructors and
/// top-level value types.
#[derive(Clone, Debug)]
pub struct TypeEnv {
    /// The built-in types and constructors.
    pub builtins: Builtins,
    tycons: HashMap<Symbol, Arc<TyCon>>,
    datacons: HashMap<Symbol, Arc<DataConInfo>>,
    datatypes: HashMap<Symbol, Arc<DataDecl>>,
    globals: HashMap<Symbol, Type>,
}

impl Default for TypeEnv {
    fn default() -> Self {
        TypeEnv::new()
    }
}

impl TypeEnv {
    /// An environment preloaded with the built-ins.
    pub fn new() -> TypeEnv {
        let b = builtins();
        let mut env = TypeEnv {
            builtins: b.clone(),
            tycons: HashMap::new(),
            datacons: HashMap::new(),
            datatypes: HashMap::new(),
            globals: HashMap::new(),
        };
        for tc in [
            &b.int_hash,
            &b.char_hash,
            &b.float_hash,
            &b.double_hash,
            &b.byte_array_hash,
            &b.array_hash,
        ] {
            env.tycons.insert(tc.name, Arc::clone(tc));
        }
        for decl in &b.data_decls {
            env.add_data_decl(Arc::clone(decl));
        }
        env
    }

    /// Registers a datatype declaration (type constructor and all of its
    /// data constructors).
    pub fn add_data_decl(&mut self, decl: Arc<DataDecl>) {
        self.tycons.insert(decl.tycon.name, Arc::clone(&decl.tycon));
        for con in &decl.cons {
            self.datacons.insert(con.name, Arc::clone(con));
        }
        self.datatypes.insert(decl.tycon.name, decl);
    }

    /// Declares a top-level value's type.
    pub fn define_global(&mut self, name: impl Into<Symbol>, ty: Type) {
        self.globals.insert(name.into(), ty);
    }

    /// Registers a standalone data constructor (used for generated
    /// class-dictionary constructors, which have no ordinary tycon).
    pub fn add_datacon(&mut self, con: Arc<DataConInfo>) {
        self.datacons.insert(con.name, con);
    }

    /// Looks up a type constructor.
    pub fn tycon(&self, name: Symbol) -> Option<&Arc<TyCon>> {
        self.tycons.get(&name)
    }

    /// Looks up a data constructor.
    pub fn datacon(&self, name: Symbol) -> Option<&Arc<DataConInfo>> {
        self.datacons.get(&name)
    }

    /// Looks up a datatype declaration by its type constructor name.
    pub fn datatype(&self, name: Symbol) -> Option<&Arc<DataDecl>> {
        self.datatypes.get(&name)
    }

    /// Looks up a global's type.
    pub fn global(&self, name: Symbol) -> Option<&Type> {
        self.globals.get(&name)
    }

    /// Iterates over all globals.
    pub fn globals(&self) -> impl Iterator<Item = (&Symbol, &Type)> {
        self.globals.iter()
    }
}

/// A lexical scope entry.
#[derive(Clone, Debug)]
pub enum ScopeEntry {
    /// A term variable with its type.
    Term(Type),
    /// A type variable with its kind.
    TyVar(Kind),
    /// A representation variable.
    RepVar,
}

/// The lexical scope used during checking.
#[derive(Clone, Debug, Default)]
pub struct Scope {
    entries: Vec<(Symbol, ScopeEntry)>,
}

impl Scope {
    /// An empty scope.
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Pushes an entry; pair with [`Scope::pop`].
    pub fn push(&mut self, name: Symbol, entry: ScopeEntry) {
        self.entries.push((name, entry));
    }

    /// Pops the most recent entry.
    pub fn pop(&mut self) {
        self.entries.pop().expect("popped empty scope");
    }

    /// The type of a term variable.
    pub fn term(&self, name: Symbol) -> Option<&Type> {
        self.entries.iter().rev().find_map(|(n, e)| match e {
            ScopeEntry::Term(t) if *n == name => Some(t),
            _ => None,
        })
    }

    /// The kind of a type variable.
    pub fn ty_var(&self, name: Symbol) -> Option<&Kind> {
        self.entries.iter().rev().find_map(|(n, e)| match e {
            ScopeEntry::TyVar(k) if *n == name => Some(k),
            _ => None,
        })
    }

    /// Is a representation variable in scope?
    pub fn has_rep_var(&self, name: Symbol) -> bool {
        self.entries
            .iter()
            .rev()
            .any(|(n, e)| *n == name && matches!(e, ScopeEntry::RepVar))
    }
}

/// Checks that every rep variable in `rep` is in scope.
fn check_rep_scoped(scope: &Scope, rep: &RepTy) -> Result<(), CoreError> {
    for v in rep.free_vars() {
        if !scope.has_rep_var(v) {
            return Err(CoreError::UnboundRepVar(v));
        }
    }
    Ok(())
}

/// Checks that every rep variable in `kind` is in scope.
fn check_kind_scoped(scope: &Scope, kind: &Kind) -> Result<(), CoreError> {
    for v in kind.free_rep_vars() {
        if !scope.has_rep_var(v) {
            return Err(CoreError::UnboundRepVar(v));
        }
    }
    Ok(())
}

/// Computes the kind of a type (`Γ ⊢ τ : κ`, generalized from Figure 3).
// `env` is part of the judgment's signature even though the current rule
// set only consults it through recursive calls.
#[allow(clippy::only_used_in_recursion)]
pub fn kind_of(env: &TypeEnv, scope: &mut Scope, ty: &Type) -> Result<Kind, CoreError> {
    match ty {
        Type::Con(tc, args) => {
            let mut kind = tc.kind.clone();
            for arg in args {
                match kind {
                    Kind::Arrow(expected, rest) => {
                        let actual = kind_of(env, scope, arg)?;
                        if actual != *expected {
                            return Err(CoreError::KindMismatch {
                                expected: *expected,
                                actual,
                            });
                        }
                        kind = *rest;
                    }
                    other => {
                        return Err(CoreError::KindMismatch {
                            expected: Kind::arrow(Kind::TYPE, Kind::TYPE),
                            actual: other,
                        })
                    }
                }
            }
            Ok(kind)
        }
        Type::Var(v) => scope.ty_var(*v).cloned().ok_or(CoreError::UnboundTyVar(*v)),
        // The §4.3 arrow: (->) :: forall r1 r2. TYPE r1 -> TYPE r2 -> Type.
        // Both sides may have *any* representation; the arrow itself is
        // boxed and lifted.
        Type::Fun(a, b) => {
            let ka = kind_of(env, scope, a)?;
            if !ka.classifies_values() {
                return Err(CoreError::NotAValueKind((**a).clone(), ka));
            }
            let kb = kind_of(env, scope, b)?;
            if !kb.classifies_values() {
                return Err(CoreError::NotAValueKind((**b).clone(), kb));
            }
            Ok(Kind::TYPE)
        }
        // Quantifiers are erased, so the forall's kind is its body's
        // (T_ALLTY / T_ALLREP).
        Type::ForallTy(a, k, body) => {
            check_kind_scoped(scope, k)?;
            scope.push(*a, ScopeEntry::TyVar(k.clone()));
            let out = kind_of(env, scope, body);
            scope.pop();
            out
        }
        Type::ForallRep(r, body) => {
            scope.push(*r, ScopeEntry::RepVar);
            let out = kind_of(env, scope, body);
            scope.pop();
            let out = out?;
            if out.free_rep_vars().contains(r) {
                return Err(CoreError::RepEscapes(*r, (**body).clone()));
            }
            Ok(out)
        }
        // (# τ₁, …, τₙ #) :: TYPE (TupleRep '[ρ₁, …, ρₙ]) (§4.2).
        Type::UnboxedTuple(ts) => {
            let mut reps = Vec::with_capacity(ts.len());
            for t in ts {
                match kind_of(env, scope, t)? {
                    Kind::Type(rep) => reps.push(rep),
                    other => return Err(CoreError::NotAValueKind(t.clone(), other)),
                }
            }
            Ok(Kind::Type(normalize_tuple(reps)))
        }
        // Dictionaries are boxed, lifted records (§7.3) whose argument
        // may live at any representation: Num :: TYPE r -> Type.
        Type::Dict(_, t) => {
            let k = kind_of(env, scope, t)?;
            if !k.classifies_values() {
                return Err(CoreError::NotAValueKind((**t).clone(), k));
            }
            Ok(Kind::TYPE)
        }
    }
}

/// The type of a literal.
pub fn literal_type(env: &TypeEnv, lit: Literal) -> Type {
    let b = &env.builtins;
    match lit {
        Literal::Int(_) => Type::con0(&b.int_hash),
        Literal::Char(_) => Type::con0(&b.char_hash),
        Literal::FloatBits(_) => Type::con0(&b.float_hash),
        Literal::DoubleBits(_) => Type::con0(&b.double_hash),
    }
}

/// Matches a constructor's declared result type against a concrete
/// scrutinee type, recovering the type arguments.
pub fn match_con_result(con: &DataConInfo, scrut_ty: &Type) -> Option<Vec<TyArg>> {
    // The declared result is T p₁ … pₙ (or a dictionary type) with the
    // params appearing as distinct variables; walk both in lockstep.
    let mut subst: HashMap<Symbol, TyArg> = HashMap::new();
    fn walk(pattern: &Type, actual: &Type, subst: &mut HashMap<Symbol, TyArg>) -> bool {
        match (pattern, actual) {
            (Type::Var(v), t) => {
                subst.insert(*v, TyArg::Ty(t.clone()));
                true
            }
            (Type::Con(c1, a1), Type::Con(c2, a2)) => {
                c1.name == c2.name
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(p, a)| walk(p, a, subst))
            }
            (Type::Dict(c1, t1), Type::Dict(c2, t2)) => c1 == c2 && walk(t1, t2, subst),
            _ => pattern.alpha_eq(actual),
        }
    }
    if !walk(&con.result, scrut_ty, &mut subst) {
        return None;
    }
    // Rep params are recovered from the kind positions via the matched
    // type args; for the datatypes in this reproduction, rep params only
    // occur in class dictionaries where the rep is determined by the type
    // argument's kind, so we fill them opportunistically.
    let mut out = Vec::with_capacity(con.params.len());
    for p in &con.params {
        match p {
            TyParam::Ty(v, _) => match subst.get(v) {
                Some(arg) => out.push(arg.clone()),
                None => return None,
            },
            TyParam::Rep(v) => {
                // Find a matched type whose declared kind mentions `v`;
                // the instance rep is that type's actual kind rep. This
                // is only exercised by dictionary datatypes.
                let mut found = None;
                for q in &con.params {
                    if let TyParam::Ty(tv, k) = q {
                        if k.free_rep_vars().contains(v) {
                            if let Some(TyArg::Ty(_t)) = subst.get(tv) {
                                found = Some(TyArg::Rep(RepTy::Var(*v)));
                            }
                        }
                    }
                }
                match found {
                    Some(arg) => out.push(arg),
                    None => return None,
                }
            }
        }
    }
    Some(out)
}

/// Resolves a constructor's type arguments against a scrutinee type,
/// filling representation parameters from the *kinds* of the matched
/// type arguments (needed for levity-polymorphic dictionary
/// constructors, §7.3, whose first parameters are `Rep`s).
pub fn resolve_con_tyargs(
    env: &TypeEnv,
    scope: &mut Scope,
    con: &DataConInfo,
    scrut_ty: &Type,
) -> Option<Vec<TyArg>> {
    let mut args = match_con_result(con, scrut_ty)?;
    for (i, p) in con.params.iter().enumerate() {
        if let TyParam::Rep(v) = p {
            let mut found = None;
            for (j, q) in con.params.iter().enumerate() {
                if let TyParam::Ty(_, Kind::Type(RepTy::Var(w))) = q {
                    if w == v {
                        if let TyArg::Ty(t) = &args[j] {
                            if let Ok(Kind::Type(rep)) = kind_of(env, scope, &t.clone()) {
                                found = Some(rep);
                            }
                        }
                    }
                }
            }
            args[i] = TyArg::Rep(found?);
        }
    }
    Some(args)
}

/// Computes the type of a Core expression (`Γ ⊢ e : τ`).
///
/// # Errors
///
/// Returns the first [`CoreError`] found; spans are not tracked at the
/// Core level (the surface pipeline reports errors before Core).
pub fn type_of(env: &TypeEnv, scope: &mut Scope, e: &CoreExpr) -> Result<Type, CoreError> {
    match e {
        CoreExpr::Var(x) => scope.term(*x).cloned().ok_or(CoreError::UnboundVar(*x)),
        CoreExpr::Global(g) => env.global(*g).cloned().ok_or(CoreError::UnboundGlobal(*g)),
        CoreExpr::Lit(l) => Ok(literal_type(env, *l)),
        CoreExpr::App(f, a) => {
            let fun_ty = type_of(env, scope, f)?;
            let arg_ty = type_of(env, scope, a)?;
            match fun_ty {
                Type::Fun(dom, cod) => {
                    if !dom.alpha_eq(&arg_ty) {
                        return Err(CoreError::Mismatch {
                            expected: *dom,
                            actual: arg_ty,
                        });
                    }
                    Ok(*cod)
                }
                other => Err(CoreError::NotAFunction(other)),
            }
        }
        CoreExpr::TyApp(f, arg) => {
            let fun_ty = type_of(env, scope, f)?;
            match fun_ty {
                Type::ForallTy(v, k, body) => {
                    let arg_kind = kind_of(env, scope, arg)?;
                    if arg_kind != k {
                        return Err(CoreError::KindMismatch {
                            expected: k,
                            actual: arg_kind,
                        });
                    }
                    Ok(body.subst_ty(v, arg))
                }
                other => Err(CoreError::NotAForall(other)),
            }
        }
        CoreExpr::RepApp(f, rep) => {
            let fun_ty = type_of(env, scope, f)?;
            check_rep_scoped(scope, rep)?;
            match fun_ty {
                Type::ForallRep(r, body) => Ok(body.subst_rep(r, rep)),
                other => Err(CoreError::NotAForall(other)),
            }
        }
        CoreExpr::Lam(x, ty, body) => {
            let k = kind_of(env, scope, ty)?;
            if !k.classifies_values() {
                return Err(CoreError::NotAValueKind(ty.clone(), k));
            }
            scope.push(*x, ScopeEntry::Term(ty.clone()));
            let body_ty = type_of(env, scope, body);
            scope.pop();
            Ok(Type::fun(ty.clone(), body_ty?))
        }
        CoreExpr::TyLam(a, k, body) => {
            check_kind_scoped(scope, k)?;
            scope.push(*a, ScopeEntry::TyVar(k.clone()));
            let body_ty = type_of(env, scope, body);
            scope.pop();
            Ok(Type::forall_ty(*a, k.clone(), body_ty?))
        }
        CoreExpr::RepLam(r, body) => {
            scope.push(*r, ScopeEntry::RepVar);
            let body_ty = type_of(env, scope, body);
            scope.pop();
            let result = Type::forall_rep(*r, body_ty?);
            // Validate the result kind (rep-escape check).
            kind_of(env, scope, &result)?;
            Ok(result)
        }
        CoreExpr::Let(kind, x, ty, rhs, body) => {
            let declared_kind = kind_of(env, scope, ty)?;
            if !declared_kind.classifies_values() {
                return Err(CoreError::NotAValueKind(ty.clone(), declared_kind.clone()));
            }
            if *kind == LetKind::Rec {
                // A recursive binding becomes a cyclic heap thunk; it must
                // be boxed and lifted.
                if declared_kind != Kind::TYPE {
                    return Err(CoreError::RecBinderNotLifted(*x, ty.clone()));
                }
                scope.push(*x, ScopeEntry::Term(ty.clone()));
                let rhs_ty = type_of(env, scope, rhs);
                scope.pop();
                let rhs_ty = rhs_ty?;
                if !rhs_ty.alpha_eq(ty) {
                    return Err(CoreError::Mismatch {
                        expected: ty.clone(),
                        actual: rhs_ty,
                    });
                }
            } else {
                let rhs_ty = type_of(env, scope, rhs)?;
                if !rhs_ty.alpha_eq(ty) {
                    return Err(CoreError::Mismatch {
                        expected: ty.clone(),
                        actual: rhs_ty,
                    });
                }
            }
            scope.push(*x, ScopeEntry::Term(ty.clone()));
            let body_ty = type_of(env, scope, body);
            scope.pop();
            body_ty
        }
        CoreExpr::Case(scrut, alts) => {
            let scrut_ty = type_of(env, scope, scrut)?;
            if alts.is_empty() {
                return Err(CoreError::EmptyCase);
            }
            let mut result: Option<Type> = None;
            for alt in alts {
                let rhs_ty = match alt {
                    CoreAlt::Con { con, binders, rhs } => {
                        let ty_args =
                            resolve_con_tyargs(env, scope, con, &scrut_ty).ok_or_else(|| {
                                CoreError::AltMismatch(format!(
                                    "constructor {} does not build `{}`",
                                    con.name, scrut_ty
                                ))
                            })?;
                        let (fields, _result) = con
                            .instantiate(&ty_args)
                            .ok_or(CoreError::ConArity(con.name))?;
                        if fields.len() != binders.len() {
                            return Err(CoreError::ConArity(con.name));
                        }
                        for ((x, declared), actual) in binders.iter().zip(&fields) {
                            if !declared.alpha_eq(actual) {
                                return Err(CoreError::AltMismatch(format!(
                                    "binder {x} declared `{declared}`, field is `{actual}`"
                                )));
                            }
                        }
                        for (x, t) in binders {
                            scope.push(*x, ScopeEntry::Term(t.clone()));
                        }
                        let out = type_of(env, scope, rhs);
                        for _ in binders {
                            scope.pop();
                        }
                        out?
                    }
                    CoreAlt::Lit { lit, rhs } => {
                        let lit_ty = literal_type(env, *lit);
                        if !lit_ty.alpha_eq(&scrut_ty) {
                            return Err(CoreError::AltMismatch(format!(
                                "literal {lit} does not match scrutinee type `{scrut_ty}`"
                            )));
                        }
                        type_of(env, scope, rhs)?
                    }
                    CoreAlt::Tuple { binders, rhs } => {
                        let Type::UnboxedTuple(ts) = &scrut_ty else {
                            return Err(CoreError::AltMismatch(format!(
                                "unboxed tuple pattern on scrutinee of type `{scrut_ty}`"
                            )));
                        };
                        if ts.len() != binders.len() {
                            return Err(CoreError::AltMismatch(
                                "unboxed tuple arity mismatch".to_owned(),
                            ));
                        }
                        for ((x, declared), actual) in binders.iter().zip(ts) {
                            if !declared.alpha_eq(actual) {
                                return Err(CoreError::AltMismatch(format!(
                                    "tuple binder {x} declared `{declared}`, component is `{actual}`"
                                )));
                            }
                        }
                        for (x, t) in binders {
                            scope.push(*x, ScopeEntry::Term(t.clone()));
                        }
                        let out = type_of(env, scope, rhs);
                        for _ in binders {
                            scope.pop();
                        }
                        out?
                    }
                    CoreAlt::Default { binder, rhs } => match binder {
                        Some((x, t)) => {
                            if !t.alpha_eq(&scrut_ty) {
                                return Err(CoreError::AltMismatch(format!(
                                    "default binder {x} declared `{t}`, scrutinee is `{scrut_ty}`"
                                )));
                            }
                            scope.push(*x, ScopeEntry::Term(t.clone()));
                            let out = type_of(env, scope, rhs);
                            scope.pop();
                            out?
                        }
                        None => type_of(env, scope, rhs)?,
                    },
                };
                match &result {
                    None => result = Some(rhs_ty),
                    Some(prev) => {
                        if !prev.alpha_eq(&rhs_ty) {
                            return Err(CoreError::AltMismatch(format!(
                                "alternative types differ: `{prev}` vs `{rhs_ty}`"
                            )));
                        }
                    }
                }
            }
            Ok(result.expect("non-empty alts"))
        }
        CoreExpr::Con(con, ty_args, fields) => {
            for arg in ty_args {
                match arg {
                    TyArg::Ty(t) => {
                        kind_of(env, scope, t)?;
                    }
                    TyArg::Rep(r) => check_rep_scoped(scope, r)?,
                }
            }
            let (field_tys, result) = con
                .instantiate(ty_args)
                .ok_or(CoreError::ConArity(con.name))?;
            if field_tys.len() != fields.len() {
                return Err(CoreError::ConArity(con.name));
            }
            for (expected, field) in field_tys.iter().zip(fields) {
                let actual = type_of(env, scope, field)?;
                if !expected.alpha_eq(&actual) {
                    return Err(CoreError::Mismatch {
                        expected: expected.clone(),
                        actual,
                    });
                }
            }
            Ok(result)
        }
        CoreExpr::Prim(op, args) => {
            let (expected, result) = prim_signature(*op, &env.builtins);
            if expected.len() != args.len() {
                return Err(CoreError::PrimArity(*op));
            }
            for (exp, arg) in expected.iter().zip(args) {
                let actual = type_of(env, scope, arg)?;
                if !exp.alpha_eq(&actual) {
                    return Err(CoreError::Mismatch {
                        expected: exp.clone(),
                        actual,
                    });
                }
            }
            Ok(result)
        }
        CoreExpr::Tuple(es) => {
            let mut tys = Vec::with_capacity(es.len());
            for e in es {
                let t = type_of(env, scope, e)?;
                let k = kind_of(env, scope, &t)?;
                if !k.classifies_values() {
                    return Err(CoreError::NotAValueKind(t, k));
                }
                tys.push(t);
            }
            Ok(Type::UnboxedTuple(tys))
        }
        CoreExpr::Error(ty, _) => {
            let k = kind_of(env, scope, ty)?;
            if !k.classifies_values() {
                return Err(CoreError::NotAValueKind(ty.clone(), k));
            }
            Ok(ty.clone())
        }
    }
}

/// Checks a whole program: registers its datatypes and global types,
/// then checks every binding against its declared type.
///
/// # Errors
///
/// The first [`CoreError`], annotated with the binding's name.
pub fn check_program(prog: &Program) -> Result<TypeEnv, (Symbol, CoreError)> {
    let mut env = TypeEnv::new();
    for decl in &prog.data_decls {
        env.add_data_decl(Arc::clone(decl));
    }
    // Globals first: all top-level bindings are mutually recursive.
    for bind in &prog.bindings {
        env.define_global(bind.name, bind.ty.clone());
    }
    for bind in &prog.bindings {
        let mut scope = Scope::new();
        kind_of(&env, &mut scope, &bind.ty).map_err(|e| (bind.name, e))?;
        let actual = type_of(&env, &mut scope, &bind.expr).map_err(|e| (bind.name, e))?;
        if !actual.alpha_eq(&bind.ty) {
            return Err((
                bind.name,
                CoreError::Mismatch {
                    expected: bind.ty.clone(),
                    actual,
                },
            ));
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::TopBind;
    use levity_core::rep::Rep;

    fn env() -> TypeEnv {
        TypeEnv::new()
    }

    #[test]
    fn literals_and_cons() {
        let env = env();
        let mut scope = Scope::new();
        assert_eq!(
            type_of(&env, &mut scope, &CoreExpr::int(3))
                .unwrap()
                .to_string(),
            "Int#"
        );
        let boxed = CoreExpr::Con(
            Arc::clone(&env.builtins.i_hash),
            vec![],
            vec![CoreExpr::int(3)],
        );
        assert_eq!(
            type_of(&env, &mut scope, &boxed).unwrap().to_string(),
            "Int"
        );
    }

    #[test]
    fn int_hash_to_int_hash_functions_are_well_kinded() {
        // The §3.2 problem solved: Int# -> Int# is a fine type, because
        // (->) is levity-polymorphic in both arguments.
        let env = env();
        let mut scope = Scope::new();
        let t = Type::fun(
            Type::con0(&env.builtins.int_hash),
            Type::con0(&env.builtins.int_hash),
        );
        assert_eq!(kind_of(&env, &mut scope, &t).unwrap(), Kind::TYPE);
    }

    #[test]
    fn unboxed_tuple_kinds_follow_section_4_2() {
        let env = env();
        let mut scope = Scope::new();
        let t = Type::UnboxedTuple(vec![
            Type::con0(&env.builtins.int_hash),
            Type::con0(&env.builtins.bool),
        ]);
        assert_eq!(
            kind_of(&env, &mut scope, &t).unwrap().to_string(),
            "TYPE (TupleRep '[IntRep, LiftedRep])"
        );
        // Nested vs flat: distinct kinds (§4.2).
        let nested = Type::UnboxedTuple(vec![
            Type::con0(&env.builtins.int),
            Type::UnboxedTuple(vec![
                Type::con0(&env.builtins.float_hash),
                Type::con0(&env.builtins.bool),
            ]),
        ]);
        let flat = Type::UnboxedTuple(vec![
            Type::con0(&env.builtins.int),
            Type::con0(&env.builtins.float_hash),
            Type::con0(&env.builtins.bool),
        ]);
        let kn = kind_of(&env, &mut Scope::new(), &nested).unwrap();
        let kf = kind_of(&env, &mut Scope::new(), &flat).unwrap();
        assert_ne!(kn, kf, "nesting is kind-relevant");
        // ... but the *runtime* shape matches (computed via Rep::slots).
        let rn = kn.concrete_rep().unwrap();
        let rf = kf.concrete_rep().unwrap();
        assert_eq!(
            rn.slots(),
            rf.slots(),
            "nesting is computationally irrelevant"
        );
    }

    #[test]
    fn array_hash_can_be_partially_applied() {
        // §7.1: unlifted types no longer need to be fully saturated; the
        // kind system tracks them accurately. `Array#` alone has an arrow
        // kind; `Array# Int` has TYPE UnliftedRep.
        let env = env();
        let mut scope = Scope::new();
        let bare = Type::con0(&env.builtins.array_hash);
        assert_eq!(
            kind_of(&env, &mut scope, &bare).unwrap().to_string(),
            "Type -> TYPE UnliftedRep"
        );
        let applied = Type::Con(
            Arc::clone(&env.builtins.array_hash),
            vec![Type::con0(&env.builtins.int)],
        );
        assert_eq!(
            kind_of(&env, &mut scope, &applied).unwrap(),
            Kind::of_rep(Rep::Unlifted)
        );
    }

    #[test]
    fn apply_and_lambda() {
        let env = env();
        let mut scope = Scope::new();
        let ih = Type::con0(&env.builtins.int_hash);
        let e = CoreExpr::app(
            CoreExpr::lam("x", ih.clone(), CoreExpr::Var("x".into())),
            CoreExpr::int(1),
        );
        assert_eq!(type_of(&env, &mut scope, &e).unwrap().to_string(), "Int#");
    }

    #[test]
    fn levity_polymorphic_signatures_typecheck_here() {
        // myError :: forall (r :: Rep) (a :: TYPE r). Int -> a
        // The *type checker* accepts this; the §5.1 checks live in the
        // levity pass (GHC's desugarer, §8.2).
        let env = env();
        let mut scope = Scope::new();
        let r: Symbol = "r".into();
        let a: Symbol = "a".into();
        let e = CoreExpr::rep_lam(
            r,
            CoreExpr::ty_lam(
                a,
                Kind::of_rep_var(r),
                CoreExpr::lam(
                    "s",
                    Type::con0(&env.builtins.int),
                    CoreExpr::Error(Type::Var(a), "myError".to_owned()),
                ),
            ),
        );
        let t = type_of(&env, &mut scope, &e).unwrap();
        assert_eq!(t.to_string(), "forall (r :: Rep) (a :: TYPE r). Int -> a");
    }

    #[test]
    fn case_on_bool() {
        let env = env();
        let mut scope = Scope::new();
        let b = &env.builtins;
        let e = CoreExpr::case(
            CoreExpr::Con(Arc::clone(&b.true_con), vec![], vec![]),
            vec![
                CoreAlt::Con {
                    con: Arc::clone(&b.false_con),
                    binders: vec![],
                    rhs: CoreExpr::int(0),
                },
                CoreAlt::Con {
                    con: Arc::clone(&b.true_con),
                    binders: vec![],
                    rhs: CoreExpr::int(1),
                },
            ],
        );
        assert_eq!(type_of(&env, &mut scope, &e).unwrap().to_string(), "Int#");
    }

    #[test]
    fn case_alternatives_must_agree() {
        let env = env();
        let mut scope = Scope::new();
        let b = &env.builtins;
        let e = CoreExpr::case(
            CoreExpr::Con(Arc::clone(&b.true_con), vec![], vec![]),
            vec![
                CoreAlt::Con {
                    con: Arc::clone(&b.false_con),
                    binders: vec![],
                    rhs: CoreExpr::int(0),
                },
                CoreAlt::Con {
                    con: Arc::clone(&b.true_con),
                    binders: vec![],
                    rhs: CoreExpr::Lit(Literal::double(1.0)),
                },
            ],
        );
        assert!(matches!(
            type_of(&env, &mut scope, &e).unwrap_err(),
            CoreError::AltMismatch(_)
        ));
    }

    #[test]
    fn case_on_maybe_instantiates_fields() {
        let env = env();
        let mut scope = Scope::new();
        let b = &env.builtins;
        let maybe_int = Type::Con(Arc::clone(&b.maybe), vec![Type::con0(&b.int)]);
        let e = CoreExpr::case(
            CoreExpr::Con(
                Arc::clone(&b.just),
                vec![TyArg::Ty(Type::con0(&b.int))],
                vec![CoreExpr::Con(
                    Arc::clone(&b.i_hash),
                    vec![],
                    vec![CoreExpr::int(3)],
                )],
            ),
            vec![
                CoreAlt::Con {
                    con: Arc::clone(&b.nothing),
                    binders: vec![],
                    rhs: CoreExpr::int(0),
                },
                CoreAlt::Con {
                    con: Arc::clone(&b.just),
                    binders: vec![("v".into(), Type::con0(&b.int))],
                    rhs: CoreExpr::case(
                        CoreExpr::Var("v".into()),
                        vec![CoreAlt::Con {
                            con: Arc::clone(&b.i_hash),
                            binders: vec![("n".into(), Type::con0(&b.int_hash))],
                            rhs: CoreExpr::Var("n".into()),
                        }],
                    ),
                },
            ],
        );
        let _ = maybe_int;
        assert_eq!(type_of(&env, &mut scope, &e).unwrap().to_string(), "Int#");
    }

    #[test]
    fn recursive_let_must_be_lifted() {
        let env = env();
        let mut scope = Scope::new();
        let ih = Type::con0(&env.builtins.int_hash);
        let e = CoreExpr::Let(
            LetKind::Rec,
            "x".into(),
            ih.clone(),
            Box::new(CoreExpr::Var("x".into())),
            Box::new(CoreExpr::Var("x".into())),
        );
        assert!(matches!(
            type_of(&env, &mut scope, &e).unwrap_err(),
            CoreError::RecBinderNotLifted(..)
        ));
    }

    #[test]
    fn unboxed_tuple_expressions_and_patterns() {
        let env = env();
        let mut scope = Scope::new();
        let b = &env.builtins;
        let ih = Type::con0(&b.int_hash);
        // case (# 1#, 2# #) of (# a, b #) -> +# a b
        let e = CoreExpr::case(
            CoreExpr::Tuple(vec![CoreExpr::int(1), CoreExpr::int(2)]),
            vec![CoreAlt::Tuple {
                binders: vec![("a".into(), ih.clone()), ("b".into(), ih.clone())],
                rhs: CoreExpr::Prim(
                    PrimOp::AddI,
                    vec![CoreExpr::Var("a".into()), CoreExpr::Var("b".into())],
                ),
            }],
        );
        assert_eq!(type_of(&env, &mut scope, &e).unwrap().to_string(), "Int#");
    }

    #[test]
    fn whole_program_check() {
        let env0 = TypeEnv::new();
        let b = &env0.builtins;
        let ih = Type::con0(&b.int_hash);
        let prog = Program {
            data_decls: b.data_decls.clone(),
            bindings: vec![TopBind {
                name: "inc".into(),
                ty: Type::fun(ih.clone(), ih.clone()),
                expr: CoreExpr::lam(
                    "x",
                    ih.clone(),
                    CoreExpr::Prim(
                        PrimOp::AddI,
                        vec![CoreExpr::Var("x".into()), CoreExpr::int(1)],
                    ),
                ),
            }],
        };
        let env = check_program(&prog).unwrap();
        assert!(env.global("inc".into()).is_some());
    }

    #[test]
    fn program_check_reports_binding_name() {
        let env0 = TypeEnv::new();
        let b = &env0.builtins;
        let prog = Program {
            data_decls: b.data_decls.clone(),
            bindings: vec![TopBind {
                name: "bad".into(),
                ty: Type::con0(&b.int),
                expr: CoreExpr::int(1), // Int# , not Int
            }],
        };
        let (name, err) = check_program(&prog).unwrap_err();
        assert_eq!(name, Symbol::intern("bad"));
        assert!(matches!(err, CoreError::Mismatch { .. }));
    }
}
