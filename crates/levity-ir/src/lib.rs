//! Core: the explicitly-typed intermediate representation of the
//! levity-polymorphism pipeline.
//!
//! Where the formal `L` calculus (crate `levity-l`) has exactly the
//! constructs of Figure 2, Core scales the same ideas to a realistic
//! surface language: the full `Rep` grammar (§4.1–4.2), algebraic
//! datatypes (including `data Int = I# Int#`, which is *not* special,
//! §2.1), unboxed tuples, primops, `let`/`letrec`, and class
//! dictionaries (§7.3).
//!
//! The split of checking mirrors GHC (§8.2):
//!
//! * [`typecheck`] — kinding and type checking ("lint"); levity-
//!   polymorphic *types* are allowed everywhere here;
//! * [`levity`] — the §5.1 restrictions (no levity-polymorphic binders or
//!   arguments), run as a separate later pass, "in the desugarer".
//!
//! # Example
//!
//! ```
//! use levity_ir::typecheck::{kind_of, Scope, TypeEnv};
//! use levity_ir::types::Type;
//!
//! let env = TypeEnv::new();
//! // Int# -> Int# is well-kinded — no sub-kinding needed (§3.2 solved).
//! let t = Type::fun(
//!     Type::con0(&env.builtins.int_hash),
//!     Type::con0(&env.builtins.int_hash),
//! );
//! let k = kind_of(&env, &mut Scope::new(), &t).unwrap();
//! assert_eq!(k.to_string(), "Type");
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

use levity_core::symbol::Symbol;

pub mod builtin;
pub mod levity;
pub mod terms;
pub mod typecheck;
pub mod types;

pub use builtin::{builtins, prim_signature, Builtins};
pub use terms::{
    CoreAlt, CoreExpr, DataConInfo, DataDecl, LetKind, Program, TopBind, TyArg, TyParam,
};
pub use typecheck::{check_program, kind_of, type_of, CoreError, Scope, ScopeEntry, TypeEnv};
pub use types::{TyCon, Type};

static FRESH: AtomicU64 = AtomicU64::new(0);

/// A fresh symbol derived from `base`, for capture-avoiding substitution.
pub fn freshen(base: Symbol) -> Symbol {
    let n = FRESH.fetch_add(1, Ordering::Relaxed);
    let stem = base.as_str().split('\'').next().unwrap_or("v");
    Symbol::intern(&format!("{stem}'{n}"))
}
