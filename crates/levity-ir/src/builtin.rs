//! Built-in type constructors, data constructors and primop signatures.
//!
//! Following §2.1, the boxed types are *not* special: `data Int = I#
//! Int#` is an ordinary algebraic data type whose field happens to be
//! unboxed. Only the primitive unboxed types (`Int#`, `Double#`, ...) and
//! the primops over them are built in.

use std::sync::Arc;

use levity_core::kind::Kind;
use levity_core::rep::Rep;
use levity_core::symbol::Symbol;
use levity_m::syntax::PrimOp;

use crate::terms::{DataConInfo, DataDecl, TyParam};
use crate::types::{TyCon, Type};

/// The built-in environment: primitive and prelude type constructors and
/// data constructors.
#[derive(Clone, Debug)]
pub struct Builtins {
    /// `Int# :: TYPE IntRep`.
    pub int_hash: Arc<TyCon>,
    /// `Char# :: TYPE CharRep`.
    pub char_hash: Arc<TyCon>,
    /// `Float# :: TYPE FloatRep`.
    pub float_hash: Arc<TyCon>,
    /// `Double# :: TYPE DoubleRep`.
    pub double_hash: Arc<TyCon>,
    /// `ByteArray# :: TYPE UnliftedRep` (boxed, unlifted — Figure 1).
    pub byte_array_hash: Arc<TyCon>,
    /// `Array# :: Type -> TYPE UnliftedRep` (§7.1: parameterized unlifted).
    pub array_hash: Arc<TyCon>,
    /// `Int :: Type`.
    pub int: Arc<TyCon>,
    /// `Char :: Type`.
    pub char: Arc<TyCon>,
    /// `Float :: Type`.
    pub float: Arc<TyCon>,
    /// `Double :: Type`.
    pub double: Arc<TyCon>,
    /// `Bool :: Type`.
    pub bool: Arc<TyCon>,
    /// `Maybe :: Type -> Type`.
    pub maybe: Arc<TyCon>,
    /// `List :: Type -> Type` (written `[a]` in Haskell).
    pub list: Arc<TyCon>,
    /// `Unit :: Type` (written `()`).
    pub unit: Arc<TyCon>,
    /// `Pair :: Type -> Type -> Type` (boxed `(,)`).
    pub pair: Arc<TyCon>,

    /// `I# :: Int# -> Int`.
    pub i_hash: Arc<DataConInfo>,
    /// `C# :: Char# -> Char`.
    pub c_hash: Arc<DataConInfo>,
    /// `F# :: Float# -> Float`.
    pub f_hash: Arc<DataConInfo>,
    /// `D# :: Double# -> Double`.
    pub d_hash: Arc<DataConInfo>,
    /// `False :: Bool` (tag 0).
    pub false_con: Arc<DataConInfo>,
    /// `True :: Bool` (tag 1).
    pub true_con: Arc<DataConInfo>,
    /// `Nothing :: Maybe a` (tag 0).
    pub nothing: Arc<DataConInfo>,
    /// `Just :: a -> Maybe a` (tag 1).
    pub just: Arc<DataConInfo>,
    /// `Nil :: List a` (tag 0).
    pub nil: Arc<DataConInfo>,
    /// `Cons :: a -> List a -> List a` (tag 1).
    pub cons: Arc<DataConInfo>,
    /// `MkUnit :: Unit`.
    pub unit_con: Arc<DataConInfo>,
    /// `MkPair :: a -> b -> Pair a b` — the boxed tuple of §2.3: "a
    /// heap-allocated vector of pointers", all fields lifted.
    pub pair_con: Arc<DataConInfo>,

    /// The prelude datatype declarations, in dependency order.
    pub data_decls: Vec<Arc<DataDecl>>,
}

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Builds the built-in environment. Cheap enough to call freely.
pub fn builtins() -> Builtins {
    let int_hash = Arc::new(TyCon::of_rep("Int#", Rep::Int));
    let char_hash = Arc::new(TyCon::of_rep("Char#", Rep::Char));
    let float_hash = Arc::new(TyCon::of_rep("Float#", Rep::Float));
    let double_hash = Arc::new(TyCon::of_rep("Double#", Rep::Double));
    let byte_array_hash = Arc::new(TyCon::of_rep("ByteArray#", Rep::Unlifted));
    let array_hash = Arc::new(TyCon {
        name: sym("Array#"),
        kind: Kind::arrow(Kind::TYPE, Kind::of_rep(Rep::Unlifted)),
    });
    let int = Arc::new(TyCon::lifted("Int"));
    let char = Arc::new(TyCon::lifted("Char"));
    let float = Arc::new(TyCon::lifted("Float"));
    let double = Arc::new(TyCon::lifted("Double"));
    let bool_tc = Arc::new(TyCon::lifted("Bool"));
    let maybe = Arc::new(TyCon {
        name: sym("Maybe"),
        kind: Kind::arrow(Kind::TYPE, Kind::TYPE),
    });
    let list = Arc::new(TyCon {
        name: sym("List"),
        kind: Kind::arrow(Kind::TYPE, Kind::TYPE),
    });
    let unit = Arc::new(TyCon::lifted("Unit"));
    let pair = Arc::new(TyCon {
        name: sym("Pair"),
        kind: Kind::arrow(Kind::TYPE, Kind::arrow(Kind::TYPE, Kind::TYPE)),
    });

    // data Int = I# Int#   (and friends: §2.1, "GHC does not treat them
    // specially")
    let i_hash = Arc::new(DataConInfo {
        name: sym("I#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&int_hash)],
        result: Type::con0(&int),
    });
    let c_hash = Arc::new(DataConInfo {
        name: sym("C#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&char_hash)],
        result: Type::con0(&char),
    });
    let f_hash = Arc::new(DataConInfo {
        name: sym("F#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&float_hash)],
        result: Type::con0(&float),
    });
    let d_hash = Arc::new(DataConInfo {
        name: sym("D#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&double_hash)],
        result: Type::con0(&double),
    });
    let false_con = Arc::new(DataConInfo {
        name: sym("False"),
        tag: 0,
        params: vec![],
        field_types: vec![],
        result: Type::con0(&bool_tc),
    });
    let true_con = Arc::new(DataConInfo {
        name: sym("True"),
        tag: 1,
        params: vec![],
        field_types: vec![],
        result: Type::con0(&bool_tc),
    });
    let a = sym("a");
    let b = sym("b");
    let nothing = Arc::new(DataConInfo {
        name: sym("Nothing"),
        tag: 0,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![],
        result: Type::Con(Arc::clone(&maybe), vec![Type::Var(a)]),
    });
    let just = Arc::new(DataConInfo {
        name: sym("Just"),
        tag: 1,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![Type::Var(a)],
        result: Type::Con(Arc::clone(&maybe), vec![Type::Var(a)]),
    });
    let nil = Arc::new(DataConInfo {
        name: sym("Nil"),
        tag: 0,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![],
        result: Type::Con(Arc::clone(&list), vec![Type::Var(a)]),
    });
    let cons = Arc::new(DataConInfo {
        name: sym("Cons"),
        tag: 1,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![
            Type::Var(a),
            Type::Con(Arc::clone(&list), vec![Type::Var(a)]),
        ],
        result: Type::Con(Arc::clone(&list), vec![Type::Var(a)]),
    });
    let unit_con = Arc::new(DataConInfo {
        name: sym("MkUnit"),
        tag: 0,
        params: vec![],
        field_types: vec![],
        result: Type::con0(&unit),
    });
    let pair_con = Arc::new(DataConInfo {
        name: sym("MkPair"),
        tag: 0,
        params: vec![TyParam::Ty(a, Kind::TYPE), TyParam::Ty(b, Kind::TYPE)],
        field_types: vec![Type::Var(a), Type::Var(b)],
        result: Type::Con(Arc::clone(&pair), vec![Type::Var(a), Type::Var(b)]),
    });

    let data_decls = vec![
        Arc::new(DataDecl {
            tycon: Arc::clone(&int),
            params: vec![],
            cons: vec![Arc::clone(&i_hash)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&char),
            params: vec![],
            cons: vec![Arc::clone(&c_hash)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&float),
            params: vec![],
            cons: vec![Arc::clone(&f_hash)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&double),
            params: vec![],
            cons: vec![Arc::clone(&d_hash)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&bool_tc),
            params: vec![],
            cons: vec![Arc::clone(&false_con), Arc::clone(&true_con)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&maybe),
            params: vec![TyParam::Ty(a, Kind::TYPE)],
            cons: vec![Arc::clone(&nothing), Arc::clone(&just)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&list),
            params: vec![TyParam::Ty(a, Kind::TYPE)],
            cons: vec![Arc::clone(&nil), Arc::clone(&cons)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&unit),
            params: vec![],
            cons: vec![Arc::clone(&unit_con)],
        }),
        Arc::new(DataDecl {
            tycon: Arc::clone(&pair),
            params: vec![TyParam::Ty(a, Kind::TYPE), TyParam::Ty(b, Kind::TYPE)],
            cons: vec![Arc::clone(&pair_con)],
        }),
    ];

    Builtins {
        int_hash,
        char_hash,
        float_hash,
        double_hash,
        byte_array_hash,
        array_hash,
        int,
        char,
        float,
        double,
        bool: bool_tc,
        maybe,
        list,
        unit,
        pair,
        i_hash,
        c_hash,
        f_hash,
        d_hash,
        false_con,
        true_con,
        nothing,
        just,
        nil,
        cons,
        unit_con,
        pair_con,
        data_decls,
    }
}

/// The argument and result types of a primop (§2.1's `+#`, §7.3's `+##`).
pub fn prim_signature(op: PrimOp, b: &Builtins) -> (Vec<Type>, Type) {
    let ih = || Type::con0(&b.int_hash);
    let dh = || Type::con0(&b.double_hash);
    let fh = || Type::con0(&b.float_hash);
    let ch = || Type::con0(&b.char_hash);
    match op {
        PrimOp::AddI | PrimOp::SubI | PrimOp::MulI | PrimOp::QuotI | PrimOp::RemI => {
            (vec![ih(), ih()], ih())
        }
        PrimOp::NegI => (vec![ih()], ih()),
        PrimOp::EqI | PrimOp::NeI | PrimOp::LtI | PrimOp::LeI | PrimOp::GtI | PrimOp::GeI => {
            (vec![ih(), ih()], ih())
        }
        PrimOp::AddD | PrimOp::SubD | PrimOp::MulD | PrimOp::DivD => (vec![dh(), dh()], dh()),
        PrimOp::NegD => (vec![dh()], dh()),
        PrimOp::EqD | PrimOp::LtD | PrimOp::LeD => (vec![dh(), dh()], ih()),
        PrimOp::AddF | PrimOp::SubF | PrimOp::MulF | PrimOp::DivF => (vec![fh(), fh()], fh()),
        PrimOp::IntToDouble => (vec![ih()], dh()),
        PrimOp::DoubleToInt => (vec![dh()], ih()),
        PrimOp::IntToFloat => (vec![ih()], fh()),
        PrimOp::FloatToDouble => (vec![fh()], dh()),
        PrimOp::CharToInt => (vec![ch()], ih()),
        PrimOp::IntToChar => (vec![ih()], ch()),
        PrimOp::EqC => (vec![ch(), ch()], ih()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_kinds_match_figure1() {
        let b = builtins();
        assert_eq!(b.int_hash.kind, Kind::of_rep(Rep::Int));
        assert_eq!(b.byte_array_hash.kind, Kind::of_rep(Rep::Unlifted));
        assert_eq!(b.int.kind, Kind::TYPE);
        // Array# :: Type -> TYPE UnliftedRep (§7.1).
        assert_eq!(
            b.array_hash.kind,
            Kind::arrow(Kind::TYPE, Kind::of_rep(Rep::Unlifted))
        );
    }

    #[test]
    fn int_is_an_ordinary_adt_over_int_hash() {
        let b = builtins();
        assert_eq!(b.i_hash.field_types, vec![Type::con0(&b.int_hash)]);
        assert_eq!(b.i_hash.result, Type::con0(&b.int));
    }

    #[test]
    fn bool_tags_are_stable() {
        let b = builtins();
        assert_eq!(b.false_con.tag, 0);
        assert_eq!(b.true_con.tag, 1);
    }

    #[test]
    fn boxed_pair_fields_are_lifted() {
        // §2.3: all elements of a boxed tuple must also be boxed.
        let b = builtins();
        assert_eq!(b.pair_con.field_types.len(), 2);
        assert!(matches!(b.pair_con.field_types[0], Type::Var(_)));
        // Its parameters are Type-kinded (lifted), so fields are lifted.
        for p in &b.pair_con.params {
            match p {
                TyParam::Ty(_, k) => assert_eq!(*k, Kind::TYPE),
                TyParam::Rep(_) => panic!("boxed pair has no rep params"),
            }
        }
    }

    #[test]
    fn prim_signatures_are_well_formed() {
        let b = builtins();
        for op in [
            PrimOp::AddI,
            PrimOp::SubI,
            PrimOp::LtI,
            PrimOp::AddD,
            PrimOp::EqD,
            PrimOp::IntToDouble,
            PrimOp::CharToInt,
        ] {
            let (args, _result) = prim_signature(op, &b);
            assert_eq!(args.len(), op.arity());
        }
    }
}
