//! Built-in type constructors, data constructors and primop signatures.
//!
//! Following §2.1, the boxed types are *not* special: `data Int = I#
//! Int#` is an ordinary algebraic data type whose field happens to be
//! unboxed. Only the primitive unboxed types (`Int#`, `Double#`, ...) and
//! the primops over them are built in.

use std::rc::Rc;

use levity_core::kind::Kind;
use levity_core::rep::Rep;
use levity_core::symbol::Symbol;
use levity_m::syntax::PrimOp;

use crate::terms::{DataConInfo, DataDecl, TyParam};
use crate::types::{TyCon, Type};

/// The built-in environment: primitive and prelude type constructors and
/// data constructors.
#[derive(Clone, Debug)]
pub struct Builtins {
    /// `Int# :: TYPE IntRep`.
    pub int_hash: Rc<TyCon>,
    /// `Char# :: TYPE CharRep`.
    pub char_hash: Rc<TyCon>,
    /// `Float# :: TYPE FloatRep`.
    pub float_hash: Rc<TyCon>,
    /// `Double# :: TYPE DoubleRep`.
    pub double_hash: Rc<TyCon>,
    /// `ByteArray# :: TYPE UnliftedRep` (boxed, unlifted — Figure 1).
    pub byte_array_hash: Rc<TyCon>,
    /// `Array# :: Type -> TYPE UnliftedRep` (§7.1: parameterized unlifted).
    pub array_hash: Rc<TyCon>,
    /// `Int :: Type`.
    pub int: Rc<TyCon>,
    /// `Char :: Type`.
    pub char: Rc<TyCon>,
    /// `Float :: Type`.
    pub float: Rc<TyCon>,
    /// `Double :: Type`.
    pub double: Rc<TyCon>,
    /// `Bool :: Type`.
    pub bool: Rc<TyCon>,
    /// `Maybe :: Type -> Type`.
    pub maybe: Rc<TyCon>,
    /// `List :: Type -> Type` (written `[a]` in Haskell).
    pub list: Rc<TyCon>,
    /// `Unit :: Type` (written `()`).
    pub unit: Rc<TyCon>,
    /// `Pair :: Type -> Type -> Type` (boxed `(,)`).
    pub pair: Rc<TyCon>,

    /// `I# :: Int# -> Int`.
    pub i_hash: Rc<DataConInfo>,
    /// `C# :: Char# -> Char`.
    pub c_hash: Rc<DataConInfo>,
    /// `F# :: Float# -> Float`.
    pub f_hash: Rc<DataConInfo>,
    /// `D# :: Double# -> Double`.
    pub d_hash: Rc<DataConInfo>,
    /// `False :: Bool` (tag 0).
    pub false_con: Rc<DataConInfo>,
    /// `True :: Bool` (tag 1).
    pub true_con: Rc<DataConInfo>,
    /// `Nothing :: Maybe a` (tag 0).
    pub nothing: Rc<DataConInfo>,
    /// `Just :: a -> Maybe a` (tag 1).
    pub just: Rc<DataConInfo>,
    /// `Nil :: List a` (tag 0).
    pub nil: Rc<DataConInfo>,
    /// `Cons :: a -> List a -> List a` (tag 1).
    pub cons: Rc<DataConInfo>,
    /// `MkUnit :: Unit`.
    pub unit_con: Rc<DataConInfo>,
    /// `MkPair :: a -> b -> Pair a b` — the boxed tuple of §2.3: "a
    /// heap-allocated vector of pointers", all fields lifted.
    pub pair_con: Rc<DataConInfo>,

    /// The prelude datatype declarations, in dependency order.
    pub data_decls: Vec<Rc<DataDecl>>,
}

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Builds the built-in environment. Cheap enough to call freely.
pub fn builtins() -> Builtins {
    let int_hash = Rc::new(TyCon::of_rep("Int#", Rep::Int));
    let char_hash = Rc::new(TyCon::of_rep("Char#", Rep::Char));
    let float_hash = Rc::new(TyCon::of_rep("Float#", Rep::Float));
    let double_hash = Rc::new(TyCon::of_rep("Double#", Rep::Double));
    let byte_array_hash = Rc::new(TyCon::of_rep("ByteArray#", Rep::Unlifted));
    let array_hash = Rc::new(TyCon {
        name: sym("Array#"),
        kind: Kind::arrow(Kind::TYPE, Kind::of_rep(Rep::Unlifted)),
    });
    let int = Rc::new(TyCon::lifted("Int"));
    let char = Rc::new(TyCon::lifted("Char"));
    let float = Rc::new(TyCon::lifted("Float"));
    let double = Rc::new(TyCon::lifted("Double"));
    let bool_tc = Rc::new(TyCon::lifted("Bool"));
    let maybe = Rc::new(TyCon {
        name: sym("Maybe"),
        kind: Kind::arrow(Kind::TYPE, Kind::TYPE),
    });
    let list = Rc::new(TyCon {
        name: sym("List"),
        kind: Kind::arrow(Kind::TYPE, Kind::TYPE),
    });
    let unit = Rc::new(TyCon::lifted("Unit"));
    let pair = Rc::new(TyCon {
        name: sym("Pair"),
        kind: Kind::arrow(Kind::TYPE, Kind::arrow(Kind::TYPE, Kind::TYPE)),
    });

    // data Int = I# Int#   (and friends: §2.1, "GHC does not treat them
    // specially")
    let i_hash = Rc::new(DataConInfo {
        name: sym("I#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&int_hash)],
        result: Type::con0(&int),
    });
    let c_hash = Rc::new(DataConInfo {
        name: sym("C#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&char_hash)],
        result: Type::con0(&char),
    });
    let f_hash = Rc::new(DataConInfo {
        name: sym("F#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&float_hash)],
        result: Type::con0(&float),
    });
    let d_hash = Rc::new(DataConInfo {
        name: sym("D#"),
        tag: 0,
        params: vec![],
        field_types: vec![Type::con0(&double_hash)],
        result: Type::con0(&double),
    });
    let false_con = Rc::new(DataConInfo {
        name: sym("False"),
        tag: 0,
        params: vec![],
        field_types: vec![],
        result: Type::con0(&bool_tc),
    });
    let true_con = Rc::new(DataConInfo {
        name: sym("True"),
        tag: 1,
        params: vec![],
        field_types: vec![],
        result: Type::con0(&bool_tc),
    });
    let a = sym("a");
    let b = sym("b");
    let nothing = Rc::new(DataConInfo {
        name: sym("Nothing"),
        tag: 0,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![],
        result: Type::Con(Rc::clone(&maybe), vec![Type::Var(a)]),
    });
    let just = Rc::new(DataConInfo {
        name: sym("Just"),
        tag: 1,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![Type::Var(a)],
        result: Type::Con(Rc::clone(&maybe), vec![Type::Var(a)]),
    });
    let nil = Rc::new(DataConInfo {
        name: sym("Nil"),
        tag: 0,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![],
        result: Type::Con(Rc::clone(&list), vec![Type::Var(a)]),
    });
    let cons = Rc::new(DataConInfo {
        name: sym("Cons"),
        tag: 1,
        params: vec![TyParam::Ty(a, Kind::TYPE)],
        field_types: vec![
            Type::Var(a),
            Type::Con(Rc::clone(&list), vec![Type::Var(a)]),
        ],
        result: Type::Con(Rc::clone(&list), vec![Type::Var(a)]),
    });
    let unit_con = Rc::new(DataConInfo {
        name: sym("MkUnit"),
        tag: 0,
        params: vec![],
        field_types: vec![],
        result: Type::con0(&unit),
    });
    let pair_con = Rc::new(DataConInfo {
        name: sym("MkPair"),
        tag: 0,
        params: vec![TyParam::Ty(a, Kind::TYPE), TyParam::Ty(b, Kind::TYPE)],
        field_types: vec![Type::Var(a), Type::Var(b)],
        result: Type::Con(Rc::clone(&pair), vec![Type::Var(a), Type::Var(b)]),
    });

    let data_decls = vec![
        Rc::new(DataDecl {
            tycon: Rc::clone(&int),
            params: vec![],
            cons: vec![Rc::clone(&i_hash)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&char),
            params: vec![],
            cons: vec![Rc::clone(&c_hash)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&float),
            params: vec![],
            cons: vec![Rc::clone(&f_hash)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&double),
            params: vec![],
            cons: vec![Rc::clone(&d_hash)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&bool_tc),
            params: vec![],
            cons: vec![Rc::clone(&false_con), Rc::clone(&true_con)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&maybe),
            params: vec![TyParam::Ty(a, Kind::TYPE)],
            cons: vec![Rc::clone(&nothing), Rc::clone(&just)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&list),
            params: vec![TyParam::Ty(a, Kind::TYPE)],
            cons: vec![Rc::clone(&nil), Rc::clone(&cons)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&unit),
            params: vec![],
            cons: vec![Rc::clone(&unit_con)],
        }),
        Rc::new(DataDecl {
            tycon: Rc::clone(&pair),
            params: vec![TyParam::Ty(a, Kind::TYPE), TyParam::Ty(b, Kind::TYPE)],
            cons: vec![Rc::clone(&pair_con)],
        }),
    ];

    Builtins {
        int_hash,
        char_hash,
        float_hash,
        double_hash,
        byte_array_hash,
        array_hash,
        int,
        char,
        float,
        double,
        bool: bool_tc,
        maybe,
        list,
        unit,
        pair,
        i_hash,
        c_hash,
        f_hash,
        d_hash,
        false_con,
        true_con,
        nothing,
        just,
        nil,
        cons,
        unit_con,
        pair_con,
        data_decls,
    }
}

/// The argument and result types of a primop (§2.1's `+#`, §7.3's `+##`).
pub fn prim_signature(op: PrimOp, b: &Builtins) -> (Vec<Type>, Type) {
    let ih = || Type::con0(&b.int_hash);
    let dh = || Type::con0(&b.double_hash);
    let fh = || Type::con0(&b.float_hash);
    let ch = || Type::con0(&b.char_hash);
    match op {
        PrimOp::AddI | PrimOp::SubI | PrimOp::MulI | PrimOp::QuotI | PrimOp::RemI => {
            (vec![ih(), ih()], ih())
        }
        PrimOp::NegI => (vec![ih()], ih()),
        PrimOp::EqI | PrimOp::NeI | PrimOp::LtI | PrimOp::LeI | PrimOp::GtI | PrimOp::GeI => {
            (vec![ih(), ih()], ih())
        }
        PrimOp::AddD | PrimOp::SubD | PrimOp::MulD | PrimOp::DivD => (vec![dh(), dh()], dh()),
        PrimOp::NegD => (vec![dh()], dh()),
        PrimOp::EqD | PrimOp::LtD | PrimOp::LeD => (vec![dh(), dh()], ih()),
        PrimOp::AddF | PrimOp::SubF | PrimOp::MulF | PrimOp::DivF => (vec![fh(), fh()], fh()),
        PrimOp::IntToDouble => (vec![ih()], dh()),
        PrimOp::DoubleToInt => (vec![dh()], ih()),
        PrimOp::IntToFloat => (vec![ih()], fh()),
        PrimOp::FloatToDouble => (vec![fh()], dh()),
        PrimOp::CharToInt => (vec![ch()], ih()),
        PrimOp::IntToChar => (vec![ih()], ch()),
        PrimOp::EqC => (vec![ch(), ch()], ih()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_kinds_match_figure1() {
        let b = builtins();
        assert_eq!(b.int_hash.kind, Kind::of_rep(Rep::Int));
        assert_eq!(b.byte_array_hash.kind, Kind::of_rep(Rep::Unlifted));
        assert_eq!(b.int.kind, Kind::TYPE);
        // Array# :: Type -> TYPE UnliftedRep (§7.1).
        assert_eq!(
            b.array_hash.kind,
            Kind::arrow(Kind::TYPE, Kind::of_rep(Rep::Unlifted))
        );
    }

    #[test]
    fn int_is_an_ordinary_adt_over_int_hash() {
        let b = builtins();
        assert_eq!(b.i_hash.field_types, vec![Type::con0(&b.int_hash)]);
        assert_eq!(b.i_hash.result, Type::con0(&b.int));
    }

    #[test]
    fn bool_tags_are_stable() {
        let b = builtins();
        assert_eq!(b.false_con.tag, 0);
        assert_eq!(b.true_con.tag, 1);
    }

    #[test]
    fn boxed_pair_fields_are_lifted() {
        // §2.3: all elements of a boxed tuple must also be boxed.
        let b = builtins();
        assert_eq!(b.pair_con.field_types.len(), 2);
        assert!(matches!(b.pair_con.field_types[0], Type::Var(_)));
        // Its parameters are Type-kinded (lifted), so fields are lifted.
        for p in &b.pair_con.params {
            match p {
                TyParam::Ty(_, k) => assert_eq!(*k, Kind::TYPE),
                TyParam::Rep(_) => panic!("boxed pair has no rep params"),
            }
        }
    }

    #[test]
    fn prim_signatures_are_well_formed() {
        let b = builtins();
        for op in [
            PrimOp::AddI,
            PrimOp::SubI,
            PrimOp::LtI,
            PrimOp::AddD,
            PrimOp::EqD,
            PrimOp::IntToDouble,
            PrimOp::CharToInt,
        ] {
            let (args, _result) = prim_signature(op, &b);
            assert_eq!(args.len(), op.arity());
        }
    }
}
