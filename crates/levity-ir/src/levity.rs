//! The levity-polymorphism checks of §5.1, run after type checking.
//!
//! GHC "can only check for bad levity polymorphism after type checking is
//! complete … we thus do the levity polymorphism checks in the desugarer"
//! (§8.2). This module is that pass. It enforces:
//!
//! 1. **No levity-polymorphic binders** — every λ-, `let`- and
//!    case-pattern binder must have a type whose kind is fixed and free
//!    of representation variables.
//! 2. **No levity-polymorphic function arguments** — every application
//!    argument's type must likewise have a concrete kind, because
//!    arguments are passed in registers of a known class.
//!
//! Types that merely *mention* levity polymorphism (like `error`'s result
//! or `($)`'s return type) are fine; only *moving or storing* a value at
//! an abstract representation is rejected (§5.1's fundamental
//! requirement (*)).

use levity_core::diag::{Diagnostic, Diagnostics, ErrorCode, Span};
use levity_core::kind::Kind;
use levity_core::symbol::Symbol;

use crate::terms::{CoreAlt, CoreExpr, Program, TopBind};
use crate::typecheck::{kind_of, type_of, Scope, ScopeEntry, TypeEnv};
use crate::types::Type;

/// Checks one binder type; returns a diagnostic when its kind mentions a
/// representation variable.
fn check_binder(env: &TypeEnv, scope: &mut Scope, who: Symbol, ty: &Type, diags: &mut Diagnostics) {
    match kind_of(env, scope, ty) {
        Ok(kind) => {
            if kind.is_levity_polymorphic() {
                diags.push(levity_binder_error(who, ty, &kind));
            }
        }
        Err(_) => {
            // Type errors are the type checker's to report.
        }
    }
}

fn levity_binder_error(who: Symbol, ty: &Type, kind: &Kind) -> Diagnostic {
    Diagnostic::error(
        ErrorCode::LevityPolymorphicBinder,
        format!("the binder `{who}` has a levity-polymorphic type `{ty}` (of kind `{kind}`)"),
        Span::SYNTHETIC,
    )
    .with_note(
        "a bound variable must have a fixed runtime representation (section 5.1, restriction 1)",
    )
}

fn levity_argument_error(ty: &Type, kind: &Kind) -> Diagnostic {
    Diagnostic::error(
        ErrorCode::LevityPolymorphicArgument,
        format!("a function argument has levity-polymorphic type `{ty}` (of kind `{kind}`)"),
        Span::SYNTHETIC,
    )
    .with_note(
        "arguments are passed in registers, whose class must be known (section 5.1, restriction 2)",
    )
}

/// Walks an expression, reporting every §5.1 violation.
pub fn check_expr(env: &TypeEnv, scope: &mut Scope, e: &CoreExpr, diags: &mut Diagnostics) {
    match e {
        CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => {}
        CoreExpr::App(f, a) => {
            check_expr(env, scope, f, diags);
            check_expr(env, scope, a, diags);
            // Restriction 2: the argument's representation must be known.
            if let Ok(arg_ty) = type_of(env, scope, a) {
                if let Ok(kind) = kind_of(env, scope, &arg_ty) {
                    if kind.is_levity_polymorphic() {
                        diags.push(levity_argument_error(&arg_ty, &kind));
                    }
                }
            }
        }
        CoreExpr::TyApp(f, _) | CoreExpr::RepApp(f, _) => check_expr(env, scope, f, diags),
        CoreExpr::Lam(x, ty, body) => {
            // Restriction 1 at λ.
            check_binder(env, scope, *x, ty, diags);
            scope.push(*x, ScopeEntry::Term(ty.clone()));
            check_expr(env, scope, body, diags);
            scope.pop();
        }
        CoreExpr::TyLam(a, k, body) => {
            scope.push(*a, ScopeEntry::TyVar(k.clone()));
            check_expr(env, scope, body, diags);
            scope.pop();
        }
        CoreExpr::RepLam(r, body) => {
            scope.push(*r, ScopeEntry::RepVar);
            check_expr(env, scope, body, diags);
            scope.pop();
        }
        CoreExpr::Let(_, x, ty, rhs, body) => {
            // Restriction 1 at let.
            check_binder(env, scope, *x, ty, diags);
            scope.push(*x, ScopeEntry::Term(ty.clone()));
            check_expr(env, scope, rhs, diags);
            check_expr(env, scope, body, diags);
            scope.pop();
        }
        CoreExpr::Case(scrut, alts) => {
            check_expr(env, scope, scrut, diags);
            // The scrutinee itself is evaluated into a register: its
            // representation must be known too.
            if let Ok(scrut_ty) = type_of(env, scope, scrut) {
                if let Ok(kind) = kind_of(env, scope, &scrut_ty) {
                    if kind.is_levity_polymorphic() {
                        diags.push(levity_argument_error(&scrut_ty, &kind));
                    }
                }
            }
            for alt in alts {
                match alt {
                    CoreAlt::Con { binders, rhs, .. } | CoreAlt::Tuple { binders, rhs } => {
                        for (x, t) in binders {
                            // Restriction 1 at case patterns.
                            check_binder(env, scope, *x, t, diags);
                            scope.push(*x, ScopeEntry::Term(t.clone()));
                        }
                        check_expr(env, scope, rhs, diags);
                        for _ in binders {
                            scope.pop();
                        }
                    }
                    CoreAlt::Lit { rhs, .. } => check_expr(env, scope, rhs, diags),
                    CoreAlt::Default { binder, rhs } => {
                        if let Some((x, t)) = binder {
                            // Restriction 1 at the default binder too.
                            check_binder(env, scope, *x, t, diags);
                            scope.push(*x, ScopeEntry::Term(t.clone()));
                            check_expr(env, scope, rhs, diags);
                            scope.pop();
                        } else {
                            check_expr(env, scope, rhs, diags);
                        }
                    }
                }
            }
        }
        CoreExpr::Con(_, _, fields) => {
            for field in fields {
                check_expr(env, scope, field, diags);
                // Constructor fields are stored in the heap: restriction
                // on storing applies just as to arguments.
                if let Ok(ty) = type_of(env, scope, field) {
                    if let Ok(kind) = kind_of(env, scope, &ty) {
                        if kind.is_levity_polymorphic() {
                            diags.push(levity_argument_error(&ty, &kind));
                        }
                    }
                }
            }
        }
        CoreExpr::Prim(_, args) | CoreExpr::Tuple(args) => {
            for a in args {
                check_expr(env, scope, a, diags);
                if let Ok(ty) = type_of(env, scope, a) {
                    if let Ok(kind) = kind_of(env, scope, &ty) {
                        if kind.is_levity_polymorphic() {
                            diags.push(levity_argument_error(&ty, &kind));
                        }
                    }
                }
            }
        }
    }
}

/// Checks one top-level binding.
pub fn check_binding(env: &TypeEnv, bind: &TopBind, diags: &mut Diagnostics) {
    let mut scope = Scope::new();
    check_expr(env, &mut scope, &bind.expr, diags);
}

/// Checks a whole (already type-checked) program; returns all levity
/// diagnostics.
pub fn check_program_levity(env: &TypeEnv, prog: &Program) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for bind in &prog.bindings {
        check_binding(env, bind, &mut diags);
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use levity_core::kind::Kind;

    fn env() -> TypeEnv {
        TypeEnv::new()
    }

    /// `abs1 = abs` vs `abs2 x = abs x` (§7.3): the η-expanded version
    /// binds a levity-polymorphic `x` and must be rejected, while the
    /// direct alias is fine. Here `abs` is modeled as a global with the
    /// levity-polymorphic type `forall (r :: Rep) (a :: TYPE r). Dict a -> a -> a`
    /// simplified to `forall r (a :: TYPE r). a -> a` for the check.
    fn abs_type() -> Type {
        let r: Symbol = "r".into();
        let a: Symbol = "a".into();
        Type::forall_rep(
            r,
            Type::forall_ty(
                a,
                Kind::of_rep_var(r),
                Type::fun(Type::Var(a), Type::Var(a)),
            ),
        )
    }

    #[test]
    fn eta_contracted_alias_is_accepted() {
        // abs1 = /\r a. abs @r @a — no term binders at all.
        let mut env = env();
        env.define_global("abs", abs_type());
        let r: Symbol = "r".into();
        let a: Symbol = "a".into();
        let abs1 = CoreExpr::rep_lam(
            r,
            CoreExpr::ty_lam(
                a,
                Kind::of_rep_var(r),
                CoreExpr::ty_app(
                    CoreExpr::rep_app(
                        CoreExpr::Global("abs".into()),
                        levity_core::rep::RepTy::Var(r),
                    ),
                    Type::Var(a),
                ),
            ),
        );
        let mut diags = Diagnostics::new();
        check_expr(&env, &mut Scope::new(), &abs1, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
    }

    #[test]
    fn eta_expanded_version_is_rejected() {
        // abs2 = /\r a. \(x :: a) -> abs @r @a x — binds levity-poly x.
        let mut env = env();
        env.define_global("abs", abs_type());
        let r: Symbol = "r".into();
        let a: Symbol = "a".into();
        let abs2 = CoreExpr::rep_lam(
            r,
            CoreExpr::ty_lam(
                a,
                Kind::of_rep_var(r),
                CoreExpr::lam(
                    "x",
                    Type::Var(a),
                    CoreExpr::app(
                        CoreExpr::ty_app(
                            CoreExpr::rep_app(
                                CoreExpr::Global("abs".into()),
                                levity_core::rep::RepTy::Var(r),
                            ),
                            Type::Var(a),
                        ),
                        CoreExpr::Var("x".into()),
                    ),
                ),
            ),
        );
        let mut diags = Diagnostics::new();
        check_expr(&env, &mut Scope::new(), &abs2, &mut diags);
        assert!(diags.has_errors());
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&ErrorCode::LevityPolymorphicBinder),
            "{codes:?}"
        );
        assert!(
            codes.contains(&ErrorCode::LevityPolymorphicArgument),
            "{codes:?}"
        );
    }

    #[test]
    fn my_error_is_accepted() {
        // myError: binds only the lifted message; result is levity-poly.
        let env = env();
        let r: Symbol = "r".into();
        let a: Symbol = "a".into();
        let e = CoreExpr::rep_lam(
            r,
            CoreExpr::ty_lam(
                a,
                Kind::of_rep_var(r),
                CoreExpr::lam(
                    "s",
                    Type::con0(&env.builtins.int),
                    CoreExpr::Error(Type::Var(a), "boom".to_owned()),
                ),
            ),
        );
        let mut diags = Diagnostics::new();
        check_expr(&env, &mut Scope::new(), &e, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
    }

    #[test]
    fn levity_polymorphic_let_is_rejected() {
        let env = env();
        let r: Symbol = "r".into();
        let a: Symbol = "a".into();
        let e = CoreExpr::rep_lam(
            r,
            CoreExpr::ty_lam(
                a,
                Kind::of_rep_var(r),
                CoreExpr::let_(
                    "x",
                    Type::Var(a),
                    CoreExpr::Error(Type::Var(a), "never".to_owned()),
                    CoreExpr::Var("x".into()),
                ),
            ),
        );
        let mut diags = Diagnostics::new();
        check_expr(&env, &mut Scope::new(), &e, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.code == ErrorCode::LevityPolymorphicBinder));
    }

    #[test]
    fn concrete_unboxed_binders_are_fine() {
        // \(x :: Int#) -> x — unboxed but concrete: always allowed.
        let env = env();
        let e = CoreExpr::lam(
            "x",
            Type::con0(&env.builtins.int_hash),
            CoreExpr::Var("x".into()),
        );
        let mut diags = Diagnostics::new();
        check_expr(&env, &mut Scope::new(), &e, &mut diags);
        assert!(!diags.has_errors());
    }
}
