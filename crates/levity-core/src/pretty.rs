//! A Wadler-style pretty printer, plus the printing policy of §8.1.
//!
//! The paper reports that, after `($)` was generalized to
//!
//! ```text
//! ($) :: forall (r :: Rep) (a :: Type) (b :: TYPE r). (a -> b) -> a -> b
//! ```
//!
//! users complained that the type was "far too complex" for beginners, so
//! GHC *defaults all type variables of kind `Rep` to `LiftedRep` during
//! pretty printing* unless `-fprint-explicit-runtime-reps` is given. That
//! policy is captured here by [`PrintOptions::explicit_runtime_reps`];
//! the actual defaulting of a printed type is implemented by the type
//! printers in `levity-ir`, driven by these options.
//!
//! # Examples
//!
//! ```
//! use levity_core::pretty::{Doc, PrintOptions};
//!
//! let doc = Doc::text("forall a.")
//!     .append(Doc::line())
//!     .append(Doc::text("a -> a"))
//!     .group();
//! assert_eq!(doc.render(80), "forall a. a -> a");
//! assert_eq!(doc.render(10), "forall a.\na -> a");
//! # let _ = PrintOptions::default();
//! ```

use std::fmt;
use std::sync::Arc;

/// Options controlling how types are rendered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrintOptions {
    /// Target line width for the layout algorithm.
    pub width: usize,
    /// Mirror of GHC's `-fprint-explicit-runtime-reps` (§8.1): when
    /// `false` (the default), type variables of kind `Rep` are defaulted
    /// to `LiftedRep` before printing, so `($)` shows its beginner-friendly
    /// type; when `true`, the full levity-polymorphic type is shown.
    pub explicit_runtime_reps: bool,
}

impl Default for PrintOptions {
    fn default() -> Self {
        PrintOptions {
            width: 80,
            explicit_runtime_reps: false,
        }
    }
}

impl PrintOptions {
    /// Options matching `-fprint-explicit-runtime-reps`.
    pub fn explicit() -> Self {
        PrintOptions {
            explicit_runtime_reps: true,
            ..PrintOptions::default()
        }
    }
}

/// A pretty-printing document.
///
/// This is the classic algebra: documents are built with
/// [`Doc::text`], [`Doc::line`], [`Doc::nest`], [`Doc::append`] and
/// [`Doc::group`], then rendered to a width with [`Doc::render`]. A
/// grouped document prints on one line if it fits, otherwise its lines
/// break.
#[derive(Clone, Debug)]
pub struct Doc(Arc<DocNode>);

#[derive(Debug)]
enum DocNode {
    Nil,
    Text(String),
    /// A newline that renders as `" "` when flattened by a group.
    Line,
    /// A newline that renders as `""` when flattened by a group.
    SoftBreak,
    Nest(isize, Doc),
    Concat(Doc, Doc),
    Group(Doc),
}

impl Doc {
    /// The empty document.
    pub fn nil() -> Doc {
        Doc(Arc::new(DocNode::Nil))
    }

    /// A literal string (must not contain newlines).
    pub fn text(s: impl Into<String>) -> Doc {
        Doc(Arc::new(DocNode::Text(s.into())))
    }

    /// A line break, rendered as a single space when the enclosing group
    /// fits on one line.
    pub fn line() -> Doc {
        Doc(Arc::new(DocNode::Line))
    }

    /// A line break, rendered as nothing when the enclosing group fits on
    /// one line.
    pub fn soft_break() -> Doc {
        Doc(Arc::new(DocNode::SoftBreak))
    }

    /// Increases the indentation of line breaks inside `self` by `n`.
    pub fn nest(self, n: isize) -> Doc {
        Doc(Arc::new(DocNode::Nest(n, self)))
    }

    /// Concatenates two documents.
    pub fn append(self, other: Doc) -> Doc {
        Doc(Arc::new(DocNode::Concat(self, other)))
    }

    /// Marks `self` as a group: it prints on one line if it fits.
    pub fn group(self) -> Doc {
        Doc(Arc::new(DocNode::Group(self)))
    }

    /// Joins documents with a separator.
    pub fn join(docs: impl IntoIterator<Item = Doc>, sep: Doc) -> Doc {
        let mut out = Doc::nil();
        for (i, d) in docs.into_iter().enumerate() {
            if i > 0 {
                out = out.append(sep.clone());
            }
            out = out.append(d);
        }
        out
    }

    /// Renders to a string targeting the given line width.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let mut fits_cache = Vec::new();
        let mut work = vec![(0isize, Mode::Break, self.clone())];
        let mut column = 0usize;
        while let Some((indent, mode, doc)) = work.pop() {
            match &*doc.0 {
                DocNode::Nil => {}
                DocNode::Text(s) => {
                    out.push_str(s);
                    column += s.chars().count();
                }
                DocNode::Line => match mode {
                    Mode::Flat => {
                        out.push(' ');
                        column += 1;
                    }
                    Mode::Break => {
                        out.push('\n');
                        for _ in 0..indent.max(0) {
                            out.push(' ');
                        }
                        column = indent.max(0) as usize;
                    }
                },
                DocNode::SoftBreak => match mode {
                    Mode::Flat => {}
                    Mode::Break => {
                        out.push('\n');
                        for _ in 0..indent.max(0) {
                            out.push(' ');
                        }
                        column = indent.max(0) as usize;
                    }
                },
                DocNode::Nest(n, inner) => {
                    work.push((indent + n, mode, inner.clone()));
                }
                DocNode::Concat(a, b) => {
                    work.push((indent, mode, b.clone()));
                    work.push((indent, mode, a.clone()));
                }
                DocNode::Group(inner) => {
                    fits_cache.clear();
                    let chosen = if fits(width.saturating_sub(column), inner, &mut fits_cache) {
                        Mode::Flat
                    } else {
                        Mode::Break
                    };
                    work.push((indent, chosen, inner.clone()));
                }
            }
        }
        out
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Flat,
    Break,
}

/// Would `doc`, rendered flat, fit in `budget` columns?
fn fits(budget: usize, doc: &Doc, stack: &mut Vec<Doc>) -> bool {
    stack.clear();
    stack.push(doc.clone());
    let mut remaining = budget as isize;
    while let Some(d) = stack.pop() {
        if remaining < 0 {
            return false;
        }
        match &*d.0 {
            DocNode::Nil => {}
            DocNode::Text(s) => remaining -= s.chars().count() as isize,
            DocNode::Line => remaining -= 1,
            DocNode::SoftBreak => {}
            DocNode::Nest(_, inner) | DocNode::Group(inner) => stack.push(inner.clone()),
            DocNode::Concat(a, b) => {
                stack.push(b.clone());
                stack.push(a.clone());
            }
        }
    }
    remaining >= 0
}

impl fmt::Display for Doc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(80))
    }
}

/// Things that can render themselves as a [`Doc`] under [`PrintOptions`].
pub trait Pretty {
    /// Builds the document for `self`.
    fn pretty(&self, opts: &PrintOptions) -> Doc;

    /// Convenience: render with the given options at their width.
    fn render_pretty(&self, opts: &PrintOptions) -> String {
        self.pretty(opts).render(opts.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_renders_verbatim() {
        assert_eq!(Doc::text("hello").render(80), "hello");
    }

    #[test]
    fn group_fits_on_one_line() {
        let d = Doc::text("a")
            .append(Doc::line())
            .append(Doc::text("b"))
            .group();
        assert_eq!(d.render(80), "a b");
    }

    #[test]
    fn group_breaks_when_too_wide() {
        let d = Doc::text("aaaa")
            .append(Doc::line())
            .append(Doc::text("bbbb"))
            .group();
        assert_eq!(d.render(5), "aaaa\nbbbb");
    }

    #[test]
    fn nesting_indents_broken_lines() {
        let d = Doc::text("case x of")
            .append(Doc::line().append(Doc::text("alt")).nest(2))
            .group();
        assert_eq!(d.render(5), "case x of\n  alt");
    }

    #[test]
    fn soft_break_disappears_when_flat() {
        let d = Doc::text("f")
            .append(Doc::soft_break())
            .append(Doc::text("x"))
            .group();
        assert_eq!(d.render(80), "fx");
        assert_eq!(d.render(1), "f\nx");
    }

    #[test]
    fn join_inserts_separators() {
        let d = Doc::join(["a", "b", "c"].into_iter().map(Doc::text), Doc::text(", "));
        assert_eq!(d.render(80), "a, b, c");
    }

    #[test]
    fn default_options_hide_runtime_reps() {
        // The §8.1 default: beginners see `($) :: (a -> b) -> a -> b`.
        assert!(!PrintOptions::default().explicit_runtime_reps);
        assert!(PrintOptions::explicit().explicit_runtime_reps);
    }

    #[test]
    fn nested_groups_break_independently() {
        let inner = Doc::text("bb")
            .append(Doc::line())
            .append(Doc::text("cc"))
            .group();
        let outer = Doc::text("aaaaaa")
            .append(Doc::line())
            .append(inner)
            .group();
        // Outer breaks; inner still fits on its own line.
        assert_eq!(outer.render(8), "aaaaaa\nbb cc");
    }
}
