//! Foundations for the levity-polymorphism reproduction.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! workspace, reproducing the core definitions of *Levity Polymorphism*
//! (Eisenberg & Peyton Jones, PLDI 2017):
//!
//! * [`rep`] — the `Rep` datatype of §4.1 (`LiftedRep`, `IntRep`,
//!   `TupleRep [..]`, ...), representation expressions with variables, and
//!   the flattening from representations to machine register [`rep::Slot`]s
//!   ("kinds are calling conventions");
//! * [`kind`] — kinds `TYPE ρ`, with `Type = TYPE LiftedRep` (§4.1, §4.4);
//! * [`symbol`] — interned names and fresh-name supplies;
//! * [`diag`] — spans and diagnostics, including stable error codes for the
//!   two levity restrictions of §5.1;
//! * [`pretty`] — a pretty printer and the `-fprint-explicit-runtime-reps`
//!   policy of §8.1.
//!
//! # Example: kinds dictate calling conventions
//!
//! ```
//! use levity_core::kind::Kind;
//! use levity_core::rep::{Rep, Slot};
//!
//! // Int and Bool share a kind, hence a calling convention (§4.1)...
//! let int_kind = Kind::TYPE;
//! let bool_kind = Kind::TYPE;
//! assert_eq!(int_kind, bool_kind);
//! assert_eq!(int_kind.concrete_rep().unwrap().slots(), vec![Slot::Ptr]);
//!
//! // ...but Int# belongs to a different kind, with a different convention.
//! let int_hash_kind = Kind::of_rep(Rep::Int);
//! assert_ne!(int_kind, int_hash_kind);
//! assert_eq!(int_hash_kind.concrete_rep().unwrap().slots(), vec![Slot::Word]);
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod kind;
pub mod pretty;
pub mod rep;
pub mod symbol;

pub use diag::{Diagnostic, Diagnostics, ErrorCode, Severity, Span};
pub use kind::Kind;
pub use pretty::{Doc, Pretty, PrintOptions};
pub use rep::{Classification, Rep, RepTy, Slot};
pub use symbol::{NameSupply, Symbol};
