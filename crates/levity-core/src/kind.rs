//! Kinds: `TYPE ρ` and friends (§4.1, §4.4).
//!
//! In the paper's design only `TYPE` is primitive; `Type` is the synonym
//! `TYPE LiftedRep`. Kinds classify types, and — the paper's slogan — *kinds
//! are calling conventions*: the kind of a type determines the registers
//! used for its values.
//!
//! Beyond `TYPE ρ` we need arrow kinds for type constructors (`Maybe ::
//! Type -> Type`, `Array# :: Type -> TYPE UnliftedRep`, §7.1) and a kind
//! for representation variables themselves (`r :: Rep`), since `Rep` is an
//! ordinary datatype promoted to the kind level (§4.1).
//!
//! # Examples
//!
//! ```
//! use levity_core::kind::Kind;
//! use levity_core::rep::{Rep, RepTy};
//!
//! let ty = Kind::TYPE;                       // Type = TYPE LiftedRep
//! assert_eq!(ty.to_string(), "Type");
//!
//! let int_hash = Kind::of_rep(Rep::Int);     // TYPE IntRep
//! assert_eq!(int_hash.to_string(), "TYPE IntRep");
//! assert!(int_hash.concrete_rep().is_some());
//! ```

use std::fmt;

use crate::rep::{Rep, RepTy};
use crate::symbol::Symbol;

/// A kind.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `TYPE ρ`: the kind of types whose values are represented per `ρ`.
    Type(RepTy),
    /// `κ₁ -> κ₂`: the kind of type constructors.
    Arrow(Box<Kind>, Box<Kind>),
    /// `Rep`: the kind of representation variables (`r :: Rep`). In the
    /// paper's stratified calculus rep variables are a separate syntactic
    /// class; in the full IR we follow GHC and give them this kind.
    Rep,
}

impl Kind {
    /// `Type`, i.e. `TYPE LiftedRep` — the kind of ordinary boxed, lifted
    /// types.
    pub const TYPE: Kind = Kind::Type(RepTy::LIFTED);

    /// `TYPE ρ` for a concrete representation.
    pub fn of_rep(rep: Rep) -> Kind {
        Kind::Type(RepTy::Concrete(rep))
    }

    /// `TYPE r` for a representation variable.
    pub fn of_rep_var(var: Symbol) -> Kind {
        Kind::Type(RepTy::Var(var))
    }

    /// `κ₁ -> κ₂`.
    pub fn arrow(from: Kind, to: Kind) -> Kind {
        Kind::Arrow(Box::new(from), Box::new(to))
    }

    /// If this kind is `TYPE ρ` with `ρ` fully concrete, the concrete
    /// representation. This is the question the code generator asks; a
    /// `None` answer on a binder is exactly what the §5.1 restrictions
    /// forbid.
    pub fn concrete_rep(&self) -> Option<Rep> {
        match self {
            Kind::Type(rep) => rep.as_concrete(),
            Kind::Arrow(..) | Kind::Rep => None,
        }
    }

    /// Is this `TYPE ρ` for *some* ρ (concrete or not)? Only such kinds
    /// classify types of values.
    pub fn classifies_values(&self) -> bool {
        matches!(self, Kind::Type(_))
    }

    /// Does this kind mention any representation variable? A binder whose
    /// type has such a kind is levity-polymorphic and must be rejected
    /// (§5.1 restriction 1).
    pub fn is_levity_polymorphic(&self) -> bool {
        match self {
            Kind::Type(rep) => rep.has_vars(),
            Kind::Arrow(a, b) => a.is_levity_polymorphic() || b.is_levity_polymorphic(),
            Kind::Rep => false,
        }
    }

    /// All representation variables free in this kind.
    pub fn free_rep_vars(&self) -> Vec<Symbol> {
        match self {
            Kind::Type(rep) => rep.free_vars(),
            Kind::Arrow(a, b) => {
                let mut vars = a.free_rep_vars();
                for v in b.free_rep_vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                vars
            }
            Kind::Rep => Vec::new(),
        }
    }

    /// Substitutes a representation for a representation variable.
    pub fn substitute_rep(&self, var: Symbol, rep: &RepTy) -> Kind {
        match self {
            Kind::Type(r) => Kind::Type(r.substitute(var, rep)),
            Kind::Arrow(a, b) => {
                Kind::arrow(a.substitute_rep(var, rep), b.substitute_rep(var, rep))
            }
            Kind::Rep => Kind::Rep,
        }
    }

    /// The result kind after applying a constructor of this kind to one
    /// argument, if it is an arrow.
    pub fn apply_one(&self) -> Option<&Kind> {
        match self {
            Kind::Arrow(_, to) => Some(to),
            _ => None,
        }
    }

    /// Number of arguments before reaching a non-arrow kind.
    pub fn arity(&self) -> usize {
        let mut k = self;
        let mut n = 0;
        while let Kind::Arrow(_, to) = k {
            n += 1;
            k = to;
        }
        n
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Type(rep) if *rep == RepTy::LIFTED => f.write_str("Type"),
            Kind::Type(rep) => write!(f, "TYPE {}", ParenRep(rep)),
            Kind::Arrow(a, b) => {
                if matches!(**a, Kind::Arrow(..)) {
                    write!(f, "({a}) -> {b}")
                } else {
                    write!(f, "{a} -> {b}")
                }
            }
            Kind::Rep => f.write_str("Rep"),
        }
    }
}

/// Wraps compound rep expressions in parentheses when shown after `TYPE`.
struct ParenRep<'a>(&'a RepTy);

impl fmt::Display for ParenRep<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            RepTy::Tuple(_) | RepTy::Sum(_) => write!(f, "({})", self.0),
            RepTy::Concrete(Rep::Tuple(_) | Rep::Sum(_)) => write!(f, "({})", self.0),
            _ => write!(f, "{}", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_is_type_lifted_rep() {
        // "type Type = TYPE LiftedRep" (§4.1).
        assert_eq!(Kind::TYPE, Kind::of_rep(Rep::Lifted));
        assert_eq!(Kind::TYPE.concrete_rep(), Some(Rep::Lifted));
    }

    #[test]
    fn display_sugar() {
        assert_eq!(Kind::TYPE.to_string(), "Type");
        assert_eq!(Kind::of_rep(Rep::Float).to_string(), "TYPE FloatRep");
        assert_eq!(
            Kind::of_rep(Rep::Tuple(vec![Rep::Int, Rep::Lifted])).to_string(),
            "TYPE (TupleRep '[IntRep, LiftedRep])"
        );
        assert_eq!(
            Kind::arrow(Kind::TYPE, Kind::TYPE).to_string(),
            "Type -> Type"
        );
        assert_eq!(
            Kind::arrow(Kind::arrow(Kind::TYPE, Kind::TYPE), Kind::TYPE).to_string(),
            "(Type -> Type) -> Type"
        );
    }

    #[test]
    fn levity_polymorphic_kinds_are_detected() {
        let r = Symbol::intern("r");
        let k = Kind::of_rep_var(r);
        assert!(k.is_levity_polymorphic());
        assert_eq!(k.concrete_rep(), None);
        assert_eq!(k.free_rep_vars(), vec![r]);

        let mono = k.substitute_rep(r, &RepTy::Concrete(Rep::Int));
        assert!(!mono.is_levity_polymorphic());
        assert_eq!(mono.concrete_rep(), Some(Rep::Int));
    }

    #[test]
    fn arrow_kinds_do_not_classify_values() {
        let maybe = Kind::arrow(Kind::TYPE, Kind::TYPE);
        assert!(!maybe.classifies_values());
        assert_eq!(maybe.concrete_rep(), None);
        assert_eq!(maybe.arity(), 1);
    }

    #[test]
    fn array_hash_kind() {
        // Array# :: Type -> TYPE UnliftedRep (§7.1).
        let array = Kind::arrow(Kind::TYPE, Kind::of_rep(Rep::Unlifted));
        assert_eq!(array.to_string(), "Type -> TYPE UnliftedRep");
        assert_eq!(
            array.apply_one().unwrap().concrete_rep(),
            Some(Rep::Unlifted)
        );
    }

    #[test]
    fn rep_kind_is_not_levity_polymorphic() {
        // `r :: Rep` itself is fine; footnote 9: the kind polymorphism in
        // `forall k (a :: k). Proxy k -> Int` is fine because the kind of
        // the *type* is Type.
        assert!(!Kind::Rep.is_levity_polymorphic());
    }

    #[test]
    fn substitution_in_arrow_kinds() {
        let r = Symbol::intern("r");
        let k = Kind::arrow(Kind::TYPE, Kind::of_rep_var(r));
        assert!(k.is_levity_polymorphic());
        let k2 = k.substitute_rep(r, &RepTy::Concrete(Rep::Unlifted));
        assert_eq!(k2.to_string(), "Type -> TYPE UnliftedRep");
    }
}
