//! Interned strings.
//!
//! Compilers compare and hash names constantly; interning makes every name a
//! `Copy` integer. The interner is a process-global table, so [`Symbol`]s
//! created anywhere in the workspace are interchangeable.
//!
//! # Examples
//!
//! ```
//! use levity_core::symbol::Symbol;
//!
//! let a = Symbol::intern("sumTo#");
//! let b = Symbol::intern("sumTo#");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "sumTo#");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two symbols are equal exactly when the strings they intern are equal.
/// Symbols are cheap to copy, compare and hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    /// Map from string to index in `strings`.
    table: HashMap<&'static str, u32>,
    /// All interned strings; leaked so `as_str` can hand out `&'static str`.
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            table: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&ix) = self.table.get(s) {
            return ix;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let ix = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(leaked);
        self.table.insert(leaked, ix);
        ix
    }
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::new()))
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    pub fn intern(s: &str) -> Symbol {
        Symbol(interner().lock().expect("interner poisoned").intern(s))
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner poisoned").strings[self.0 as usize]
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

/// A supply of fresh names, used wherever the compiler must invent a
/// variable (unification variables, ANF temporaries, dictionary binders).
///
/// Names are formed `prefix ++ "$" ++ counter`, a shape the surface lexer
/// rejects, so generated names can never capture user-written ones.
///
/// # Examples
///
/// ```
/// use levity_core::symbol::NameSupply;
///
/// let mut supply = NameSupply::new();
/// let a = supply.fresh("p");
/// let b = supply.fresh("p");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("p$"));
/// ```
#[derive(Debug, Default)]
pub struct NameSupply {
    next: u64,
}

impl NameSupply {
    /// Creates a supply starting at zero.
    pub fn new() -> Self {
        NameSupply { next: 0 }
    }

    /// Returns a fresh symbol with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        let n = self.next;
        self.next += 1;
        Symbol::intern(&format!("{prefix}${n}"))
    }

    /// Number of names handed out so far.
    pub fn names_issued(&self) -> u64 {
        self.next
    }
}

/// A `HashMap` keyed by [`Symbol`] with a multiplicative hasher.
///
/// A symbol is already a dense interner index; running it through
/// SipHash costs more than the table probe it guards. Fibonacci
/// multiplicative hashing scrambles the low bits well enough for the
/// std table and keeps hot lookups (e.g. a global fetched once per loop
/// iteration in the reference machine) to a multiply and a mask.
pub type SymbolMap<V> = HashMap<Symbol, V, BuildSymbolHasher>;

/// Build-side of the [`SymbolMap`] hasher; zero-sized.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildSymbolHasher;

impl std::hash::BuildHasher for BuildSymbolHasher {
    type Hasher = SymbolHasher;

    fn build_hasher(&self) -> SymbolHasher {
        SymbolHasher(0)
    }
}

/// Hashes the symbol's `u32` index by Fibonacci multiplication. Only
/// meant for symbol keys: other write methods are unimplemented so a
/// misuse fails loudly rather than hashing weakly.
#[derive(Debug)]
pub struct SymbolHasher(u64);

impl std::hash::Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write(&mut self, _bytes: &[u8]) {
        unimplemented!("SymbolHasher only hashes Symbol (u32) keys");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("x");
        let b = Symbol::intern("x");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "x");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn display_shows_string() {
        assert_eq!(Symbol::intern("plusInt#").to_string(), "plusInt#");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Symbol::intern("d")).is_empty());
    }

    #[test]
    fn fresh_names_never_collide_with_source_names() {
        let mut supply = NameSupply::new();
        let s = supply.fresh("x");
        // `$` is not a valid identifier character in the surface language.
        assert!(s.as_str().contains('$'));
    }

    #[test]
    fn fresh_names_are_distinct() {
        let mut supply = NameSupply::new();
        let a = supply.fresh("t");
        let b = supply.fresh("t");
        let c = supply.fresh("u");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(supply.names_issued(), 3);
    }

    #[test]
    fn symbols_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Symbol>();
    }

    #[test]
    fn from_str_and_string() {
        let a: Symbol = "abc".into();
        let b: Symbol = String::from("abc").into();
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_is_stable_per_symbol() {
        let a = Symbol::intern("stable-a");
        let b = Symbol::intern("stable-b");
        // Ordering is by intern index, not lexicographic; it only needs to be
        // a strict total order usable for map keys.
        assert!(a < b || b < a);
    }
}
