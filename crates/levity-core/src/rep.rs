//! Runtime representations: the `Rep` datatype of §4.1 and its register
//! model.
//!
//! The paper's central move is to make the *kind* of a type dictate the
//! *runtime representation* — and therefore the calling convention — of its
//! values, via a primitive `TYPE :: Rep -> Type`. This module defines:
//!
//! * [`Rep`]: fully concrete runtime representations (`LiftedRep`,
//!   `IntRep`, `TupleRep [..]`, ...), exactly the promoted datatype of §4.1
//!   plus the unboxed-sum extension GHC later added;
//! * [`RepTy`]: type-level representation *expressions*, which may mention
//!   representation variables `r` (the `ρ` of Figure 2, generalized to the
//!   full `Rep` grammar);
//! * [`Slot`]: the machine's register classes, and the flattening from
//!   representations to register slots (§2.3: tuple nesting is
//!   computationally irrelevant).
//!
//! # Examples
//!
//! ```
//! use levity_core::rep::{Rep, Slot};
//!
//! // (# Int#, Bool #) is passed in an integer register and a pointer register.
//! let rep = Rep::Tuple(vec![Rep::Int, Rep::Lifted]);
//! assert_eq!(rep.slots(), vec![Slot::Word, Slot::Ptr]);
//!
//! // Nesting is computationally irrelevant (§2.3):
//! let nested = Rep::Tuple(vec![Rep::Lifted, Rep::Tuple(vec![Rep::Float, Rep::Lifted])]);
//! let flat = Rep::Tuple(vec![Rep::Lifted, Rep::Float, Rep::Lifted]);
//! assert_eq!(nested.slots(), flat.slots());
//! assert_ne!(nested, flat); // ...but the kinds differ (§4.2)
//! ```

use std::fmt;

use crate::symbol::Symbol;

/// A fully concrete runtime representation: the promoted `Rep` datatype of
/// §4.1.
///
/// A value's representation determines how many registers (and of which
/// class) hold it, whether it lives behind a heap pointer, and whether it
/// can be a thunk. `LiftedRep` and `UnliftedRep` are *boxed* (heap
/// pointers); everything else is *unboxed*. Only `LiftedRep` is *lifted*
/// (may be ⊥/a thunk) — see Figure 1.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rep {
    /// Boxed, lifted: a pointer to a possibly-unevaluated heap object
    /// (`Int`, `Bool`, every ordinary Haskell type).
    Lifted,
    /// Boxed, unlifted: a pointer to a heap object that is always
    /// evaluated (`ByteArray#`, `Array# a`).
    Unlifted,
    /// Unboxed machine integer (`Int#`).
    Int,
    /// Unboxed 8-bit integer (`Int8#`).
    Int8,
    /// Unboxed 16-bit integer (`Int16#`).
    Int16,
    /// Unboxed 32-bit integer (`Int32#`).
    Int32,
    /// Unboxed 64-bit integer (`Int64#`).
    Int64,
    /// Unboxed machine word (`Word#`).
    Word,
    /// Unboxed 8-bit word (`Word8#`).
    Word8,
    /// Unboxed 64-bit word (`Word64#`).
    Word64,
    /// Unboxed character (`Char#`); the paper's §7.1 uses `CharRep`.
    Char,
    /// Unboxed single-precision float (`Float#`).
    Float,
    /// Unboxed double-precision float (`Double#`).
    Double,
    /// Unboxed machine address (`Addr#`).
    Addr,
    /// Unboxed tuple: multiple values in multiple registers (§2.3, §4.2).
    /// `TupleRep '[]` is represented by nothing at all.
    Tuple(Vec<Rep>),
    /// Unboxed sum (GHC extension beyond the paper): a tag word plus the
    /// merged slots of all alternatives.
    Sum(Vec<Rep>),
}

impl Rep {
    /// Is a value of this representation a heap pointer?
    ///
    /// Exactly `LiftedRep` and `UnliftedRep` are boxed (Figure 1).
    pub fn is_boxed(&self) -> bool {
        matches!(self, Rep::Lifted | Rep::Unlifted)
    }

    /// Is a value of this representation lazy (may be a thunk / ⊥)?
    ///
    /// Only `LiftedRep`: "all lifted types must also be boxed" (§2.2).
    pub fn is_lifted(&self) -> bool {
        matches!(self, Rep::Lifted)
    }

    /// Is a value of this representation stored directly, not behind a
    /// pointer?
    pub fn is_unboxed(&self) -> bool {
        !self.is_boxed()
    }

    /// The register slots that hold a value of this representation, in
    /// order.
    ///
    /// Tuple nesting flattens away: "while `(# Int, (# Float#, Bool #) #)`
    /// is a distinct type from `(# Int, Float#, Bool #)`, the two are
    /// identical at runtime" (§2.3). Unboxed sums use GHC's slot-merging
    /// scheme: one tag word, then for each slot class the maximum count
    /// needed by any alternative.
    pub fn slots(&self) -> Vec<Slot> {
        match self {
            Rep::Lifted | Rep::Unlifted => vec![Slot::Ptr],
            Rep::Int
            | Rep::Int8
            | Rep::Int16
            | Rep::Int32
            | Rep::Int64
            | Rep::Word
            | Rep::Word8
            | Rep::Word64
            | Rep::Char
            | Rep::Addr => vec![Slot::Word],
            Rep::Float => vec![Slot::Float],
            Rep::Double => vec![Slot::Double],
            Rep::Tuple(parts) => parts.iter().flat_map(Rep::slots).collect(),
            Rep::Sum(alts) => {
                let mut merged = SlotCounts::default();
                for alt in alts {
                    merged.merge_max(&SlotCounts::of_slots(&alt.slots()));
                }
                let mut slots = vec![Slot::Word]; // the tag
                slots.extend(merged.into_slots());
                slots
            }
        }
    }

    /// Total bytes of register space for a value of this representation.
    pub fn width_bytes(&self) -> usize {
        self.slots().iter().map(|s| s.bytes()).sum()
    }

    /// Number of registers used; `(# #)` uses zero.
    pub fn register_count(&self) -> usize {
        self.slots().len()
    }

    /// The classification row of Figure 1 for this representation.
    pub fn classification(&self) -> Classification {
        match (self.is_boxed(), self.is_lifted()) {
            (true, true) => Classification::BoxedLifted,
            (true, false) => Classification::BoxedUnlifted,
            (false, false) => Classification::Unboxed,
            (false, true) => unreachable!("lifted implies boxed (Figure 1)"),
        }
    }
}

impl fmt::Display for Rep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rep::Lifted => f.write_str("LiftedRep"),
            Rep::Unlifted => f.write_str("UnliftedRep"),
            Rep::Int => f.write_str("IntRep"),
            Rep::Int8 => f.write_str("Int8Rep"),
            Rep::Int16 => f.write_str("Int16Rep"),
            Rep::Int32 => f.write_str("Int32Rep"),
            Rep::Int64 => f.write_str("Int64Rep"),
            Rep::Word => f.write_str("WordRep"),
            Rep::Word8 => f.write_str("Word8Rep"),
            Rep::Word64 => f.write_str("Word64Rep"),
            Rep::Char => f.write_str("CharRep"),
            Rep::Float => f.write_str("FloatRep"),
            Rep::Double => f.write_str("DoubleRep"),
            Rep::Addr => f.write_str("AddrRep"),
            Rep::Tuple(parts) => write_promoted_list(f, "TupleRep", parts),
            Rep::Sum(alts) => write_promoted_list(f, "SumRep", alts),
        }
    }
}

fn write_promoted_list(f: &mut fmt::Formatter<'_>, head: &str, parts: &[Rep]) -> fmt::Result {
    write!(f, "{head} '[")?;
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{p}")?;
    }
    f.write_str("]")
}

/// The three inhabited corners of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Classification {
    /// Boxed and lifted: `Int`, `Bool`.
    BoxedLifted,
    /// Boxed and unlifted: `ByteArray#`.
    BoxedUnlifted,
    /// Unboxed (necessarily unlifted): `Int#`, `Char#`.
    Unboxed,
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::BoxedLifted => f.write_str("boxed, lifted"),
            Classification::BoxedUnlifted => f.write_str("boxed, unlifted"),
            Classification::Unboxed => f.write_str("unboxed, unlifted"),
        }
    }
}

/// A machine register class, the `M` language's notion of "what kind of
/// register" (§6.2 uses pointer and integer; the full pipeline adds the
/// floating-point bank, cf. §9.1's discussion of OCaml).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Slot {
    /// Garbage-collected pointer register.
    Ptr,
    /// General-purpose (integer/word/address) register.
    Word,
    /// Single-precision floating-point register.
    Float,
    /// Double-precision floating-point register.
    Double,
}

impl Slot {
    /// Width of the slot in bytes (64-bit machine model).
    pub fn bytes(self) -> usize {
        match self {
            Slot::Ptr | Slot::Word | Slot::Double => 8,
            Slot::Float => 4,
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::Ptr => f.write_str("ptr"),
            Slot::Word => f.write_str("word"),
            Slot::Float => f.write_str("float"),
            Slot::Double => f.write_str("double"),
        }
    }
}

/// Per-class slot counts, used to merge unboxed-sum alternatives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SlotCounts {
    ptr: usize,
    word: usize,
    float: usize,
    double: usize,
}

impl SlotCounts {
    fn of_slots(slots: &[Slot]) -> Self {
        let mut c = SlotCounts::default();
        for s in slots {
            match s {
                Slot::Ptr => c.ptr += 1,
                Slot::Word => c.word += 1,
                Slot::Float => c.float += 1,
                Slot::Double => c.double += 1,
            }
        }
        c
    }

    fn merge_max(&mut self, other: &SlotCounts) {
        self.ptr = self.ptr.max(other.ptr);
        self.word = self.word.max(other.word);
        self.float = self.float.max(other.float);
        self.double = self.double.max(other.double);
    }

    fn into_slots(self) -> Vec<Slot> {
        let mut out = Vec::with_capacity(self.ptr + self.word + self.float + self.double);
        out.extend(std::iter::repeat_n(Slot::Ptr, self.ptr));
        out.extend(std::iter::repeat_n(Slot::Word, self.word));
        out.extend(std::iter::repeat_n(Slot::Float, self.float));
        out.extend(std::iter::repeat_n(Slot::Double, self.double));
        out
    }
}

/// A type-level representation *expression*: the `ρ` of Figure 2,
/// generalized from `{P, I}` to the full `Rep` grammar, and possibly
/// mentioning representation variables.
///
/// `RepTy` is what appears in kinds (`TYPE ρ`). A `RepTy` with no
/// variables can be lowered to a concrete [`Rep`] via
/// [`RepTy::as_concrete`]; one with variables cannot be compiled — that is
/// the whole point of the §5.1 restrictions.
///
/// # Examples
///
/// ```
/// use levity_core::rep::{Rep, RepTy};
/// use levity_core::symbol::Symbol;
///
/// let concrete = RepTy::Concrete(Rep::Int);
/// assert_eq!(concrete.as_concrete(), Some(Rep::Int));
///
/// let var = RepTy::Var(Symbol::intern("r"));
/// assert_eq!(var.as_concrete(), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RepTy {
    /// A representation variable `r`.
    Var(Symbol),
    /// A concrete representation constructor with no variables underneath.
    Concrete(Rep),
    /// `TupleRep '[ρ₁, …, ρₙ]` where some component may mention variables.
    /// (Fully concrete tuples should normalize to `Concrete`.)
    Tuple(Vec<RepTy>),
    /// `SumRep '[ρ₁, …, ρₙ]`, possibly with variables.
    Sum(Vec<RepTy>),
}

impl RepTy {
    /// `LiftedRep`, the representation in `Type = TYPE LiftedRep`.
    pub const LIFTED: RepTy = RepTy::Concrete(Rep::Lifted);

    /// Lower to a concrete representation, if no variables occur.
    pub fn as_concrete(&self) -> Option<Rep> {
        match self {
            RepTy::Var(_) => None,
            RepTy::Concrete(r) => Some(r.clone()),
            RepTy::Tuple(parts) => parts
                .iter()
                .map(RepTy::as_concrete)
                .collect::<Option<Vec<_>>>()
                .map(Rep::Tuple),
            RepTy::Sum(alts) => alts
                .iter()
                .map(RepTy::as_concrete)
                .collect::<Option<Vec<_>>>()
                .map(Rep::Sum),
        }
    }

    /// Does any representation variable occur in this expression?
    pub fn has_vars(&self) -> bool {
        match self {
            RepTy::Var(_) => true,
            RepTy::Concrete(_) => false,
            RepTy::Tuple(parts) | RepTy::Sum(parts) => parts.iter().any(RepTy::has_vars),
        }
    }

    /// All representation variables occurring, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            RepTy::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            RepTy::Concrete(_) => {}
            RepTy::Tuple(parts) | RepTy::Sum(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// Substitutes `rep` for the variable `var`, normalizing
    /// variable-free tuples/sums to `Concrete`.
    pub fn substitute(&self, var: Symbol, rep: &RepTy) -> RepTy {
        match self {
            RepTy::Var(v) if *v == var => rep.clone(),
            RepTy::Var(_) | RepTy::Concrete(_) => self.clone(),
            RepTy::Tuple(parts) => {
                normalize_tuple(parts.iter().map(|p| p.substitute(var, rep)).collect())
            }
            RepTy::Sum(parts) => {
                normalize_sum(parts.iter().map(|p| p.substitute(var, rep)).collect())
            }
        }
    }
}

/// Builds a `TupleRep` rep expression, collapsing to `Concrete` when no
/// variables occur.
pub fn normalize_tuple(parts: Vec<RepTy>) -> RepTy {
    if parts.iter().all(|p| !p.has_vars()) {
        RepTy::Concrete(Rep::Tuple(
            parts
                .iter()
                .map(|p| p.as_concrete().expect("no vars"))
                .collect(),
        ))
    } else {
        RepTy::Tuple(parts)
    }
}

/// Builds a `SumRep` rep expression, collapsing to `Concrete` when no
/// variables occur.
pub fn normalize_sum(parts: Vec<RepTy>) -> RepTy {
    if parts.iter().all(|p| !p.has_vars()) {
        RepTy::Concrete(Rep::Sum(
            parts
                .iter()
                .map(|p| p.as_concrete().expect("no vars"))
                .collect(),
        ))
    } else {
        RepTy::Sum(parts)
    }
}

impl fmt::Display for RepTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepTy::Var(v) => write!(f, "{v}"),
            RepTy::Concrete(r) => write!(f, "{r}"),
            RepTy::Tuple(parts) => write_repty_list(f, "TupleRep", parts),
            RepTy::Sum(parts) => write_repty_list(f, "SumRep", parts),
        }
    }
}

fn write_repty_list(f: &mut fmt::Formatter<'_>, head: &str, parts: &[RepTy]) -> fmt::Result {
    write!(f, "{head} '[")?;
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{p}")?;
    }
    f.write_str("]")
}

impl From<Rep> for RepTy {
    fn from(rep: Rep) -> RepTy {
        RepTy::Concrete(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_int_and_bool_are_boxed_lifted() {
        assert_eq!(Rep::Lifted.classification(), Classification::BoxedLifted);
        assert!(Rep::Lifted.is_boxed());
        assert!(Rep::Lifted.is_lifted());
    }

    #[test]
    fn figure1_bytearray_is_boxed_unlifted() {
        assert_eq!(
            Rep::Unlifted.classification(),
            Classification::BoxedUnlifted
        );
        assert!(Rep::Unlifted.is_boxed());
        assert!(!Rep::Unlifted.is_lifted());
    }

    #[test]
    fn figure1_int_hash_is_unboxed() {
        assert_eq!(Rep::Int.classification(), Classification::Unboxed);
        assert_eq!(Rep::Char.classification(), Classification::Unboxed);
        assert!(!Rep::Int.is_boxed());
    }

    #[test]
    fn figure1_lifted_implies_boxed() {
        // There is no unboxed-lifted corner; exhaustively check every
        // nullary constructor.
        let all = [
            Rep::Lifted,
            Rep::Unlifted,
            Rep::Int,
            Rep::Int8,
            Rep::Int16,
            Rep::Int32,
            Rep::Int64,
            Rep::Word,
            Rep::Word8,
            Rep::Word64,
            Rep::Char,
            Rep::Float,
            Rep::Double,
            Rep::Addr,
        ];
        for rep in all {
            if rep.is_lifted() {
                assert!(rep.is_boxed(), "{rep} is lifted but not boxed");
            }
        }
    }

    #[test]
    fn boxed_values_are_one_pointer() {
        assert_eq!(Rep::Lifted.slots(), vec![Slot::Ptr]);
        assert_eq!(Rep::Unlifted.slots(), vec![Slot::Ptr]);
    }

    #[test]
    fn empty_unboxed_tuple_is_represented_by_nothing() {
        // "(# #) :: TYPE (TupleRep '[]) … represented by nothing at all."
        assert_eq!(Rep::Tuple(vec![]).register_count(), 0);
        assert_eq!(Rep::Tuple(vec![]).width_bytes(), 0);
    }

    #[test]
    fn section4_2_tuple_examples() {
        // (# Int, Bool #): two pointer registers.
        let two_ptrs = Rep::Tuple(vec![Rep::Lifted, Rep::Lifted]);
        assert_eq!(two_ptrs.slots(), vec![Slot::Ptr, Slot::Ptr]);
        // (# Int#, Bool #): an integer register and a pointer register.
        let int_ptr = Rep::Tuple(vec![Rep::Int, Rep::Lifted]);
        assert_eq!(int_ptr.slots(), vec![Slot::Word, Slot::Ptr]);
    }

    #[test]
    fn nesting_is_computationally_irrelevant() {
        // (# Int, (# Bool, Double #) #) vs (# (# Char, String #), Int #):
        // "Both are represented by three garbage-collected pointers."
        let a = Rep::Tuple(vec![
            Rep::Lifted,
            Rep::Tuple(vec![Rep::Lifted, Rep::Lifted]),
        ]);
        let b = Rep::Tuple(vec![
            Rep::Tuple(vec![Rep::Lifted, Rep::Lifted]),
            Rep::Lifted,
        ]);
        assert_eq!(a.slots(), vec![Slot::Ptr; 3]);
        assert_eq!(a.slots(), b.slots());
        // ... yet they are distinct kinds (§4.2 kept the nested structure).
        assert_ne!(a, b);
    }

    #[test]
    fn sum_slots_merge_alternatives() {
        // (# Int# | Double# #): tag + one word + one double.
        let s = Rep::Sum(vec![Rep::Int, Rep::Double]);
        assert_eq!(s.slots(), vec![Slot::Word, Slot::Word, Slot::Double]);
        // (# Int# | Int# #): tag + a single shared word slot.
        let t = Rep::Sum(vec![Rep::Int, Rep::Int]);
        assert_eq!(t.slots(), vec![Slot::Word, Slot::Word]);
    }

    #[test]
    fn widths_follow_slots() {
        assert_eq!(Rep::Double.width_bytes(), 8);
        assert_eq!(Rep::Float.width_bytes(), 4);
        assert_eq!(Rep::Tuple(vec![Rep::Int, Rep::Float]).width_bytes(), 12);
    }

    #[test]
    fn display_matches_ghc_spelling() {
        assert_eq!(Rep::Lifted.to_string(), "LiftedRep");
        assert_eq!(Rep::Int.to_string(), "IntRep");
        assert_eq!(
            Rep::Tuple(vec![Rep::Int, Rep::Lifted]).to_string(),
            "TupleRep '[IntRep, LiftedRep]"
        );
    }

    #[test]
    fn repty_concreteness() {
        let r = Symbol::intern("r");
        let poly = RepTy::Tuple(vec![RepTy::Var(r), RepTy::Concrete(Rep::Lifted)]);
        assert!(poly.has_vars());
        assert_eq!(poly.as_concrete(), None);
        assert_eq!(poly.free_vars(), vec![r]);

        let mono = poly.substitute(r, &RepTy::Concrete(Rep::Int));
        assert!(!mono.has_vars());
        assert_eq!(
            mono.as_concrete(),
            Some(Rep::Tuple(vec![Rep::Int, Rep::Lifted]))
        );
    }

    #[test]
    fn substitute_leaves_other_vars_alone() {
        let r = Symbol::intern("r1");
        let s = Symbol::intern("r2");
        let poly = RepTy::Tuple(vec![RepTy::Var(r), RepTy::Var(s)]);
        let after = poly.substitute(r, &RepTy::LIFTED);
        assert_eq!(after.free_vars(), vec![s]);
    }

    #[test]
    fn repty_display() {
        let r = Symbol::intern("r");
        let t = RepTy::Tuple(vec![RepTy::Var(r), RepTy::LIFTED]);
        assert_eq!(t.to_string(), "TupleRep '[r, LiftedRep]");
    }

    #[test]
    fn normalization_collapses_concrete_tuples() {
        let t = normalize_tuple(vec![RepTy::Concrete(Rep::Int), RepTy::LIFTED]);
        assert_eq!(t, RepTy::Concrete(Rep::Tuple(vec![Rep::Int, Rep::Lifted])));
    }
}
