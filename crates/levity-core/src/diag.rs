//! Source spans and diagnostics.
//!
//! Every front-end error in the pipeline — lexing, parsing, kind errors,
//! levity-restriction violations (§5.1) — is reported as a [`Diagnostic`]
//! carrying a [`Span`] into the original source text.
//!
//! The paper notes (§8.2) that GHC performs the levity checks in the
//! desugarer, where producing good errors is harder; we keep spans through
//! the whole pipeline so the late checks can still point at source.

use std::error::Error;
use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The empty span at offset zero, used for generated code.
    pub const SYNTHETIC: Span = Span { start: 0, end: 0 };

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Is this the synthetic (generated-code) span?
    pub fn is_synthetic(self) -> bool {
        self == Span::SYNTHETIC
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A warning; compilation continues.
    Warning,
    /// An error; the program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable machine-readable codes for the errors the paper discusses, so
/// tests can assert on the *reason* a program was rejected rather than on
/// message text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Lexical error.
    Lex,
    /// Parse error.
    Parse,
    /// Unbound variable / constructor / type.
    Scope,
    /// Ordinary type mismatch.
    TypeMismatch,
    /// Kind mismatch (e.g. instantiating `forall (a :: Type)` at `Int#`,
    /// §3.1 — the Instantiation Principle enforced through kinds).
    KindMismatch,
    /// Occurs-check failure during unification.
    OccursCheck,
    /// §5.1 restriction 1: a levity-polymorphic *binder*.
    LevityPolymorphicBinder,
    /// §5.1 restriction 2: a levity-polymorphic function *argument*.
    LevityPolymorphicArgument,
    /// A type family whose equations live at different representations
    /// (§7.1: `F` with `Int#`/`Char#` branches is ill-kinded now).
    InhomogeneousFamily,
    /// Instance / class resolution failure.
    ClassResolution,
    /// Arity or saturation error (e.g. unsaturated primitive at
    /// levity-polymorphic type, §8.2).
    Saturation,
    /// Code generation hit an abstract representation — this is the error
    /// the §5.1 restrictions exist to make unreachable; reachable only via
    /// the unchecked entry points in `levity-compile`.
    AbstractRepresentation,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Lex => "E-lex",
            ErrorCode::Parse => "E-parse",
            ErrorCode::Scope => "E-scope",
            ErrorCode::TypeMismatch => "E-type",
            ErrorCode::KindMismatch => "E-kind",
            ErrorCode::OccursCheck => "E-occurs",
            ErrorCode::LevityPolymorphicBinder => "E-levity-binder",
            ErrorCode::LevityPolymorphicArgument => "E-levity-argument",
            ErrorCode::InhomogeneousFamily => "E-family-rep",
            ErrorCode::ClassResolution => "E-class",
            ErrorCode::Saturation => "E-saturation",
            ErrorCode::AbstractRepresentation => "E-abstract-rep",
        };
        f.write_str(s)
    }
}

/// A diagnostic message tied to a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Warning or error.
    pub severity: Severity,
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Extra notes, e.g. "in the expansion of ...".
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: ErrorCode, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: ErrorCode, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Appends a note, returning `self` for chaining.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders with line/column information resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        let mut out = format!(
            "{}[{}]: {} at {}:{}",
            self.severity, self.code, self.message, line, col
        );
        for note in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostic {}

/// One-based line and column of a byte offset in `source`.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// A collection of diagnostics accumulated by a pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Were any *errors* (not just warnings) recorded?
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// All recorded diagnostics in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics recorded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the sink, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        assert_eq!(Span::new(3, 5).to(Span::new(10, 12)), Span::new(3, 12));
        assert_eq!(Span::new(10, 12).to(Span::new(3, 5)), Span::new(3, 12));
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn diagnostics_sink_tracks_errors() {
        let mut diags = Diagnostics::new();
        assert!(!diags.has_errors());
        diags.push(Diagnostic::warning(
            ErrorCode::Parse,
            "odd layout",
            Span::SYNTHETIC,
        ));
        assert!(!diags.has_errors());
        diags.push(Diagnostic::error(
            ErrorCode::LevityPolymorphicBinder,
            "binder `x` has levity-polymorphic type",
            Span::new(4, 5),
        ));
        assert!(diags.has_errors());
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn diagnostic_display_includes_code_and_notes() {
        let d = Diagnostic::error(
            ErrorCode::KindMismatch,
            "expected Type, got TYPE IntRep",
            Span::SYNTHETIC,
        )
        .with_note("in the application of bTwice");
        let shown = d.to_string();
        assert!(shown.contains("E-kind"));
        assert!(shown.contains("note: in the application of bTwice"));
    }

    #[test]
    fn render_resolves_line_and_column() {
        let src = "x = 1\ny = oops";
        let d = Diagnostic::error(
            ErrorCode::Scope,
            "unbound variable `oops`",
            Span::new(10, 14),
        );
        let rendered = d.render(src);
        assert!(rendered.contains("2:5"), "{rendered}");
    }

    #[test]
    fn error_codes_display_stably() {
        assert_eq!(
            ErrorCode::LevityPolymorphicBinder.to_string(),
            "E-levity-binder"
        );
        assert_eq!(
            ErrorCode::LevityPolymorphicArgument.to_string(),
            "E-levity-argument"
        );
    }
}
