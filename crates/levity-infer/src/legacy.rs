//! The legacy `OpenKind` sub-kinding system (§3.2–3.3), as a comparison
//! baseline.
//!
//! Before levity polymorphism, GHC coped with unlifted types through a
//! sub-kinding hierarchy:
//!
//! ```text
//!        OpenKind
//!        /      \
//!     Type       #
//! ```
//!
//! `(->)` was given the "bizarre kind" `OpenKind -> OpenKind -> Type`
//! (fully saturated uses only), and `error` got the magical type
//! `∀(a :: OpenKind). String -> a`. The scheme worked, but:
//!
//! * the magic was *fragile*: a user-written wrapper like `myError`
//!   re-generalized at kind `Type`, silently losing applicability to
//!   unlifted types (§3.3);
//! * kind unification needed "awkward and unprincipled special cases";
//! * `OpenKind` leaked into error messages.
//!
//! This module models exactly that system over a miniature kind language
//! so the benchmarks and tests can compare it with the levity-polymorphic
//! replacement.

use std::collections::HashMap;

use levity_core::symbol::Symbol;

/// A legacy kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LegacyKind {
    /// The kind of lifted types (`*` in the Haskell Report; `Type` here).
    Type,
    /// The kind `#` of unlifted types — *all* of them, regardless of
    /// representation, which is exactly the §7.1 problem.
    Hash,
    /// The super-kind of both.
    OpenKind,
}

impl std::fmt::Display for LegacyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegacyKind::Type => f.write_str("Type"),
            LegacyKind::Hash => f.write_str("#"),
            // "The kind OpenKind would embarrassingly appear in error
            // messages." (§3.2)
            LegacyKind::OpenKind => f.write_str("OpenKind"),
        }
    }
}

impl LegacyKind {
    /// The sub-kinding relation `κ₁ <: κ₂` (reflexive; `Type <: OpenKind`,
    /// `# <: OpenKind`).
    pub fn subkind_of(self, other: LegacyKind) -> bool {
        self == other || other == LegacyKind::OpenKind
    }
}

/// A kind-checking problem in the legacy system: can a type of kind
/// `actual` be used where `expected` is required?
pub fn legacy_accepts(expected: LegacyKind, actual: LegacyKind) -> bool {
    actual.subkind_of(expected)
}

/// A legacy "type scheme": a result kind for each quantified variable.
/// Only what the §3.3 story needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LegacyScheme {
    /// Kinds of the quantified type variables.
    pub var_kinds: Vec<(Symbol, LegacyKind)>,
}

/// The legacy generalizer: quantifies inferred type variables **at kind
/// `Type`** — this is the fragility of §3.3. `error` itself had a
/// hand-written `OpenKind` scheme; anything *inferred* (like `myError`)
/// lost it.
pub fn legacy_generalize(vars: &[Symbol]) -> LegacyScheme {
    LegacyScheme {
        var_kinds: vars.iter().map(|v| (*v, LegacyKind::Type)).collect(),
    }
}

/// The hand-magicked scheme for `error` (§3.3):
/// `∀(a :: OpenKind). String -> a`.
pub fn legacy_error_scheme() -> LegacyScheme {
    LegacyScheme {
        var_kinds: vec![(Symbol::intern("a"), LegacyKind::OpenKind)],
    }
}

/// Can a scheme be instantiated with a type of the given kind at the
/// given variable?
pub fn legacy_instantiable(scheme: &LegacyScheme, var: Symbol, arg_kind: LegacyKind) -> bool {
    scheme
        .var_kinds
        .iter()
        .find(|(v, _)| *v == var)
        .is_some_and(|(_, k)| legacy_accepts(*k, arg_kind))
}

/// A tiny model of the legacy kind *inference* with sub-kinding, enough
/// to exhibit its "awkward and unprincipled special cases" (§3.2): a
/// unification variable may stand for `Type`, `#` or `OpenKind`, and
/// constraints are sub-kind inequalities solved by ad-hoc case analysis.
#[derive(Debug, Default)]
pub struct LegacyKindInference {
    solutions: HashMap<Symbol, LegacyKind>,
    next: u64,
}

impl LegacyKindInference {
    /// A fresh inference state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh kind variable.
    pub fn fresh(&mut self) -> Symbol {
        let n = self.next;
        self.next += 1;
        Symbol::intern(&format!("?k{n}"))
    }

    /// Records `var := kind`, propagating through the sub-kind lattice:
    /// an `OpenKind` solution may later be *refined* to `Type` or `#`,
    /// but `Type` and `#` conflict. This refinement step is the special
    /// case that a pure unifier would not need — and the paper's design
    /// eliminates.
    pub fn constrain(&mut self, var: Symbol, kind: LegacyKind) -> Result<(), String> {
        match self.solutions.get(&var).copied() {
            None => {
                self.solutions.insert(var, kind);
                Ok(())
            }
            Some(prev) if prev == kind => Ok(()),
            Some(LegacyKind::OpenKind) => {
                // Refine downward.
                self.solutions.insert(var, kind);
                Ok(())
            }
            Some(prev) if kind == LegacyKind::OpenKind => {
                // Already more precise than requested.
                let _ = prev;
                Ok(())
            }
            Some(prev) => Err(format!(
                "cannot unify kind `{prev}` with `{kind}` for `{var}` \
                 (sub-kinding conflict; OpenKind appears in this error, as §3.2 laments)"
            )),
        }
    }

    /// The current solution for a variable.
    pub fn solution(&self, var: Symbol) -> Option<LegacyKind> {
        self.solutions.get(&var).copied()
    }

    /// The legacy defaulting at generalization: unsolved kind variables
    /// become `Type` — which is how `myError` loses its magic.
    pub fn default_unsolved(&mut self, var: Symbol) -> LegacyKind {
        *self.solutions.entry(var).or_insert(LegacyKind::Type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn subkinding_lattice() {
        assert!(LegacyKind::Type.subkind_of(LegacyKind::OpenKind));
        assert!(LegacyKind::Hash.subkind_of(LegacyKind::OpenKind));
        assert!(!LegacyKind::Type.subkind_of(LegacyKind::Hash));
        assert!(!LegacyKind::OpenKind.subkind_of(LegacyKind::Type));
        assert!(LegacyKind::Hash.subkind_of(LegacyKind::Hash));
    }

    #[test]
    fn error_magic_accepts_unlifted_instantiation() {
        // error :: ∀(a :: OpenKind). String -> a can be used at Int#.
        let scheme = legacy_error_scheme();
        assert!(legacy_instantiable(&scheme, sym("a"), LegacyKind::Hash));
        assert!(legacy_instantiable(&scheme, sym("a"), LegacyKind::Type));
    }

    #[test]
    fn my_error_loses_the_magic() {
        // §3.3: "GHC infers the type ∀(a :: Type). String -> a, and the
        // magic is lost."
        let scheme = legacy_generalize(&[sym("a")]);
        assert!(legacy_instantiable(&scheme, sym("a"), LegacyKind::Type));
        assert!(
            !legacy_instantiable(&scheme, sym("a"), LegacyKind::Hash),
            "the regenerated scheme must NOT accept unlifted types"
        );
    }

    #[test]
    fn arrow_saturation_hack() {
        // (->) :: OpenKind -> OpenKind -> Type accepts Int# -> Double#
        // when fully saturated.
        assert!(legacy_accepts(LegacyKind::OpenKind, LegacyKind::Hash));
        assert!(legacy_accepts(LegacyKind::OpenKind, LegacyKind::Type));
    }

    #[test]
    fn kind_inference_refinement_and_conflict() {
        let mut inf = LegacyKindInference::new();
        let k = inf.fresh();
        inf.constrain(k, LegacyKind::OpenKind).unwrap();
        // Refinement OpenKind → # is the ad-hoc special case.
        inf.constrain(k, LegacyKind::Hash).unwrap();
        assert_eq!(inf.solution(k), Some(LegacyKind::Hash));
        // And now Type conflicts.
        let err = inf.constrain(k, LegacyKind::Type).unwrap_err();
        assert!(err.contains("OpenKind"), "{err}");
    }

    #[test]
    fn unsolved_kind_vars_default_to_type() {
        let mut inf = LegacyKindInference::new();
        let k = inf.fresh();
        assert_eq!(inf.default_unsolved(k), LegacyKind::Type);
    }
}
