//! Elaboration: surface modules to explicitly-typed Core.
//!
//! This pass is the reproduction of §5.2's inference story plus §7.3's
//! dictionary translation:
//!
//! * every λ-binder without an annotation gets a type metavariable
//!   `α :: TYPE ρ` with `ρ` a *representation* metavariable;
//! * declared levity-polymorphic signatures are *checked* by
//!   skolemizing their `forall (r :: Rep)` binders;
//! * at generalization, representation metavariables are never
//!   generalized — they are defaulted to `LiftedRep`;
//! * class constraints become dictionary arguments, classes become
//!   record datatypes, methods become selectors, and instances become
//!   top-level dictionary values, exactly as §7.3 describes.

use std::collections::HashMap;
use std::sync::Arc;

use levity_core::diag::{Diagnostic, Diagnostics, ErrorCode, Span};
use levity_core::kind::Kind;
use levity_core::rep::{Rep, RepTy};
use levity_core::symbol::{NameSupply, Symbol};
use levity_m::syntax::{Literal, PrimOp};

use levity_ir::terms::{
    CoreAlt, CoreExpr, DataConInfo, DataDecl, LetKind, Program, TopBind, TyArg, TyParam,
};
use levity_ir::typecheck::TypeEnv;
use levity_ir::types::{TyCon, Type};
use levity_surface::ast::{Module, SDecl, SExpr, SExprNode, SLit, SPat, SType};

use crate::convert::{convert_kind, convert_type, ConvScope, ConvertOptions};
use crate::families::{check_family, FamilyInfo};
use crate::unify::Unifier;

/// A class declaration, §7.3-style.
#[derive(Clone, Debug)]
pub struct ClassInfo {
    /// Class name.
    pub name: Symbol,
    /// Implicit representation parameters of the class variable's kind
    /// (`class Num (a :: TYPE r)` has one).
    pub rep_params: Vec<Symbol>,
    /// The class variable.
    pub var: Symbol,
    /// Its kind.
    pub var_kind: Kind,
    /// Method names and their types (in terms of the class variable).
    pub methods: Vec<(Symbol, Type)>,
    /// The generated dictionary constructor.
    pub dict_con: Arc<DataConInfo>,
}

/// A registered instance.
#[derive(Clone, Debug)]
pub struct InstanceInfo {
    /// The class.
    pub class: Symbol,
    /// The (atomic) instance head type.
    pub head: Type,
    /// The top-level dictionary value.
    pub dict_global: Symbol,
}

/// The class environment built during elaboration.
#[derive(Clone, Debug, Default)]
pub struct ClassEnv {
    /// Classes by name.
    pub classes: HashMap<Symbol, ClassInfo>,
    /// All instances.
    pub instances: Vec<InstanceInfo>,
    /// Method name → owning class.
    pub methods: HashMap<Symbol, Symbol>,
}

impl ClassEnv {
    /// Finds the instance for `class` at `head`, if any.
    pub fn lookup_instance(&self, class: Symbol, head: &Type) -> Option<&InstanceInfo> {
        self.instances
            .iter()
            .find(|i| i.class == class && i.head.alpha_eq(head))
    }
}

/// The result of elaborating a module.
#[derive(Debug)]
pub struct Elaborated {
    /// The Core program (prelude datatypes + all generated bindings).
    pub program: Program,
    /// The final type environment.
    pub env: TypeEnv,
    /// Classes and instances.
    pub classes: ClassEnv,
    /// Checked type families (§7.1).
    pub families: Vec<FamilyInfo>,
    /// Non-fatal diagnostics (warnings).
    pub warnings: Diagnostics,
}

/// The primop table: surface operator names to machine primops.
pub fn primop_table() -> HashMap<Symbol, PrimOp> {
    let mut m = HashMap::new();
    let mut ins = |s: &str, op: PrimOp| {
        m.insert(Symbol::intern(s), op);
    };
    ins("+#", PrimOp::AddI);
    ins("-#", PrimOp::SubI);
    ins("*#", PrimOp::MulI);
    ins("quotInt#", PrimOp::QuotI);
    ins("remInt#", PrimOp::RemI);
    ins("negateInt#", PrimOp::NegI);
    ins("==#", PrimOp::EqI);
    ins("/=#", PrimOp::NeI);
    ins("<#", PrimOp::LtI);
    ins("<=#", PrimOp::LeI);
    ins(">#", PrimOp::GtI);
    ins(">=#", PrimOp::GeI);
    ins("+##", PrimOp::AddD);
    ins("-##", PrimOp::SubD);
    ins("*##", PrimOp::MulD);
    ins("/##", PrimOp::DivD);
    ins("negateDouble#", PrimOp::NegD);
    ins("==##", PrimOp::EqD);
    ins("<##", PrimOp::LtD);
    ins("<=##", PrimOp::LeD);
    ins("plusFloat#", PrimOp::AddF);
    ins("minusFloat#", PrimOp::SubF);
    ins("timesFloat#", PrimOp::MulF);
    ins("divideFloat#", PrimOp::DivF);
    ins("int2Double#", PrimOp::IntToDouble);
    ins("double2Int#", PrimOp::DoubleToInt);
    ins("int2Float#", PrimOp::IntToFloat);
    ins("float2Double#", PrimOp::FloatToDouble);
    ins("ord#", PrimOp::CharToInt);
    ins("chr#", PrimOp::IntToChar);
    ins("eqChar#", PrimOp::EqC);
    m
}

/// Wrappers accumulated while peeling a signature. The variants are
/// deliberately named after the `CoreExpr` forms they wrap with.
#[allow(clippy::enum_variant_names)]
enum Wrapper {
    RepLam(Symbol),
    TyLam(Symbol, Kind),
    DictLam(Symbol, Type),
}

struct Elaborator {
    env: TypeEnv,
    unifier: Unifier,
    classes: ClassEnv,
    families: Vec<FamilyInfo>,
    supply: NameSupply,
    prims: HashMap<Symbol, PrimOp>,
    locals: Vec<(Symbol, Type)>,
    rigid_tys: Vec<(Symbol, Kind)>,
    rigid_reps: Vec<Symbol>,
    givens: Vec<(Symbol, Type, Symbol)>,
    /// (placeholder var, class, wanted type, span)
    wanteds: Vec<(Symbol, Symbol, Type, Span)>,
    diags: Diagnostics,
    program: Program,
    error_name: Symbol,
}

const DIAG_LIMIT: usize = 60;

impl Elaborator {
    fn new() -> Elaborator {
        let env = TypeEnv::new();
        let program = Program {
            data_decls: env.builtins.data_decls.clone(),
            bindings: Vec::new(),
        };
        Elaborator {
            env,
            unifier: Unifier::new(),
            classes: ClassEnv::default(),
            families: Vec::new(),
            supply: NameSupply::new(),
            prims: primop_table(),
            locals: Vec::new(),
            rigid_tys: Vec::new(),
            rigid_reps: Vec::new(),
            givens: Vec::new(),
            wanteds: Vec::new(),
            diags: Diagnostics::new(),
            program,
            error_name: Symbol::intern("error"),
        }
    }

    fn diag(&mut self, d: Diagnostic) {
        if self.diags.len() < DIAG_LIMIT {
            self.diags.push(d);
        }
    }

    fn error_expr(&mut self, msg: &str, span: Span, code: ErrorCode) -> (CoreExpr, Type) {
        self.diag(Diagnostic::error(code, msg.to_owned(), span));
        let ty = self.unifier.fresh_ty_meta();
        (
            CoreExpr::Error(ty.clone(), format!("elaboration error: {msg}")),
            ty,
        )
    }

    fn conv_scope(&self) -> ConvScope {
        ConvScope {
            ty_vars: self.rigid_tys.clone(),
            rep_vars: self.rigid_reps.clone(),
        }
    }

    fn convert_sig(&mut self, sty: &SType, span: Span) -> Result<Type, Diagnostic> {
        let classes = self.classes.classes.keys().copied().collect::<Vec<_>>();
        let checker = move |c: Symbol| classes.contains(&c);
        convert_type(
            &self.env,
            &checker,
            sty,
            &mut self.conv_scope(),
            ConvertOptions {
                implicit_quantify: true,
                span,
            },
        )
    }

    fn convert_ann(&mut self, sty: &SType, span: Span) -> Result<Type, Diagnostic> {
        let classes = self.classes.classes.keys().copied().collect::<Vec<_>>();
        let checker = move |c: Symbol| classes.contains(&c);
        convert_type(
            &self.env,
            &checker,
            sty,
            &mut self.conv_scope(),
            ConvertOptions {
                implicit_quantify: false,
                span,
            },
        )
    }

    // =================================================================
    // Declarations
    // =================================================================

    fn process_data(
        &mut self,
        name: Symbol,
        params: &[(Symbol, Option<levity_surface::ast::SKind>)],
        cons: &[(Symbol, Vec<SType>)],
        span: Span,
    ) {
        // Build the tycon kind: κ₁ -> … -> Type (data types are lifted).
        let mut param_info = Vec::new();
        for (v, sk) in params {
            let kind = match sk {
                None => Kind::TYPE,
                Some(k) => {
                    let mut implicit = Vec::new();
                    match convert_kind(k, &ConvScope::new(), &mut implicit, span) {
                        Ok(k) if implicit.is_empty() => k,
                        Ok(_) => {
                            self.diag(Diagnostic::error(
                                ErrorCode::Scope,
                                "data type parameters may not have levity-polymorphic kinds",
                                span,
                            ));
                            Kind::TYPE
                        }
                        Err(d) => {
                            self.diag(d);
                            Kind::TYPE
                        }
                    }
                }
            };
            param_info.push((*v, kind));
        }
        let kind = param_info
            .iter()
            .rev()
            .fold(Kind::TYPE, |acc, (_, k)| Kind::arrow(k.clone(), acc));
        let tycon = Arc::new(TyCon { name, kind });
        // Register the tycon before converting fields (recursive types).
        let placeholder_decl = Arc::new(DataDecl {
            tycon: Arc::clone(&tycon),
            params: param_info
                .iter()
                .map(|(v, k)| TyParam::Ty(*v, k.clone()))
                .collect(),
            cons: Vec::new(),
        });
        self.env.add_data_decl(Arc::clone(&placeholder_decl));

        let result = Type::Con(
            Arc::clone(&tycon),
            param_info.iter().map(|(v, _)| Type::Var(*v)).collect(),
        );
        let mut scope = ConvScope::new();
        for (v, k) in &param_info {
            scope.ty_vars.push((*v, k.clone()));
        }
        let mut con_infos = Vec::new();
        for (tag, (cname, fields)) in cons.iter().enumerate() {
            let mut field_types = Vec::new();
            for f in fields {
                let classes = self.classes.classes.keys().copied().collect::<Vec<_>>();
                let checker = move |c: Symbol| classes.contains(&c);
                match convert_type(
                    &self.env,
                    &checker,
                    f,
                    &mut scope,
                    ConvertOptions {
                        implicit_quantify: false,
                        span,
                    },
                ) {
                    Ok(t) => field_types.push(t),
                    Err(d) => {
                        self.diag(d);
                        field_types.push(Type::con0(&self.env.builtins.unit));
                    }
                }
            }
            con_infos.push(Arc::new(DataConInfo {
                name: *cname,
                tag: tag as u32,
                params: param_info
                    .iter()
                    .map(|(v, k)| TyParam::Ty(*v, k.clone()))
                    .collect(),
                field_types,
                result: result.clone(),
            }));
        }
        let decl = Arc::new(DataDecl {
            tycon,
            params: param_info
                .iter()
                .map(|(v, k)| TyParam::Ty(*v, k.clone()))
                .collect(),
            cons: con_infos,
        });
        self.env.add_data_decl(Arc::clone(&decl));
        self.program.data_decls.push(decl);
    }

    fn process_class(
        &mut self,
        name: Symbol,
        var: Symbol,
        var_kind: &Option<levity_surface::ast::SKind>,
        methods: &[(Symbol, SType)],
        span: Span,
    ) {
        // The class variable's kind; free rep vars become class rep
        // params ("class Num (a :: TYPE r)", §7.3).
        let mut rep_params = Vec::new();
        let var_kind = match var_kind {
            None => Kind::TYPE,
            Some(sk) => match convert_kind(sk, &ConvScope::new(), &mut rep_params, span) {
                Ok(k) => k,
                Err(d) => {
                    self.diag(d);
                    Kind::TYPE
                }
            },
        };
        let mut scope = ConvScope::new();
        scope.rep_vars.extend(rep_params.iter().copied());
        scope.ty_vars.push((var, var_kind.clone()));
        let mut method_types = Vec::new();
        for (mname, sty) in methods {
            let classes = self.classes.classes.keys().copied().collect::<Vec<_>>();
            let checker = move |c: Symbol| classes.contains(&c);
            match convert_type(
                &self.env,
                &checker,
                sty,
                &mut scope,
                ConvertOptions {
                    implicit_quantify: false,
                    span,
                },
            ) {
                Ok(t) => method_types.push((*mname, t)),
                Err(d) => self.diag(d),
            }
        }
        // The dictionary datatype (§7.3):
        //   data Num (a :: TYPE r) = MkNum { (+) :: a->a->a, abs :: a->a }
        let dict_con = Arc::new(DataConInfo {
            name: Symbol::intern(&format!("Mk{name}")),
            tag: 0,
            params: rep_params
                .iter()
                .map(|r| TyParam::Rep(*r))
                .chain(std::iter::once(TyParam::Ty(var, var_kind.clone())))
                .collect(),
            field_types: method_types.iter().map(|(_, t)| t.clone()).collect(),
            result: Type::Dict(name, Box::new(Type::Var(var))),
        });
        self.env.add_datacon(Arc::clone(&dict_con));

        // Method selectors: plain record selectors whose *types* are
        // levity-polymorphic but whose bodies bind only the lifted
        // dictionary (§7.3: "its implementation obeys the rules of 5.1").
        for (i, (mname, mty)) in method_types.iter().enumerate() {
            let sel_ty = rep_params.iter().rev().fold(
                Type::forall_ty(
                    var,
                    var_kind.clone(),
                    Type::fun(Type::Dict(name, Box::new(Type::Var(var))), mty.clone()),
                ),
                |acc, r| Type::forall_rep(*r, acc),
            );
            let d = self.supply.fresh("dict");
            let field_binders: Vec<(Symbol, Type)> = method_types
                .iter()
                .map(|(n, t)| (Symbol::intern(&format!("{n}$field")), t.clone()))
                .collect();
            let body = CoreExpr::case(
                CoreExpr::Var(d),
                vec![CoreAlt::Con {
                    con: Arc::clone(&dict_con),
                    binders: field_binders.clone(),
                    rhs: CoreExpr::Var(field_binders[i].0),
                }],
            );
            let core = rep_params.iter().rev().fold(
                CoreExpr::ty_lam(
                    var,
                    var_kind.clone(),
                    CoreExpr::lam(d, Type::Dict(name, Box::new(Type::Var(var))), body),
                ),
                |acc, r| CoreExpr::rep_lam(*r, acc),
            );
            self.env.define_global(*mname, sel_ty.clone());
            self.classes.methods.insert(*mname, name);
            self.program.bindings.push(TopBind {
                name: *mname,
                ty: sel_ty,
                expr: core,
            });
        }

        self.classes.classes.insert(
            name,
            ClassInfo {
                name,
                rep_params,
                var,
                var_kind,
                methods: method_types,
                dict_con,
            },
        );
    }

    /// Registers an instance header (dict global + table entry) without
    /// elaborating the bodies, so earlier bindings can resolve it.
    fn register_instance_header(
        &mut self,
        class: Symbol,
        head: &SType,
        span: Span,
    ) -> Option<(Symbol, Type, RepTy)> {
        let Some(ci) = self.classes.classes.get(&class).cloned() else {
            self.diag(Diagnostic::error(
                ErrorCode::ClassResolution,
                format!("instance for unknown class `{class}`"),
                span,
            ));
            return None;
        };
        let head_ty = match self.convert_ann(head, span) {
            Ok(t) => t,
            Err(d) => {
                self.diag(d);
                return None;
            }
        };
        // The head's kind fixes the class's rep parameter: Num Int#
        // instantiates r := IntRep.
        let mut scope = levity_ir::typecheck::Scope::new();
        let head_kind = match levity_ir::typecheck::kind_of(&self.env, &mut scope, &head_ty) {
            Ok(k) => k,
            Err(e) => {
                self.diag(Diagnostic::error(
                    ErrorCode::KindMismatch,
                    e.to_string(),
                    span,
                ));
                return None;
            }
        };
        let head_rep = match (&ci.var_kind, &head_kind) {
            (Kind::Type(RepTy::Var(_)), Kind::Type(rep)) => rep.clone(),
            (expected, actual) => {
                if expected != actual {
                    self.diag(
                        Diagnostic::error(
                            ErrorCode::KindMismatch,
                            format!(
                                "instance head `{head_ty}` has kind `{actual}`, but class `{class}` expects `{expected}`"
                            ),
                            span,
                        )
                        .with_note("only a levity-polymorphic class (class C (a :: TYPE r)) admits unlifted instances (section 7.3)"),
                    );
                    return None;
                }
                RepTy::LIFTED
            }
        };
        if self.classes.lookup_instance(class, &head_ty).is_some() {
            self.diag(Diagnostic::error(
                ErrorCode::ClassResolution,
                format!("duplicate instance `{class} {head_ty}`"),
                span,
            ));
            return None;
        }
        let dict_global = Symbol::intern(&format!("$d{class}_{head_ty}"));
        self.env
            .define_global(dict_global, Type::Dict(class, Box::new(head_ty.clone())));
        self.classes.instances.push(InstanceInfo {
            class,
            head: head_ty.clone(),
            dict_global,
        });
        Some((dict_global, head_ty, head_rep))
    }

    fn elaborate_instance_bodies(
        &mut self,
        class: Symbol,
        dict_global: Symbol,
        head_ty: Type,
        head_rep: RepTy,
        methods: &[(Symbol, Vec<SPat>, SExpr)],
        span: Span,
    ) {
        let Some(ci) = self.classes.classes.get(&class).cloned() else {
            return;
        };
        let mut method_globals = Vec::new();
        for (mname, mty) in &ci.methods {
            let Some((_, params, body)) = methods.iter().find(|(n, _, _)| n == mname) else {
                self.diag(Diagnostic::error(
                    ErrorCode::ClassResolution,
                    format!("instance `{class} {head_ty}` is missing method `{mname}`"),
                    span,
                ));
                continue;
            };
            // The method's type at this instance, fully monomorphic —
            // like the paper's plusInt# / absInt#.
            let mut inst_ty = mty.subst_ty(ci.var, &head_ty);
            for r in &ci.rep_params {
                inst_ty = inst_ty.subst_rep(*r, &head_rep);
            }
            let global = Symbol::intern(&format!("$f{class}_{head_ty}_{mname}"));
            let core = self.check_binding_body(params, body, &inst_ty, span);
            let core = self.finalize_binding(core, span);
            self.env.define_global(global, inst_ty.clone());
            self.program.bindings.push(TopBind {
                name: global,
                ty: inst_ty,
                expr: core,
            });
            method_globals.push(global);
        }
        for (mname, _, _) in methods {
            if !ci.methods.iter().any(|(n, _)| n == mname) {
                self.diag(Diagnostic::error(
                    ErrorCode::ClassResolution,
                    format!("`{mname}` is not a method of class `{class}`"),
                    span,
                ));
            }
        }
        if method_globals.len() != ci.methods.len() {
            return;
        }
        // $dNumInt# = MkNum @IntRep @Int# plusInt# absInt# (§7.3).
        let ty_args: Vec<TyArg> = ci
            .rep_params
            .iter()
            .map(|_| TyArg::Rep(head_rep.clone()))
            .chain(std::iter::once(TyArg::Ty(head_ty.clone())))
            .collect();
        let dict_expr = CoreExpr::Con(
            Arc::clone(&ci.dict_con),
            ty_args,
            method_globals.into_iter().map(CoreExpr::Global).collect(),
        );
        self.program.bindings.push(TopBind {
            name: dict_global,
            ty: Type::Dict(class, Box::new(head_ty)),
            expr: dict_expr,
        });
    }

    // =================================================================
    // Bindings
    // =================================================================

    /// Peels a signature's quantifiers and constraints, installing
    /// skolems and givens; returns the wrappers and the remaining type.
    fn skolemize(&mut self, sig: &Type) -> (Vec<Wrapper>, Type) {
        let mut wrappers = Vec::new();
        let mut ty = sig.clone();
        loop {
            match ty {
                Type::ForallRep(r, body) => {
                    self.rigid_reps.push(r);
                    wrappers.push(Wrapper::RepLam(r));
                    ty = *body;
                }
                Type::ForallTy(a, k, body) => {
                    if let Kind::Type(rep) = &k {
                        self.unifier.declare_rigid(a, rep.clone());
                    }
                    self.rigid_tys.push((a, k.clone()));
                    wrappers.push(Wrapper::TyLam(a, k));
                    ty = *body;
                }
                Type::Fun(dom, cod) => {
                    if let Type::Dict(c, arg) = *dom {
                        let d = self.supply.fresh("given");
                        self.givens.push((c, (*arg).clone(), d));
                        wrappers.push(Wrapper::DictLam(d, Type::Dict(c, arg)));
                        ty = *cod;
                    } else {
                        ty = Type::Fun(dom, cod);
                        break;
                    }
                }
                other => {
                    ty = other;
                    break;
                }
            }
        }
        (wrappers, ty)
    }

    fn unskolemize(&mut self, wrappers: &[Wrapper]) {
        for w in wrappers.iter().rev() {
            match w {
                Wrapper::RepLam(_) => {
                    self.rigid_reps.pop();
                }
                Wrapper::TyLam(..) => {
                    self.rigid_tys.pop();
                }
                Wrapper::DictLam(..) => {
                    self.givens.pop();
                }
            }
        }
    }

    fn apply_wrappers(wrappers: Vec<Wrapper>, core: CoreExpr) -> CoreExpr {
        wrappers.into_iter().rev().fold(core, |acc, w| match w {
            Wrapper::RepLam(r) => CoreExpr::rep_lam(r, acc),
            Wrapper::TyLam(a, k) => CoreExpr::ty_lam(a, k, acc),
            Wrapper::DictLam(d, t) => CoreExpr::lam(d, t, acc),
        })
    }

    /// Checks `\params -> body` against an expected (rho) type.
    fn check_clauses(
        &mut self,
        params: &[SPat],
        body: &SExpr,
        expected: &Type,
        span: Span,
    ) -> CoreExpr {
        if params.is_empty() {
            return self.check_expr(body, expected);
        }
        let expected = self.unifier.zonk(expected);
        let (dom, cod) = match expected {
            Type::Fun(d, c) => ((*d).clone(), (*c).clone()),
            other => {
                let d = self.unifier.fresh_ty_meta();
                let c = self.unifier.fresh_ty_meta();
                let fun = Type::fun(d.clone(), c.clone());
                if let Err(e) = self.unifier.unify(&other, &fun) {
                    self.diag(Diagnostic::error(
                        ErrorCode::TypeMismatch,
                        format!("too many parameters for the declared type: {e}"),
                        span,
                    ));
                }
                (d, c)
            }
        };
        let (name, wrap, pushed) = self.bind_pattern(&params[0], &dom, span);
        let inner = self.check_clauses(&params[1..], body, &cod, span);
        for _ in 0..pushed {
            self.locals.pop();
        }
        CoreExpr::lam(name, dom, wrap(inner))
    }

    /// Binds a λ-pattern against a domain type; returns the Core binder
    /// name, a body wrapper (for tuple unpacking), and how many locals
    /// were pushed.
    fn bind_pattern(
        &mut self,
        pat: &SPat,
        dom: &Type,
        span: Span,
    ) -> (Symbol, Box<dyn FnOnce(CoreExpr) -> CoreExpr>, usize) {
        match pat {
            SPat::Var(v) => {
                self.locals.push((*v, dom.clone()));
                (*v, Box::new(|e| e), 1)
            }
            SPat::Wild => (self.supply.fresh("wild"), Box::new(|e| e), 0),
            SPat::Ann(v, sty) => {
                match self.convert_ann(sty, span) {
                    Ok(t) => {
                        if let Err(e) = self.unifier.unify(dom, &t) {
                            self.diag(Diagnostic::error(
                                ErrorCode::TypeMismatch,
                                format!("pattern annotation mismatch: {e}"),
                                span,
                            ));
                        }
                    }
                    Err(d) => self.diag(d),
                }
                self.locals.push((*v, dom.clone()));
                (*v, Box::new(|e| e), 1)
            }
            SPat::UnboxedTuple(vars) => {
                let metas: Vec<Type> = vars.iter().map(|_| self.unifier.fresh_ty_meta()).collect();
                if let Err(e) = self.unifier.unify(dom, &Type::UnboxedTuple(metas.clone())) {
                    self.diag(Diagnostic::error(
                        ErrorCode::TypeMismatch,
                        format!("unboxed tuple pattern mismatch: {e}"),
                        span,
                    ));
                }
                for (v, t) in vars.iter().zip(&metas) {
                    self.locals.push((*v, t.clone()));
                }
                let scrut_name = self.supply.fresh("tup");
                let binders: Vec<(Symbol, Type)> = vars
                    .iter()
                    .zip(&metas)
                    .map(|(v, t)| (*v, t.clone()))
                    .collect();
                (
                    scrut_name,
                    Box::new(move |body| {
                        CoreExpr::case(
                            CoreExpr::Var(scrut_name),
                            vec![CoreAlt::Tuple { binders, rhs: body }],
                        )
                    }),
                    vars.len(),
                )
            }
            SPat::Con(..) | SPat::Lit(_) => {
                self.diag(Diagnostic::error(
                    ErrorCode::Parse,
                    "constructor and literal patterns are only allowed in case alternatives",
                    span,
                ));
                (self.supply.fresh("bad"), Box::new(|e| e), 0)
            }
        }
    }

    /// Checks a binding body (signature case): used for top-level signed
    /// binds and instance methods.
    fn check_binding_body(
        &mut self,
        params: &[SPat],
        body: &SExpr,
        sig: &Type,
        span: Span,
    ) -> CoreExpr {
        let (wrappers, rho) = self.skolemize(sig);
        let core = self.check_clauses(params, body, &rho, span);
        // Solve constraints *before* unskolemizing: the signature's
        // givens must be in scope to discharge wanteds like `Num a`.
        let replacements = self.solve_wanteds(span);
        let core = replace_vars(core, &replacements);
        self.unskolemize(&wrappers);
        Self::apply_wrappers(wrappers, core)
    }

    /// Solves accumulated wanted constraints against givens and
    /// instances; returns the placeholder replacements.
    fn solve_wanteds(&mut self, span: Span) -> HashMap<Symbol, CoreExpr> {
        let mut replacements: HashMap<Symbol, CoreExpr> = HashMap::new();
        let wanteds = std::mem::take(&mut self.wanteds);
        for (placeholder, class, ty, wspan) in wanteds {
            let ty = self.unifier.zonk(&ty);
            if let Some((_, _, d)) = self
                .givens
                .iter()
                .find(|(c, t, _)| *c == class && t.alpha_eq(&ty))
            {
                replacements.insert(placeholder, CoreExpr::Var(*d));
                continue;
            }
            if let Some(inst) = self.classes.lookup_instance(class, &ty) {
                replacements.insert(placeholder, CoreExpr::Global(inst.dict_global));
                continue;
            }
            self.diag(Diagnostic::error(
                ErrorCode::ClassResolution,
                format!("no instance for `{class} {ty}`"),
                if wspan.is_synthetic() { span } else { wspan },
            ));
            replacements.insert(
                placeholder,
                CoreExpr::Error(
                    Type::Dict(class, Box::new(ty.clone())),
                    format!("unresolved constraint {class} {ty}"),
                ),
            );
        }
        replacements
    }

    /// Solves any remaining wanted constraints, zonks, and replaces
    /// dictionary placeholders; the per-binding epilogue.
    fn finalize_binding(&mut self, core: CoreExpr, span: Span) -> CoreExpr {
        let replacements = self.solve_wanteds(span);
        let core = replace_vars(core, &replacements);
        self.zonk_core(core)
    }

    // =================================================================
    // Expressions
    // =================================================================

    fn lookup_local(&self, v: Symbol) -> Option<&Type> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| *n == v)
            .map(|(_, t)| t)
    }

    /// Instantiates a σ-type: rep foralls and ty foralls become fresh
    /// metas, leading dictionary arguments become wanted constraints.
    fn instantiate(&mut self, mut core: CoreExpr, mut ty: Type, span: Span) -> (CoreExpr, Type) {
        loop {
            ty = self.unifier.zonk(&ty);
            match ty {
                Type::ForallRep(r, body) => {
                    let rho = self.unifier.fresh_rep_meta();
                    core = CoreExpr::rep_app(core, rho.clone());
                    ty = body.subst_rep(r, &rho);
                }
                Type::ForallTy(a, k, body) => match self.unifier.zonk_kind(&k) {
                    Kind::Type(rep) => {
                        let meta = self.unifier.fresh_ty_meta_of(rep);
                        core = CoreExpr::ty_app(core, meta.clone());
                        ty = body.subst_ty(a, &meta);
                    }
                    other => {
                        self.diag(Diagnostic::error(
                            ErrorCode::KindMismatch,
                            format!(
                                "cannot instantiate higher-kinded type variable `{a} :: {other}`"
                            ),
                            span,
                        ));
                        ty = body.subst_ty(a, &Type::con0(&self.env.builtins.unit));
                    }
                },
                Type::Fun(dom, cod) if matches!(*dom, Type::Dict(..)) => {
                    let Type::Dict(c, arg) = *dom else {
                        unreachable!()
                    };
                    let placeholder = self.supply.fresh("$w");
                    self.wanteds.push((placeholder, c, (*arg).clone(), span));
                    core = CoreExpr::app(core, CoreExpr::Var(placeholder));
                    ty = *cod;
                }
                other => return (core, other),
            }
        }
    }

    /// Looks up a variable and returns elaborated Core plus its
    /// *uninstantiated* type.
    fn lookup_var(&mut self, v: Symbol, span: Span) -> Option<(CoreExpr, Type, bool)> {
        if let Some(t) = self.lookup_local(v) {
            return Some((CoreExpr::Var(v), t.clone(), false));
        }
        if let Some(t) = self.env.global(v) {
            return Some((CoreExpr::Global(v), t.clone(), true));
        }
        if let Some(op) = self.prims.get(&v).copied() {
            let (core, ty) = self.eta_expand_prim(op);
            return Some((core, ty, false));
        }
        let _ = span;
        None
    }

    fn eta_expand_prim(&mut self, op: PrimOp) -> (CoreExpr, Type) {
        let (args, result) = levity_ir::builtin::prim_signature(op, &self.env.builtins);
        let names: Vec<Symbol> = args.iter().map(|_| self.supply.fresh("pa")).collect();
        let body = CoreExpr::Prim(op, names.iter().map(|n| CoreExpr::Var(*n)).collect());
        let core = CoreExpr::lams(
            names
                .iter()
                .copied()
                .zip(args.iter().cloned())
                .collect::<Vec<_>>(),
            body,
        );
        (core, Type::funs(args, result))
    }

    /// Flattens an application spine.
    fn flatten_spine<'a>(e: &'a SExpr) -> (&'a SExpr, Vec<SpineArg<'a>>) {
        let mut args = Vec::new();
        let mut cur = e;
        loop {
            match &cur.node {
                SExprNode::App(f, a) => {
                    args.push(SpineArg::Term(a));
                    cur = f;
                }
                SExprNode::TyApp(f, t) => {
                    args.push(SpineArg::Type(t));
                    cur = f;
                }
                _ => break,
            }
        }
        args.reverse();
        (cur, args)
    }

    fn infer_expr(&mut self, e: &SExpr) -> (CoreExpr, Type) {
        let span = e.span;
        match &e.node {
            SExprNode::App(..) | SExprNode::TyApp(..) => self.infer_spine(e),
            SExprNode::Var(v) => {
                if *v == self.error_name {
                    return self.error_expr(
                        "`error` must be applied to a string literal",
                        span,
                        ErrorCode::TypeMismatch,
                    );
                }
                match self.lookup_var(*v, span) {
                    Some((core, ty, _global)) => self.instantiate(core, ty, span),
                    None => {
                        self.error_expr(&format!("unbound variable `{v}`"), span, ErrorCode::Scope)
                    }
                }
            }
            SExprNode::Con(c) => self.elaborate_con(*c, &[], span),
            SExprNode::Lit(l) => self.elaborate_lit(*l),
            SExprNode::Str(_) => self.error_expr(
                "string literals may only appear as the argument of `error`",
                span,
                ErrorCode::TypeMismatch,
            ),
            SExprNode::Lam(pats, body) => {
                // §5.2: each binder gets α :: TYPE ρ with ρ a fresh rep
                // metavariable.
                let mut binder_info = Vec::new();
                let mut pushed_total = 0;
                for pat in pats {
                    let dom = self.unifier.fresh_ty_meta();
                    let (name, wrap, pushed) = self.bind_pattern(pat, &dom, span);
                    binder_info.push((name, dom, wrap));
                    pushed_total += pushed;
                }
                let (body_core, body_ty) = self.infer_expr(body);
                for _ in 0..pushed_total {
                    self.locals.pop();
                }
                let mut core = body_core;
                let mut ty = body_ty;
                for (name, dom, wrap) in binder_info.into_iter().rev() {
                    core = CoreExpr::lam(name, dom.clone(), wrap(core));
                    ty = Type::fun(dom, ty);
                }
                (core, ty)
            }
            SExprNode::Let(x, ann, rhs, body) => self.elaborate_let(*x, ann, rhs, body, span),
            SExprNode::Case(scrut, alts) => {
                let result = self.unifier.fresh_ty_meta();
                let core = self.elaborate_case(scrut, alts, &result, span);
                (core, result)
            }
            SExprNode::If(c, t, f) => {
                let result = self.unifier.fresh_ty_meta();
                let core = self.elaborate_if(c, t, f, &result, span);
                (core, result)
            }
            SExprNode::UnboxedTuple(parts) => {
                let mut cores = Vec::new();
                let mut tys = Vec::new();
                for p in parts {
                    let (c, t) = self.infer_expr(p);
                    cores.push(c);
                    tys.push(t);
                }
                (CoreExpr::Tuple(cores), Type::UnboxedTuple(tys))
            }
            SExprNode::Ann(inner, sty) => {
                let ty = match self.convert_ann(sty, span) {
                    Ok(t) => t,
                    Err(d) => {
                        self.diag(d);
                        return self.infer_expr(inner);
                    }
                };
                if matches!(ty, Type::ForallRep(..) | Type::ForallTy(..)) {
                    // A σ-annotation: check like a signed binding.
                    let core = self.check_binding_body(&[], inner, &ty, span);
                    (core, ty)
                } else {
                    let core = self.check_expr(inner, &ty);
                    (core, ty)
                }
            }
        }
    }

    fn infer_spine(&mut self, e: &SExpr) -> (CoreExpr, Type) {
        let span = e.span;
        let (head, args) = Self::flatten_spine(e);
        match &head.node {
            SExprNode::Var(v) if *v == self.error_name => self.elaborate_error(&args, span),
            SExprNode::Var(v) if self.prims.contains_key(v) && self.lookup_local(*v).is_none() => {
                let op = self.prims[v];
                self.elaborate_prim(op, &args, span)
            }
            SExprNode::Con(c) => self.elaborate_con(*c, &args, span),
            // A variable head with visible type applications must keep
            // its σ-type until the @-arguments are consumed.
            SExprNode::Var(v)
                if args.iter().any(|a| matches!(a, SpineArg::Type(_)))
                    && self.lookup_var(*v, span).is_some() =>
            {
                let (mut core, mut ty) = self
                    .lookup_var(*v, span)
                    .map(|(c, t, _)| (c, t))
                    .expect("checked");
                for arg in args {
                    (core, ty) = self.apply_arg(core, ty, arg, span);
                }
                // Instantiate anything left over so downstream code sees
                // a ρ-type.
                self.instantiate(core, ty, span)
            }
            _ => {
                let (mut core, mut ty) = self.infer_expr(head);
                for arg in args {
                    (core, ty) = self.apply_arg(core, ty, arg, span);
                }
                (core, ty)
            }
        }
    }

    fn apply_arg(
        &mut self,
        core: CoreExpr,
        ty: Type,
        arg: SpineArg<'_>,
        span: Span,
    ) -> (CoreExpr, Type) {
        match arg {
            SpineArg::Type(sty) => {
                // Visible type application: auto-instantiate rep foralls,
                // then consume the next ty forall.
                let mut core = core;
                let mut ty = self.unifier.zonk(&ty);
                loop {
                    match ty {
                        Type::ForallRep(r, body) => {
                            let rho = self.unifier.fresh_rep_meta();
                            core = CoreExpr::rep_app(core, rho.clone());
                            ty = self.unifier.zonk(&body.subst_rep(r, &rho));
                        }
                        Type::ForallTy(a, k, body) => {
                            let arg_ty = match self.convert_ann(sty, span) {
                                Ok(t) => t,
                                Err(d) => {
                                    self.diag(d);
                                    Type::con0(&self.env.builtins.unit)
                                }
                            };
                            // Kind check: the argument's kind must match.
                            let mut scope = levity_ir::typecheck::Scope::new();
                            for (v, kk) in &self.rigid_tys {
                                scope.push(*v, levity_ir::typecheck::ScopeEntry::TyVar(kk.clone()));
                            }
                            for r in &self.rigid_reps {
                                scope.push(*r, levity_ir::typecheck::ScopeEntry::RepVar);
                            }
                            match levity_ir::typecheck::kind_of(&self.env, &mut scope, &arg_ty) {
                                Ok(actual) => {
                                    if let Err(err) = self
                                        .unifier
                                        .unify_kind(&self.unifier.zonk_kind(&k).clone(), &actual)
                                    {
                                        self.diag(Diagnostic::error(
                                            ErrorCode::KindMismatch,
                                            format!("type application kind mismatch: {err}"),
                                            span,
                                        ));
                                    }
                                }
                                Err(err) => self.diag(Diagnostic::error(
                                    ErrorCode::KindMismatch,
                                    err.to_string(),
                                    span,
                                )),
                            }
                            core = CoreExpr::ty_app(core, arg_ty.clone());
                            return (core, body.subst_ty(a, &arg_ty));
                        }
                        other => {
                            self.diag(Diagnostic::error(
                                ErrorCode::TypeMismatch,
                                format!("cannot type-apply a value of type `{other}`"),
                                span,
                            ));
                            return (core, other);
                        }
                    }
                }
            }
            SpineArg::Term(arg_expr) => {
                // Instantiate any remaining quantifiers first.
                let (core, ty) = self.instantiate(core, ty, span);
                let ty = self.unifier.zonk(&ty);
                match ty {
                    Type::Fun(dom, cod) => {
                        let arg_core = self.check_expr(arg_expr, &dom);
                        (CoreExpr::app(core, arg_core), *cod)
                    }
                    other @ Type::Var(_) => {
                        let dom = self.unifier.fresh_ty_meta();
                        let cod = self.unifier.fresh_ty_meta();
                        let fun = Type::fun(dom.clone(), cod.clone());
                        if let Err(err) = self.unifier.unify(&other, &fun) {
                            self.diag(Diagnostic::error(
                                ErrorCode::TypeMismatch,
                                format!("cannot apply: {err}"),
                                span,
                            ));
                        }
                        let arg_core = self.check_expr(arg_expr, &dom);
                        (CoreExpr::app(core, arg_core), cod)
                    }
                    other => {
                        let (c, t) = self.error_expr(
                            &format!("cannot apply a value of type `{other}`"),
                            span,
                            ErrorCode::TypeMismatch,
                        );
                        let _ = (c, core);
                        (CoreExpr::Error(t.clone(), "bad application".to_owned()), t)
                    }
                }
            }
        }
    }

    fn elaborate_error(&mut self, args: &[SpineArg<'_>], span: Span) -> (CoreExpr, Type) {
        // error [@τ] "msg" [more args…]
        let mut requested: Option<Type> = None;
        let mut rest = args;
        if let Some(SpineArg::Type(sty)) = rest.first() {
            match self.convert_ann(sty, span) {
                Ok(t) => requested = Some(t),
                Err(d) => self.diag(d),
            }
            rest = &rest[1..];
        }
        let Some(SpineArg::Term(msg_expr)) = rest.first() else {
            return self.error_expr(
                "`error` must be applied to a string literal",
                span,
                ErrorCode::TypeMismatch,
            );
        };
        let SExprNode::Str(msg) = &msg_expr.node else {
            return self.error_expr(
                "`error` takes a string literal message",
                span,
                ErrorCode::TypeMismatch,
            );
        };
        rest = &rest[1..];
        let result_ty = requested.unwrap_or_else(|| self.unifier.fresh_ty_meta());
        let mut core = CoreExpr::Error(result_ty.clone(), msg.clone());
        let mut ty = result_ty;
        for arg in rest {
            (core, ty) = self.apply_arg(core, ty, arg.clone_ref(), span);
        }
        (core, ty)
    }

    fn elaborate_prim(
        &mut self,
        op: PrimOp,
        args: &[SpineArg<'_>],
        span: Span,
    ) -> (CoreExpr, Type) {
        let (arg_tys, result) = levity_ir::builtin::prim_signature(op, &self.env.builtins);
        let arity = arg_tys.len();
        let term_args: Vec<&SExpr> = args
            .iter()
            .filter_map(|a| match a {
                SpineArg::Term(e) => Some(*e),
                SpineArg::Type(_) => None,
            })
            .collect();
        if term_args.len() != args.len() {
            self.diag(Diagnostic::error(
                ErrorCode::TypeMismatch,
                "primops take no type arguments",
                span,
            ));
        }
        if term_args.len() >= arity {
            let mut cores = Vec::new();
            for (a, t) in term_args.iter().take(arity).zip(&arg_tys) {
                cores.push(self.check_expr(a, t));
            }
            let mut core = CoreExpr::Prim(op, cores);
            let mut ty = result;
            for extra in &term_args[arity..] {
                (core, ty) = self.apply_arg(core, ty, SpineArg::Term(extra), span);
            }
            (core, ty)
        } else {
            // Partial application: η-expand.
            let (core, ty) = self.eta_expand_prim(op);
            let mut core = core;
            let mut ty = ty;
            for a in term_args {
                (core, ty) = self.apply_arg(core, ty, SpineArg::Term(a), span);
            }
            (core, ty)
        }
    }

    fn elaborate_con(
        &mut self,
        cname: Symbol,
        args: &[SpineArg<'_>],
        span: Span,
    ) -> (CoreExpr, Type) {
        let Some(con) = self.env.datacon(cname).cloned() else {
            return self.error_expr(
                &format!("unknown data constructor `{cname}`"),
                span,
                ErrorCode::Scope,
            );
        };
        // Instantiate the constructor's parameters with fresh metas.
        let mut ty_args = Vec::new();
        let mut fields = con.field_types.clone();
        let mut result = con.result.clone();
        for p in &con.params {
            match p {
                TyParam::Rep(r) => {
                    let rho = self.unifier.fresh_rep_meta();
                    fields = fields.into_iter().map(|f| f.subst_rep(*r, &rho)).collect();
                    result = result.subst_rep(*r, &rho);
                    ty_args.push(TyArg::Rep(rho));
                }
                TyParam::Ty(v, k) => {
                    let meta = match k {
                        Kind::Type(rep) => self.unifier.fresh_ty_meta_of(rep.clone()),
                        _ => self.unifier.fresh_ty_meta(),
                    };
                    fields = fields.into_iter().map(|f| f.subst_ty(*v, &meta)).collect();
                    result = result.subst_ty(*v, &meta);
                    ty_args.push(TyArg::Ty(meta));
                }
            }
        }
        let term_args: Vec<&SExpr> = args
            .iter()
            .filter_map(|a| match a {
                SpineArg::Term(e) => Some(*e),
                SpineArg::Type(_) => None,
            })
            .collect();
        if term_args.len() != args.len() {
            self.diag(Diagnostic::error(
                ErrorCode::TypeMismatch,
                "visible type application to data constructors is not supported",
                span,
            ));
        }
        let arity = fields.len();
        if term_args.len() >= arity {
            let mut field_cores = Vec::new();
            for (a, t) in term_args.iter().take(arity).zip(&fields) {
                field_cores.push(self.check_expr(a, t));
            }
            let mut core = CoreExpr::Con(con, ty_args, field_cores);
            let mut ty = result;
            for extra in &term_args[arity..] {
                (core, ty) = self.apply_arg(core, ty, SpineArg::Term(extra), span);
            }
            (core, ty)
        } else {
            // η-expand the unsaturated constructor.
            let missing: Vec<(Symbol, Type)> = fields[term_args.len()..]
                .iter()
                .map(|t| (self.supply.fresh("eta"), t.clone()))
                .collect();
            let mut field_cores = Vec::new();
            for (a, t) in term_args.iter().zip(&fields) {
                field_cores.push(self.check_expr(a, t));
            }
            field_cores.extend(missing.iter().map(|(n, _)| CoreExpr::Var(*n)));
            let body = CoreExpr::Con(con, ty_args, field_cores);
            let core = CoreExpr::lams(missing.clone(), body);
            let ty = Type::funs(missing.iter().map(|(_, t)| t.clone()), result);
            (core, ty)
        }
    }

    fn elaborate_lit(&mut self, lit: SLit) -> (CoreExpr, Type) {
        let b = self.env.builtins.clone();
        match lit {
            SLit::IntHash(n) => (CoreExpr::Lit(Literal::Int(n)), Type::con0(&b.int_hash)),
            SLit::DoubleHash(x) => (
                CoreExpr::Lit(Literal::double(x)),
                Type::con0(&b.double_hash),
            ),
            SLit::CharHash(c) => (CoreExpr::Lit(Literal::Char(c)), Type::con0(&b.char_hash)),
            // Boxed literals are ordinary constructor applications:
            // 3 is I# 3# (§2.1).
            SLit::Int(n) => (
                CoreExpr::Con(
                    Arc::clone(&b.i_hash),
                    vec![],
                    vec![CoreExpr::Lit(Literal::Int(n))],
                ),
                Type::con0(&b.int),
            ),
            SLit::Double(x) => (
                CoreExpr::Con(
                    Arc::clone(&b.d_hash),
                    vec![],
                    vec![CoreExpr::Lit(Literal::double(x))],
                ),
                Type::con0(&b.double),
            ),
            SLit::Char(c) => (
                CoreExpr::Con(
                    Arc::clone(&b.c_hash),
                    vec![],
                    vec![CoreExpr::Lit(Literal::Char(c))],
                ),
                Type::con0(&b.char),
            ),
        }
    }

    fn elaborate_let(
        &mut self,
        x: Symbol,
        ann: &Option<SType>,
        rhs: &SExpr,
        body: &SExpr,
        span: Span,
    ) -> (CoreExpr, Type) {
        let declared = match ann {
            Some(sty) => match self.convert_ann(sty, span) {
                Ok(t) => Some(t),
                Err(d) => {
                    self.diag(d);
                    None
                }
            },
            None => None,
        };
        let recursive = occurs_in_expr(x, rhs);
        match declared {
            Some(sig) if matches!(sig, Type::ForallRep(..) | Type::ForallTy(..)) => {
                // Polymorphic local binding with a signature.
                if recursive {
                    self.locals.push((x, sig.clone()));
                }
                let rhs_core = self.check_binding_body(&[], rhs, &sig, span);
                if recursive {
                    self.locals.pop();
                }
                self.locals.push((x, sig.clone()));
                let (body_core, body_ty) = self.infer_expr(body);
                self.locals.pop();
                let kind = if recursive {
                    LetKind::Rec
                } else {
                    LetKind::NonRec
                };
                (
                    CoreExpr::Let(kind, x, sig, Box::new(rhs_core), Box::new(body_core)),
                    body_ty,
                )
            }
            declared => {
                // Monomorphic local let (the paper's footnote 11 relates
                // rep-defaulting to the monomorphism restriction; local
                // lets here are simply monomorphic).
                let ty = declared.unwrap_or_else(|| self.unifier.fresh_ty_meta());
                if recursive {
                    self.locals.push((x, ty.clone()));
                }
                let rhs_core = self.check_expr(rhs, &ty);
                if recursive {
                    self.locals.pop();
                }
                self.locals.push((x, ty.clone()));
                let (body_core, body_ty) = self.infer_expr(body);
                self.locals.pop();
                let kind = if recursive {
                    LetKind::Rec
                } else {
                    LetKind::NonRec
                };
                (
                    CoreExpr::Let(kind, x, ty, Box::new(rhs_core), Box::new(body_core)),
                    body_ty,
                )
            }
        }
    }

    fn elaborate_case(
        &mut self,
        scrut: &SExpr,
        alts: &[(SPat, SExpr)],
        result: &Type,
        span: Span,
    ) -> CoreExpr {
        let (scrut_core, scrut_ty) = self.infer_expr(scrut);
        if alts.is_empty() {
            self.diag(Diagnostic::error(
                ErrorCode::Parse,
                "empty case expression",
                span,
            ));
            return CoreExpr::Error(result.clone(), "empty case".to_owned());
        }
        let mut core_alts = Vec::new();
        for (pat, rhs) in alts {
            match pat {
                SPat::Con(cname, vars) => {
                    let Some(con) = self.env.datacon(*cname).cloned() else {
                        self.diag(Diagnostic::error(
                            ErrorCode::Scope,
                            format!("unknown data constructor `{cname}` in pattern"),
                            span,
                        ));
                        continue;
                    };
                    // Instantiate and match the result type against the
                    // scrutinee.
                    let mut fields = con.field_types.clone();
                    let mut result_ty = con.result.clone();
                    for p in &con.params {
                        match p {
                            TyParam::Rep(r) => {
                                let rho = self.unifier.fresh_rep_meta();
                                fields =
                                    fields.into_iter().map(|f| f.subst_rep(*r, &rho)).collect();
                                result_ty = result_ty.subst_rep(*r, &rho);
                            }
                            TyParam::Ty(v, k) => {
                                let meta = match k {
                                    Kind::Type(rep) => self.unifier.fresh_ty_meta_of(rep.clone()),
                                    _ => self.unifier.fresh_ty_meta(),
                                };
                                fields =
                                    fields.into_iter().map(|f| f.subst_ty(*v, &meta)).collect();
                                result_ty = result_ty.subst_ty(*v, &meta);
                            }
                        }
                    }
                    if let Err(e) = self.unifier.unify(&result_ty, &scrut_ty) {
                        self.diag(Diagnostic::error(
                            ErrorCode::TypeMismatch,
                            format!("pattern `{cname}` does not match scrutinee: {e}"),
                            span,
                        ));
                    }
                    if vars.len() != fields.len() {
                        self.diag(Diagnostic::error(
                            ErrorCode::TypeMismatch,
                            format!(
                                "constructor `{cname}` has {} fields, pattern binds {}",
                                fields.len(),
                                vars.len()
                            ),
                            span,
                        ));
                        continue;
                    }
                    for (v, t) in vars.iter().zip(&fields) {
                        self.locals.push((*v, t.clone()));
                    }
                    let rhs_core = self.check_expr(rhs, result);
                    for _ in vars {
                        self.locals.pop();
                    }
                    core_alts.push(CoreAlt::Con {
                        con,
                        binders: vars.iter().copied().zip(fields).collect(),
                        rhs: rhs_core,
                    });
                }
                SPat::Lit(lit) => {
                    let (mlit, lit_ty) = match lit {
                        SLit::IntHash(n) => {
                            (Literal::Int(*n), Type::con0(&self.env.builtins.int_hash))
                        }
                        SLit::DoubleHash(x) => (
                            Literal::double(*x),
                            Type::con0(&self.env.builtins.double_hash),
                        ),
                        SLit::CharHash(c) => {
                            (Literal::Char(*c), Type::con0(&self.env.builtins.char_hash))
                        }
                        SLit::Int(_) | SLit::Double(_) | SLit::Char(_) => {
                            self.diag(Diagnostic::error(
                                ErrorCode::Parse,
                                "boxed literal patterns are not supported; match on the unboxed payload (case x of I#[n] -> …)",
                                span,
                            ));
                            continue;
                        }
                    };
                    if let Err(e) = self.unifier.unify(&lit_ty, &scrut_ty) {
                        self.diag(Diagnostic::error(
                            ErrorCode::TypeMismatch,
                            format!("literal pattern mismatch: {e}"),
                            span,
                        ));
                    }
                    let rhs_core = self.check_expr(rhs, result);
                    core_alts.push(CoreAlt::Lit {
                        lit: mlit,
                        rhs: rhs_core,
                    });
                }
                SPat::UnboxedTuple(vars) => {
                    let metas: Vec<Type> =
                        vars.iter().map(|_| self.unifier.fresh_ty_meta()).collect();
                    if let Err(e) = self
                        .unifier
                        .unify(&scrut_ty, &Type::UnboxedTuple(metas.clone()))
                    {
                        self.diag(Diagnostic::error(
                            ErrorCode::TypeMismatch,
                            format!("unboxed tuple pattern mismatch: {e}"),
                            span,
                        ));
                    }
                    for (v, t) in vars.iter().zip(&metas) {
                        self.locals.push((*v, t.clone()));
                    }
                    let rhs_core = self.check_expr(rhs, result);
                    for _ in vars {
                        self.locals.pop();
                    }
                    core_alts.push(CoreAlt::Tuple {
                        binders: vars.iter().copied().zip(metas).collect(),
                        rhs: rhs_core,
                    });
                }
                SPat::Wild => {
                    let rhs_core = self.check_expr(rhs, result);
                    core_alts.push(CoreAlt::Default {
                        binder: None,
                        rhs: rhs_core,
                    });
                }
                SPat::Var(v) => {
                    self.locals.push((*v, scrut_ty.clone()));
                    let rhs_core = self.check_expr(rhs, result);
                    self.locals.pop();
                    core_alts.push(CoreAlt::Default {
                        binder: Some((*v, scrut_ty.clone())),
                        rhs: rhs_core,
                    });
                }
                SPat::Ann(..) => {
                    self.diag(Diagnostic::error(
                        ErrorCode::Parse,
                        "annotated patterns are not allowed in case alternatives",
                        span,
                    ));
                }
            }
        }
        CoreExpr::case(scrut_core, core_alts)
    }

    fn elaborate_if(
        &mut self,
        c: &SExpr,
        t: &SExpr,
        f: &SExpr,
        result: &Type,
        _span: Span,
    ) -> CoreExpr {
        let bool_ty = Type::con0(&self.env.builtins.bool);
        let c_core = self.check_expr(c, &bool_ty);
        let t_core = self.check_expr(t, result);
        let f_core = self.check_expr(f, result);
        let b = &self.env.builtins;
        CoreExpr::case(
            c_core,
            vec![
                CoreAlt::Con {
                    con: Arc::clone(&b.false_con),
                    binders: vec![],
                    rhs: f_core,
                },
                CoreAlt::Con {
                    con: Arc::clone(&b.true_con),
                    binders: vec![],
                    rhs: t_core,
                },
            ],
        )
    }

    fn check_expr(&mut self, e: &SExpr, expected: &Type) -> CoreExpr {
        let span = e.span;
        match &e.node {
            SExprNode::Lam(pats, body) => self.check_clauses(pats, body, expected, span),
            SExprNode::Case(scrut, alts) => self.elaborate_case(scrut, alts, expected, span),
            SExprNode::If(c, t, f) => self.elaborate_if(c, t, f, expected, span),
            SExprNode::Let(x, ann, rhs, body) => {
                // Propagate the expected type into the body.
                let (core, ty) = self.elaborate_let(*x, ann, rhs, body, span);
                if let Err(err) = self.unifier.unify(&ty, expected) {
                    self.diag(Diagnostic::error(
                        ErrorCode::TypeMismatch,
                        format!("{err}"),
                        span,
                    ));
                }
                core
            }
            _ => {
                let (core, ty) = self.infer_expr(e);
                if let Err(err) = self.unifier.unify(&ty, expected) {
                    self.diag(Diagnostic::error(
                        ErrorCode::TypeMismatch,
                        format!("{err}"),
                        span,
                    ));
                }
                core
            }
        }
    }

    // =================================================================
    // Zonking Core
    // =================================================================

    fn zonk_ty_final(&mut self, ty: &Type, span: Span) -> Type {
        let z = self.unifier.zonk(ty);
        self.default_unsolved(&z, span)
    }

    /// Replaces any still-unsolved metavariables with defaults: rep
    /// metas with `LiftedRep` (§5.2) and type metas with a default type
    /// of the right representation.
    fn default_unsolved(&mut self, ty: &Type, span: Span) -> Type {
        match ty {
            Type::Var(v) if Unifier::is_ty_meta(*v) => {
                let rep = self
                    .unifier
                    .meta_kind_rep(*v)
                    .map(|r| self.unifier.zonk_rep(&r))
                    .unwrap_or(RepTy::LIFTED);
                let b = self.env.builtins.clone();
                let default = match rep.as_concrete() {
                    Some(Rep::Int) => Type::con0(&b.int_hash),
                    Some(Rep::Double) => Type::con0(&b.double_hash),
                    Some(Rep::Float) => Type::con0(&b.float_hash),
                    Some(Rep::Char) => Type::con0(&b.char_hash),
                    Some(Rep::Lifted) | None => Type::con0(&b.unit),
                    Some(other) => {
                        self.diag(Diagnostic::error(
                            ErrorCode::TypeMismatch,
                            format!("ambiguous type with representation `{other}`"),
                            span,
                        ));
                        Type::con0(&b.unit)
                    }
                };
                self.unifier.solve_ty_meta(*v, default.clone());
                default
            }
            Type::Var(_) => ty.clone(),
            Type::Con(tc, args) => Type::Con(
                tc.clone(),
                args.iter()
                    .map(|a| self.default_unsolved(a, span))
                    .collect(),
            ),
            Type::Fun(a, b) => Type::fun(
                self.default_unsolved(a, span),
                self.default_unsolved(b, span),
            ),
            Type::ForallTy(v, k, body) => {
                Type::forall_ty(*v, k.clone(), self.default_unsolved(body, span))
            }
            Type::ForallRep(r, body) => Type::forall_rep(*r, self.default_unsolved(body, span)),
            Type::UnboxedTuple(ts) => {
                Type::UnboxedTuple(ts.iter().map(|t| self.default_unsolved(t, span)).collect())
            }
            Type::Dict(c, t) => Type::Dict(*c, Box::new(self.default_unsolved(t, span))),
        }
    }

    fn zonk_core(&mut self, e: CoreExpr) -> CoreExpr {
        let span = Span::SYNTHETIC;
        match e {
            CoreExpr::Var(_) | CoreExpr::Global(_) | CoreExpr::Lit(_) => e,
            CoreExpr::App(f, a) => CoreExpr::app(self.zonk_core(*f), self.zonk_core(*a)),
            CoreExpr::TyApp(f, t) => {
                let t = self.zonk_ty_final(&t, span);
                CoreExpr::ty_app(self.zonk_core(*f), t)
            }
            CoreExpr::RepApp(f, r) => {
                let mut r = self.unifier.zonk_rep(&r);
                if r.free_vars().iter().any(|v| Unifier::is_rep_meta(*v)) {
                    // Unconstrained rep application: default to lifted.
                    for v in r.free_vars() {
                        if Unifier::is_rep_meta(v) {
                            r = r.substitute(v, &RepTy::LIFTED);
                        }
                    }
                }
                CoreExpr::rep_app(self.zonk_core(*f), r)
            }
            CoreExpr::Lam(x, t, b) => {
                let t = self.zonk_ty_final(&t, span);
                CoreExpr::lam(x, t, self.zonk_core(*b))
            }
            CoreExpr::TyLam(a, k, b) => {
                let k = self.unifier.zonk_kind(&k);
                CoreExpr::ty_lam(a, k, self.zonk_core(*b))
            }
            CoreExpr::RepLam(r, b) => CoreExpr::rep_lam(r, self.zonk_core(*b)),
            CoreExpr::Let(kind, x, t, rhs, body) => {
                let t = self.zonk_ty_final(&t, span);
                CoreExpr::Let(
                    kind,
                    x,
                    t,
                    Box::new(self.zonk_core(*rhs)),
                    Box::new(self.zonk_core(*body)),
                )
            }
            CoreExpr::Case(scrut, alts) => {
                let scrut = self.zonk_core(*scrut);
                let alts = alts
                    .into_iter()
                    .map(|alt| match alt {
                        CoreAlt::Con { con, binders, rhs } => CoreAlt::Con {
                            con,
                            binders: binders
                                .into_iter()
                                .map(|(x, t)| (x, self.zonk_ty_final(&t, span)))
                                .collect(),
                            rhs: self.zonk_core(rhs),
                        },
                        CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
                            lit,
                            rhs: self.zonk_core(rhs),
                        },
                        CoreAlt::Tuple { binders, rhs } => CoreAlt::Tuple {
                            binders: binders
                                .into_iter()
                                .map(|(x, t)| (x, self.zonk_ty_final(&t, span)))
                                .collect(),
                            rhs: self.zonk_core(rhs),
                        },
                        CoreAlt::Default { binder, rhs } => CoreAlt::Default {
                            binder: binder.map(|(x, t)| (x, self.zonk_ty_final(&t, span))),
                            rhs: self.zonk_core(rhs),
                        },
                    })
                    .collect();
                CoreExpr::Case(Box::new(scrut), alts)
            }
            CoreExpr::Con(con, ty_args, fields) => {
                let ty_args = ty_args
                    .into_iter()
                    .map(|a| match a {
                        TyArg::Ty(t) => TyArg::Ty(self.zonk_ty_final(&t, span)),
                        TyArg::Rep(r) => {
                            let mut r = self.unifier.zonk_rep(&r);
                            for v in r.free_vars() {
                                if Unifier::is_rep_meta(v) {
                                    r = r.substitute(v, &RepTy::LIFTED);
                                }
                            }
                            TyArg::Rep(r)
                        }
                    })
                    .collect();
                let fields = fields.into_iter().map(|f| self.zonk_core(f)).collect();
                CoreExpr::Con(con, ty_args, fields)
            }
            CoreExpr::Prim(op, args) => {
                CoreExpr::Prim(op, args.into_iter().map(|a| self.zonk_core(a)).collect())
            }
            CoreExpr::Tuple(args) => {
                CoreExpr::Tuple(args.into_iter().map(|a| self.zonk_core(a)).collect())
            }
            CoreExpr::Error(t, msg) => CoreExpr::Error(self.zonk_ty_final(&t, span), msg),
        }
    }

    // =================================================================
    // Top level
    // =================================================================

    fn elaborate_top_bind(
        &mut self,
        name: Symbol,
        params: &[SPat],
        body: &SExpr,
        sig: Option<&Type>,
        span: Span,
    ) {
        match sig {
            Some(sig) => {
                let sig = sig.clone();
                let core = self.check_binding_body(params, body, &sig, span);
                let core = self.finalize_binding(core, span);
                self.program.bindings.push(TopBind {
                    name,
                    ty: sig,
                    expr: core,
                });
            }
            None => {
                // Infer, then generalize with rep defaulting (§5.2).
                let self_ty = self.unifier.fresh_ty_meta();
                self.locals.push((name, self_ty.clone()));
                let lam = if params.is_empty() {
                    body.clone()
                } else {
                    SExpr::new(
                        SExprNode::Lam(params.to_vec(), Box::new(body.clone())),
                        span,
                    )
                };
                let (core, ty) = self.infer_expr(&lam);
                self.locals.pop();
                if let Err(e) = self.unifier.unify(&self_ty, &ty) {
                    self.diag(Diagnostic::error(
                        ErrorCode::TypeMismatch,
                        format!("recursive binding type mismatch: {e}"),
                        span,
                    ));
                }
                // 1. Default all rep metavariables to LiftedRep: we never
                //    infer levity polymorphism.
                self.unifier.default_rep_metas(&ty);
                // 2. Generalize remaining type metavariables at their
                //    (now concrete) kinds.
                let metas = self.unifier.free_ty_metas(&ty);
                let mut quantified = Vec::new();
                for m in metas {
                    let rep = self
                        .unifier
                        .meta_kind_rep(m)
                        .map(|r| self.unifier.zonk_rep(&r))
                        .unwrap_or(RepTy::LIFTED);
                    let fresh = self.supply.fresh("a");
                    self.unifier.solve_ty_meta(m, Type::Var(fresh));
                    quantified.push((fresh, Kind::Type(rep)));
                }
                let core = self.finalize_binding(core, span);
                let ty = self.zonk_ty_final(&ty, span);
                let gen_ty = quantified
                    .iter()
                    .rev()
                    .fold(ty, |acc, (v, k)| Type::forall_ty(*v, k.clone(), acc));
                let gen_core = quantified
                    .iter()
                    .rev()
                    .fold(core, |acc, (v, k)| CoreExpr::ty_lam(*v, k.clone(), acc));
                self.env.define_global(name, gen_ty.clone());
                self.program.bindings.push(TopBind {
                    name,
                    ty: gen_ty,
                    expr: gen_core,
                });
            }
        }
    }
}

/// A spine argument.
enum SpineArg<'a> {
    /// An ordinary argument.
    Term(&'a SExpr),
    /// A visible type application.
    Type(&'a SType),
}

impl<'a> SpineArg<'a> {
    fn clone_ref(&self) -> SpineArg<'a> {
        match self {
            SpineArg::Term(e) => SpineArg::Term(e),
            SpineArg::Type(t) => SpineArg::Type(t),
        }
    }
}

/// Does `x` occur free in the expression? (Detects recursive lets.)
fn occurs_in_expr(x: Symbol, e: &SExpr) -> bool {
    match &e.node {
        SExprNode::Var(v) => *v == x,
        SExprNode::Con(_) | SExprNode::Lit(_) | SExprNode::Str(_) => false,
        SExprNode::App(a, b) => occurs_in_expr(x, a) || occurs_in_expr(x, b),
        SExprNode::TyApp(a, _) => occurs_in_expr(x, a),
        SExprNode::Lam(pats, body) => {
            !pats.iter().any(|p| pat_binds(p, x)) && occurs_in_expr(x, body)
        }
        SExprNode::Let(y, _, rhs, body) => {
            if *y == x {
                // Shadowed in both rhs (if recursive) and body.
                false
            } else {
                occurs_in_expr(x, rhs) || occurs_in_expr(x, body)
            }
        }
        SExprNode::Case(scrut, alts) => {
            occurs_in_expr(x, scrut)
                || alts
                    .iter()
                    .any(|(p, rhs)| !pat_binds(p, x) && occurs_in_expr(x, rhs))
        }
        SExprNode::If(c, t, f) => {
            occurs_in_expr(x, c) || occurs_in_expr(x, t) || occurs_in_expr(x, f)
        }
        SExprNode::UnboxedTuple(parts) => parts.iter().any(|p| occurs_in_expr(x, p)),
        SExprNode::Ann(a, _) => occurs_in_expr(x, a),
    }
}

fn pat_binds(p: &SPat, x: Symbol) -> bool {
    match p {
        SPat::Var(v) | SPat::Ann(v, _) => *v == x,
        SPat::Con(_, vars) | SPat::UnboxedTuple(vars) => vars.contains(&x),
        SPat::Lit(_) | SPat::Wild => false,
    }
}

/// Replaces free variables by Core expressions (dictionary placeholder
/// resolution; placeholders are globally fresh, so shadowing cannot
/// occur).
fn replace_vars(e: CoreExpr, map: &HashMap<Symbol, CoreExpr>) -> CoreExpr {
    if map.is_empty() {
        return e;
    }
    match e {
        CoreExpr::Var(v) => match map.get(&v) {
            Some(r) => r.clone(),
            None => CoreExpr::Var(v),
        },
        CoreExpr::Global(_) | CoreExpr::Lit(_) | CoreExpr::Error(..) => e,
        CoreExpr::App(f, a) => CoreExpr::app(replace_vars(*f, map), replace_vars(*a, map)),
        CoreExpr::TyApp(f, t) => CoreExpr::ty_app(replace_vars(*f, map), t),
        CoreExpr::RepApp(f, r) => CoreExpr::rep_app(replace_vars(*f, map), r),
        CoreExpr::Lam(x, t, b) => CoreExpr::lam(x, t, replace_vars(*b, map)),
        CoreExpr::TyLam(a, k, b) => CoreExpr::ty_lam(a, k, replace_vars(*b, map)),
        CoreExpr::RepLam(r, b) => CoreExpr::rep_lam(r, replace_vars(*b, map)),
        CoreExpr::Let(kind, x, t, rhs, body) => CoreExpr::Let(
            kind,
            x,
            t,
            Box::new(replace_vars(*rhs, map)),
            Box::new(replace_vars(*body, map)),
        ),
        CoreExpr::Case(scrut, alts) => CoreExpr::Case(
            Box::new(replace_vars(*scrut, map)),
            alts.into_iter()
                .map(|alt| match alt {
                    CoreAlt::Con { con, binders, rhs } => CoreAlt::Con {
                        con,
                        binders,
                        rhs: replace_vars(rhs, map),
                    },
                    CoreAlt::Lit { lit, rhs } => CoreAlt::Lit {
                        lit,
                        rhs: replace_vars(rhs, map),
                    },
                    CoreAlt::Tuple { binders, rhs } => CoreAlt::Tuple {
                        binders,
                        rhs: replace_vars(rhs, map),
                    },
                    CoreAlt::Default { binder, rhs } => CoreAlt::Default {
                        binder,
                        rhs: replace_vars(rhs, map),
                    },
                })
                .collect(),
        ),
        CoreExpr::Con(con, ty_args, fields) => CoreExpr::Con(
            con,
            ty_args,
            fields.into_iter().map(|f| replace_vars(f, map)).collect(),
        ),
        CoreExpr::Prim(op, args) => {
            CoreExpr::Prim(op, args.into_iter().map(|a| replace_vars(a, map)).collect())
        }
        CoreExpr::Tuple(args) => {
            CoreExpr::Tuple(args.into_iter().map(|a| replace_vars(a, map)).collect())
        }
    }
}

/// Elaborates a whole surface module into Core.
///
/// # Errors
///
/// All diagnostics accumulated during elaboration (at least one error).
pub fn elaborate_module(module: &Module) -> Result<Elaborated, Diagnostics> {
    let mut el = Elaborator::new();

    // Pass 0: datatypes.
    for decl in &module.decls {
        if let SDecl::Data {
            name,
            params,
            cons,
            span,
        } = decl
        {
            el.process_data(*name, params, cons, *span);
        }
    }
    // Pass 1: type families (§7.1): standalone representation checking.
    for decl in &module.decls {
        if let SDecl::TypeFamily {
            name,
            param,
            result_kind,
            equations,
            span,
        } = decl
        {
            match check_family(&el.env, *name, *param, result_kind, equations, *span) {
                Ok(info) => el.families.push(info),
                Err(d) => el.diag(d),
            }
        }
    }
    // Pass 2: classes (§7.3).
    for decl in &module.decls {
        if let SDecl::Class {
            name,
            var,
            var_kind,
            methods,
            span,
        } = decl
        {
            el.process_class(*name, *var, var_kind, methods, *span);
        }
    }
    // Pass 3: signatures and instance headers.
    let mut sigs: HashMap<Symbol, Type> = HashMap::new();
    for decl in &module.decls {
        if let SDecl::Sig { name, ty, span } = decl {
            match el.convert_sig(ty, *span) {
                Ok(t) => {
                    el.env.define_global(*name, t.clone());
                    sigs.insert(*name, t);
                }
                Err(d) => el.diag(d),
            }
        }
    }
    let mut instance_headers = Vec::new();
    for decl in &module.decls {
        if let SDecl::Instance {
            class,
            head,
            methods,
            span,
        } = decl
        {
            if let Some((dict_global, head_ty, head_rep)) =
                el.register_instance_header(*class, head, *span)
            {
                instance_headers.push((*class, dict_global, head_ty, head_rep, methods, *span));
            }
        }
    }
    // Pass 4: value bindings in source order.
    for decl in &module.decls {
        if let SDecl::Bind {
            name,
            params,
            body,
            span,
        } = decl
        {
            let sig = sigs.get(name).cloned();
            el.elaborate_top_bind(*name, params, body, sig.as_ref(), *span);
        }
    }
    // Pass 5: instance bodies.
    for (class, dict_global, head_ty, head_rep, methods, span) in instance_headers {
        el.elaborate_instance_bodies(class, dict_global, head_ty, head_rep, methods, span);
    }

    if el.diags.has_errors() {
        return Err(el.diags);
    }
    Ok(Elaborated {
        program: el.program,
        env: el.env,
        classes: el.classes,
        families: el.families,
        warnings: el.diags,
    })
}
