//! Conversion from surface types/kinds to Core types/kinds.
//!
//! Surface signatures default as the paper prescribes: implicitly-bound
//! type variables get kind `Type` (§5.2's "never infer levity
//! polymorphism" applied to signatures — levity polymorphism must be
//! *declared* with an explicit `forall (r :: Rep) (a :: TYPE r)`).

use std::collections::HashMap;

use levity_core::diag::{Diagnostic, ErrorCode, Span};
use levity_core::kind::Kind;
use levity_core::rep::{Rep, RepTy};
use levity_core::symbol::Symbol;

use levity_ir::typecheck::TypeEnv;
use levity_ir::types::Type;
use levity_surface::ast::{SKind, SRep, SType};

/// Binders in scope during conversion.
#[derive(Clone, Debug, Default)]
pub struct ConvScope {
    /// Type variables with their kinds.
    pub ty_vars: Vec<(Symbol, Kind)>,
    /// Representation variables.
    pub rep_vars: Vec<Symbol>,
}

impl ConvScope {
    /// An empty scope.
    pub fn new() -> ConvScope {
        ConvScope::default()
    }

    fn has_ty(&self, v: Symbol) -> bool {
        self.ty_vars.iter().any(|(n, _)| *n == v)
    }

    fn has_rep(&self, v: Symbol) -> bool {
        self.rep_vars.contains(&v)
    }
}

fn rep_con(name: Symbol) -> Option<Rep> {
    Some(match name.as_str() {
        "LiftedRep" => Rep::Lifted,
        "UnliftedRep" => Rep::Unlifted,
        "IntRep" => Rep::Int,
        "Int8Rep" => Rep::Int8,
        "Int16Rep" => Rep::Int16,
        "Int32Rep" => Rep::Int32,
        "Int64Rep" => Rep::Int64,
        "WordRep" => Rep::Word,
        "Word8Rep" => Rep::Word8,
        "Word64Rep" => Rep::Word64,
        "CharRep" => Rep::Char,
        "FloatRep" => Rep::Float,
        "DoubleRep" => Rep::Double,
        "AddrRep" => Rep::Addr,
        _ => return None,
    })
}

/// Converts a surface representation.
///
/// Unknown lowercase names are *free* rep variables; the caller decides
/// whether they are in scope (`scope`) or implicitly bound (collected in
/// `implicit_reps`, used by class heads like `class Num (a :: TYPE r)`).
pub fn convert_rep(
    srep: &SRep,
    scope: &ConvScope,
    implicit_reps: &mut Vec<Symbol>,
    span: Span,
) -> Result<RepTy, Diagnostic> {
    match srep {
        SRep::Con(name) => match rep_con(*name) {
            Some(r) => Ok(RepTy::Concrete(r)),
            None => Err(Diagnostic::error(
                ErrorCode::Scope,
                format!("unknown runtime representation `{name}`"),
                span,
            )),
        },
        SRep::Var(v) => {
            if !scope.has_rep(*v) && !implicit_reps.contains(v) {
                implicit_reps.push(*v);
            }
            Ok(RepTy::Var(*v))
        }
        SRep::Tuple(parts) => {
            let parts = parts
                .iter()
                .map(|p| convert_rep(p, scope, implicit_reps, span))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(levity_core::rep::normalize_tuple(parts))
        }
    }
}

/// Converts a surface kind.
pub fn convert_kind(
    skind: &SKind,
    scope: &ConvScope,
    implicit_reps: &mut Vec<Symbol>,
    span: Span,
) -> Result<Kind, Diagnostic> {
    match skind {
        SKind::Type => Ok(Kind::TYPE),
        SKind::Rep => Ok(Kind::Rep),
        SKind::Type_(rep) => Ok(Kind::Type(convert_rep(rep, scope, implicit_reps, span)?)),
        SKind::Arrow(a, b) => Ok(Kind::arrow(
            convert_kind(a, scope, implicit_reps, span)?,
            convert_kind(b, scope, implicit_reps, span)?,
        )),
    }
}

/// Options for type conversion.
#[derive(Clone, Copy, Debug)]
pub struct ConvertOptions {
    /// Implicitly quantify free type variables at kind `Type` (top-level
    /// signatures do; annotations inside expressions do not).
    pub implicit_quantify: bool,
    /// Source span for diagnostics.
    pub span: Span,
}

/// Converts a surface type to a Core type.
///
/// # Errors
///
/// Unknown constructors, unknown classes in contexts, arity errors.
pub fn convert_type(
    env: &TypeEnv,
    classes: &dyn Fn(Symbol) -> bool,
    sty: &SType,
    scope: &mut ConvScope,
    opts: ConvertOptions,
) -> Result<Type, Diagnostic> {
    if opts.implicit_quantify {
        // Collect free type variables not bound by explicit foralls and
        // quantify them at kind Type (§5.2: no inferred levity
        // polymorphism).
        let mut free = Vec::new();
        collect_free_ty_vars(sty, &mut scope.clone(), &mut free);
        let inner_opts = ConvertOptions {
            implicit_quantify: false,
            ..opts
        };
        for v in &free {
            scope.ty_vars.push((*v, Kind::TYPE));
        }
        let body = convert_type(env, classes, sty, scope, inner_opts)?;
        for _ in &free {
            scope.ty_vars.pop();
        }
        let mut out = body;
        for v in free.into_iter().rev() {
            out = Type::forall_ty(v, Kind::TYPE, out);
        }
        return Ok(out);
    }
    convert(env, classes, sty, scope, opts.span)
}

fn convert(
    env: &TypeEnv,
    classes: &dyn Fn(Symbol) -> bool,
    sty: &SType,
    scope: &mut ConvScope,
    span: Span,
) -> Result<Type, Diagnostic> {
    match sty {
        SType::Con(name) => match env.tycon(*name) {
            Some(tc) => Ok(Type::Con(tc.clone(), Vec::new())),
            None => Err(Diagnostic::error(
                ErrorCode::Scope,
                format!("unknown type constructor `{name}`"),
                span,
            )),
        },
        SType::Var(v) => {
            if scope.has_ty(*v) {
                Ok(Type::Var(*v))
            } else {
                Err(Diagnostic::error(
                    ErrorCode::Scope,
                    format!("type variable `{v}` is not in scope (bind it with forall)"),
                    span,
                ))
            }
        }
        SType::App(f, a) => {
            let fun = convert(env, classes, f, scope, span)?;
            let arg = convert(env, classes, a, scope, span)?;
            match fun {
                Type::Con(tc, mut args) => {
                    if args.len() >= tc.kind.arity() {
                        return Err(Diagnostic::error(
                            ErrorCode::KindMismatch,
                            format!(
                                "type constructor `{}` applied to too many arguments",
                                tc.name
                            ),
                            span,
                        ));
                    }
                    args.push(arg);
                    Ok(Type::Con(tc, args))
                }
                other => Err(Diagnostic::error(
                    ErrorCode::KindMismatch,
                    format!(
                        "cannot apply type `{other}` (higher-kinded variables are not supported)"
                    ),
                    span,
                )),
            }
        }
        SType::Fun(a, b) => Ok(Type::fun(
            convert(env, classes, a, scope, span)?,
            convert(env, classes, b, scope, span)?,
        )),
        SType::Forall(binders, body) => {
            let mut converted = Vec::new();
            let mut implicit = Vec::new();
            for (v, k) in binders {
                let kind = match k {
                    None => Kind::TYPE,
                    Some(sk) => convert_kind(sk, scope, &mut implicit, span)?,
                };
                converted.push((*v, kind));
            }
            if let Some(r) = implicit
                .iter()
                .find(|r| !converted.iter().any(|(v, k)| v == *r && *k == Kind::Rep))
            {
                return Err(Diagnostic::error(
                    ErrorCode::Scope,
                    format!(
                        "representation variable `{r}` must be bound with `forall ({r} :: Rep)`"
                    ),
                    span,
                ));
            }
            let mut pushed_reps = 0;
            let mut pushed_tys = 0;
            for (v, kind) in &converted {
                if *kind == Kind::Rep {
                    scope.rep_vars.push(*v);
                    pushed_reps += 1;
                } else {
                    scope.ty_vars.push((*v, kind.clone()));
                    pushed_tys += 1;
                }
            }
            let inner = convert(env, classes, body, scope, span);
            for _ in 0..pushed_reps {
                scope.rep_vars.pop();
            }
            for _ in 0..pushed_tys {
                scope.ty_vars.pop();
            }
            let mut out = inner?;
            for (v, kind) in converted.into_iter().rev() {
                out = if kind == Kind::Rep {
                    Type::forall_rep(v, out)
                } else {
                    Type::forall_ty(v, kind, out)
                };
            }
            Ok(out)
        }
        SType::UnboxedTuple(parts) => Ok(Type::UnboxedTuple(
            parts
                .iter()
                .map(|p| convert(env, classes, p, scope, span))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        SType::Qual(ctx, body) => {
            // `C τ => σ` becomes `Dict C τ -> σ`: constraints are
            // dictionary arguments (§7.3).
            let mut out = convert(env, classes, body, scope, span)?;
            for (cls, arg) in ctx.iter().rev() {
                if !classes(*cls) {
                    return Err(Diagnostic::error(
                        ErrorCode::ClassResolution,
                        format!("unknown class `{cls}` in constraint"),
                        span,
                    ));
                }
                let arg_ty = convert(env, classes, arg, scope, span)?;
                out = Type::fun(Type::Dict(*cls, Box::new(arg_ty)), out);
            }
            Ok(out)
        }
    }
}

/// Free type variables of a surface type (for implicit quantification).
fn collect_free_ty_vars(sty: &SType, scope: &mut ConvScope, out: &mut Vec<Symbol>) {
    match sty {
        SType::Con(_) => {}
        SType::Var(v) => {
            if !scope.has_ty(*v) && !out.contains(v) {
                out.push(*v);
            }
        }
        SType::App(a, b) | SType::Fun(a, b) => {
            collect_free_ty_vars(a, scope, out);
            collect_free_ty_vars(b, scope, out);
        }
        SType::Forall(binders, body) => {
            let mut pushed = 0;
            for (v, k) in binders {
                if matches!(k, Some(SKind::Rep)) {
                    scope.rep_vars.push(*v);
                } else {
                    scope.ty_vars.push((*v, Kind::TYPE));
                    pushed += 1;
                }
            }
            collect_free_ty_vars(body, scope, out);
            for _ in 0..pushed {
                scope.ty_vars.pop();
            }
            for (v, k) in binders {
                if matches!(k, Some(SKind::Rep)) {
                    let _ = v;
                    scope.rep_vars.pop();
                }
            }
        }
        SType::UnboxedTuple(parts) => parts
            .iter()
            .for_each(|p| collect_free_ty_vars(p, scope, out)),
        SType::Qual(ctx, body) => {
            for (_, t) in ctx {
                collect_free_ty_vars(t, scope, out);
            }
            collect_free_ty_vars(body, scope, out);
        }
    }
}

/// A map of known class names, passed as a closure to conversion.
pub fn class_checker(map: &HashMap<Symbol, impl Sized>) -> impl Fn(Symbol) -> bool + '_ {
    move |name| map.contains_key(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use levity_surface::parser::parse_type;

    fn conv(src: &str) -> Result<Type, Diagnostic> {
        let env = TypeEnv::new();
        let sty = parse_type(src).unwrap();
        let mut scope = ConvScope::new();
        convert_type(
            &env,
            &|c: Symbol| c.as_str() == "Num",
            &sty,
            &mut scope,
            ConvertOptions {
                implicit_quantify: true,
                span: Span::SYNTHETIC,
            },
        )
    }

    #[test]
    fn simple_types() {
        assert_eq!(conv("Int# -> Int#").unwrap().to_string(), "Int# -> Int#");
        assert_eq!(conv("Maybe Int").unwrap().to_string(), "Maybe Int");
    }

    #[test]
    fn implicit_quantification_defaults_to_type() {
        // `a -> a` means `forall (a :: Type). a -> a` (§5.2).
        assert_eq!(conv("a -> a").unwrap().to_string(), "forall a. a -> a");
    }

    #[test]
    fn explicit_levity_polymorphism() {
        let t = conv("forall (r :: Rep) (a :: TYPE r). Int -> a").unwrap();
        assert_eq!(t.to_string(), "forall (r :: Rep) (a :: TYPE r). Int -> a");
    }

    #[test]
    fn unbound_rep_var_is_rejected() {
        let err = conv("forall (a :: TYPE r). a -> a").unwrap_err();
        assert_eq!(err.code, ErrorCode::Scope);
    }

    #[test]
    fn constraints_become_dictionary_arguments() {
        let t = conv("Num a => a -> a").unwrap();
        assert_eq!(t.to_string(), "forall a. Num a -> a -> a");
    }

    #[test]
    fn unknown_class_is_rejected() {
        assert!(conv("Eqq a => a").is_err());
    }

    #[test]
    fn unknown_tycon_is_rejected() {
        assert!(conv("Nope -> Int").is_err());
    }

    #[test]
    fn unboxed_tuples_convert() {
        assert_eq!(
            conv("(# Int#, Bool #) -> Int#").unwrap().to_string(),
            "(# Int#, Bool #) -> Int#"
        );
    }

    #[test]
    fn over_applied_tycon_is_rejected() {
        assert!(conv("Maybe Int Bool").is_err());
    }
}
