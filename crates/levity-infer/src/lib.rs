//! Type inference and elaboration for the levity-polymorphism pipeline.
//!
//! This crate reproduces the inference story of §5.2 and the class story
//! of §7.3:
//!
//! * [`unify`] — unification with *representation* metavariables: a
//!   λ-binder gets `α :: TYPE ρ` with `ρ` itself a unification variable,
//!   solved "using GHC's existing unification machinery";
//! * [`elaborate`] — surface-to-Core elaboration: declared
//!   levity-polymorphic signatures are *checked* (skolemized), inferred
//!   rep variables are *defaulted* to `LiftedRep` (never generalized),
//!   and classes/instances undergo dictionary translation;
//! * [`convert`] — surface types to Core types, with implicit
//!   quantification at kind `Type`;
//! * [`families`] — closed type families and the §7.1 representation-
//!   homogeneity check;
//! * [`legacy`] — the pre-levity-polymorphism `OpenKind` sub-kinding
//!   system (§3.2–3.3), kept as an executable baseline: it shows
//!   `error`'s magic working and `myError` silently losing it.
//!
//! # Example
//!
//! ```
//! use levity_infer::elaborate::elaborate_module;
//! use levity_surface::parser::parse_module;
//!
//! // myError keeps its levity polymorphism because it is *declared*:
//! let m = parse_module(
//!     "myError :: forall (r :: Rep) (a :: TYPE r). Int -> a\n\
//!      myError s = error \"program error\"\n",
//! ).unwrap();
//! let out = elaborate_module(&m).expect("elaboration succeeds");
//! let ty = out.env.global("myError".into()).unwrap();
//! assert_eq!(ty.to_string(), "forall (r :: Rep) (a :: TYPE r). Int -> a");
//! ```

#![warn(missing_docs)]

pub mod convert;
pub mod elaborate;
pub mod families;
pub mod legacy;
pub mod unify;

pub use elaborate::{elaborate_module, ClassEnv, ClassInfo, Elaborated, InstanceInfo};
pub use families::FamilyInfo;
pub use unify::{Unifier, UnifyError};
