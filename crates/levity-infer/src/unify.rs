//! Unification with *representation* unification variables (§5.2).
//!
//! The paper's key inference move: when checking `λx -> e`, invent a
//! type unification variable `α` — and, because the kind of `α` is no
//! longer forced to be `Type`, also invent a *representation* variable
//! `ρ` and set `α :: TYPE ρ`. If `x` is used at a lifted type, `ρ`
//! unifies with `LiftedRep` through the ordinary machinery.
//!
//! Metavariables are represented as specially-named [`Symbol`]s
//! (`?t0`, `?r0`) resolved through side tables, and *zonking* (§8.2's
//! term) replaces solved metavariables by their contents.
//!
//! Following §5.2, solved-ness is never required of a `ρ` at
//! generalization time: [`Unifier::default_rep_metas`] sets every
//! unsolved representation metavariable to `LiftedRep` — "we never infer
//! levity polymorphism."

use std::collections::HashMap;

use levity_core::kind::Kind;
use levity_core::rep::{normalize_sum, normalize_tuple, Rep, RepTy};
use levity_core::symbol::Symbol;

use levity_ir::types::Type;

/// A unification failure.
#[derive(Clone, Debug, PartialEq)]
pub enum UnifyError {
    /// The two types cannot be made equal.
    Mismatch(Type, Type),
    /// The two representations cannot be made equal.
    RepMismatch(RepTy, RepTy),
    /// The two kinds cannot be made equal.
    KindMismatch(Kind, Kind),
    /// A metavariable occurs in the type it would be bound to.
    Occurs(Symbol, Type),
    /// A rep metavariable occurs in the representation it would bind to.
    RepOccurs(Symbol, RepTy),
}

impl std::fmt::Display for UnifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnifyError::Mismatch(a, b) => write!(f, "cannot match `{a}` with `{b}`"),
            UnifyError::RepMismatch(a, b) => {
                write!(f, "cannot match representation `{a}` with `{b}`")
            }
            UnifyError::KindMismatch(a, b) => write!(f, "cannot match kind `{a}` with `{b}`"),
            UnifyError::Occurs(v, t) => write!(f, "occurs check: `{v}` in `{t}`"),
            UnifyError::RepOccurs(v, r) => write!(f, "occurs check: `{v}` in `{r}`"),
        }
    }
}

impl std::error::Error for UnifyError {}

/// The unifier state: metavariable tables and a name supply.
#[derive(Debug, Default)]
pub struct Unifier {
    ty_solutions: HashMap<Symbol, Type>,
    rep_solutions: HashMap<Symbol, RepTy>,
    /// The kind of each type metavariable (always `TYPE ρ`).
    ty_kinds: HashMap<Symbol, RepTy>,
    /// Kind-representations of *rigid* (skolem) type variables, declared
    /// when a signature is skolemized, so that solving `α := a` can also
    /// solve `α`'s rep against `a`'s.
    rigid_kinds: HashMap<Symbol, RepTy>,
    next_ty: u64,
    next_rep: u64,
}

impl Unifier {
    /// A fresh unifier.
    pub fn new() -> Unifier {
        Unifier::default()
    }

    /// Is this symbol a type metavariable?
    pub fn is_ty_meta(name: Symbol) -> bool {
        name.as_str().starts_with("?t")
    }

    /// Is this symbol a representation metavariable?
    pub fn is_rep_meta(name: Symbol) -> bool {
        name.as_str().starts_with("?r")
    }

    /// A fresh representation metavariable `ρ`.
    pub fn fresh_rep_meta(&mut self) -> RepTy {
        let n = self.next_rep;
        self.next_rep += 1;
        RepTy::Var(Symbol::intern(&format!("?r{n}")))
    }

    /// A fresh type metavariable `α :: TYPE ρ` with `ρ` itself fresh —
    /// the §5.2 recipe.
    pub fn fresh_ty_meta(&mut self) -> Type {
        let rep = self.fresh_rep_meta();
        self.fresh_ty_meta_of(rep)
    }

    /// A fresh type metavariable of kind `TYPE rep`.
    pub fn fresh_ty_meta_of(&mut self, rep: RepTy) -> Type {
        let n = self.next_ty;
        self.next_ty += 1;
        let name = Symbol::intern(&format!("?t{n}"));
        self.ty_kinds.insert(name, rep);
        Type::Var(name)
    }

    /// The kind-representation of a type metavariable.
    pub fn meta_kind_rep(&self, name: Symbol) -> Option<RepTy> {
        self.ty_kinds.get(&name).map(|r| self.zonk_rep(r))
    }

    /// Declares the kind-representation of a rigid (skolem) type
    /// variable, so unification can propagate representation equalities
    /// through it.
    pub fn declare_rigid(&mut self, name: Symbol, rep: RepTy) {
        self.rigid_kinds.insert(name, rep);
    }

    // -----------------------------------------------------------------
    // Zonking
    // -----------------------------------------------------------------

    /// Replaces solved metavariables in a representation.
    pub fn zonk_rep(&self, rep: &RepTy) -> RepTy {
        match rep {
            RepTy::Var(v) => match self.rep_solutions.get(v) {
                Some(r) => self.zonk_rep(r),
                None => rep.clone(),
            },
            RepTy::Concrete(_) => rep.clone(),
            RepTy::Tuple(parts) => {
                normalize_tuple(parts.iter().map(|p| self.zonk_rep(p)).collect())
            }
            RepTy::Sum(parts) => normalize_sum(parts.iter().map(|p| self.zonk_rep(p)).collect()),
        }
    }

    /// Replaces solved metavariables in a kind.
    pub fn zonk_kind(&self, kind: &Kind) -> Kind {
        match kind {
            Kind::Type(rep) => Kind::Type(self.zonk_rep(rep)),
            Kind::Arrow(a, b) => Kind::arrow(self.zonk_kind(a), self.zonk_kind(b)),
            Kind::Rep => Kind::Rep,
        }
    }

    /// Replaces solved metavariables in a type. "We must update types …
    /// before checking a type's levity (GHC calls this process zonking)"
    /// (§8.2).
    pub fn zonk(&self, ty: &Type) -> Type {
        match ty {
            Type::Var(v) => match self.ty_solutions.get(v) {
                Some(t) => self.zonk(t),
                None => ty.clone(),
            },
            Type::Con(tc, args) => {
                Type::Con(tc.clone(), args.iter().map(|a| self.zonk(a)).collect())
            }
            Type::Fun(a, b) => Type::fun(self.zonk(a), self.zonk(b)),
            Type::ForallTy(v, k, body) => Type::forall_ty(*v, self.zonk_kind(k), self.zonk(body)),
            Type::ForallRep(r, body) => Type::forall_rep(*r, self.zonk(body)),
            Type::UnboxedTuple(ts) => Type::UnboxedTuple(ts.iter().map(|t| self.zonk(t)).collect()),
            Type::Dict(c, t) => Type::Dict(*c, Box::new(self.zonk(t))),
        }
    }

    // -----------------------------------------------------------------
    // Unification
    // -----------------------------------------------------------------

    /// Unifies two representations.
    ///
    /// # Errors
    ///
    /// [`UnifyError::RepMismatch`] / [`UnifyError::RepOccurs`].
    pub fn unify_rep(&mut self, r1: &RepTy, r2: &RepTy) -> Result<(), UnifyError> {
        let r1 = self.zonk_rep(r1);
        let r2 = self.zonk_rep(r2);
        match (&r1, &r2) {
            (RepTy::Var(v1), RepTy::Var(v2)) if v1 == v2 => Ok(()),
            (RepTy::Var(v), other) if Self::is_rep_meta(*v) => {
                if other.free_vars().contains(v) {
                    return Err(UnifyError::RepOccurs(*v, other.clone()));
                }
                self.rep_solutions.insert(*v, other.clone());
                Ok(())
            }
            (other, RepTy::Var(v)) if Self::is_rep_meta(*v) => {
                if other.free_vars().contains(v) {
                    return Err(UnifyError::RepOccurs(*v, other.clone()));
                }
                self.rep_solutions.insert(*v, other.clone());
                Ok(())
            }
            (RepTy::Concrete(a), RepTy::Concrete(b)) if a == b => Ok(()),
            (RepTy::Tuple(a), RepTy::Tuple(b)) | (RepTy::Sum(a), RepTy::Sum(b))
                if a.len() == b.len() =>
            {
                for (x, y) in a.clone().iter().zip(b.clone().iter()) {
                    self.unify_rep(x, y)?;
                }
                Ok(())
            }
            // A concrete tuple rep can unify with a TupleRep expression.
            (RepTy::Concrete(Rep::Tuple(parts)), RepTy::Tuple(exprs))
            | (RepTy::Tuple(exprs), RepTy::Concrete(Rep::Tuple(parts)))
                if parts.len() == exprs.len() =>
            {
                for (p, e) in parts.clone().iter().zip(exprs.clone().iter()) {
                    self.unify_rep(&RepTy::Concrete(p.clone()), e)?;
                }
                Ok(())
            }
            _ => Err(UnifyError::RepMismatch(r1, r2)),
        }
    }

    /// Unifies two kinds.
    ///
    /// # Errors
    ///
    /// [`UnifyError::KindMismatch`] and the rep errors.
    pub fn unify_kind(&mut self, k1: &Kind, k2: &Kind) -> Result<(), UnifyError> {
        match (k1, k2) {
            (Kind::Type(r1), Kind::Type(r2)) => self.unify_rep(r1, r2),
            (Kind::Rep, Kind::Rep) => Ok(()),
            (Kind::Arrow(a1, b1), Kind::Arrow(a2, b2)) => {
                self.unify_kind(a1, a2)?;
                self.unify_kind(b1, b2)
            }
            _ => Err(UnifyError::KindMismatch(k1.clone(), k2.clone())),
        }
    }

    /// The kind-representation of a zonked type, as far as it is known
    /// structurally (metavariables report their assigned kinds; rigid
    /// variables are resolved by the caller's scope, so `None` here).
    fn head_kind_rep(&self, ty: &Type) -> Option<RepTy> {
        match ty {
            Type::Var(v) if Self::is_ty_meta(*v) => self.meta_kind_rep(*v),
            Type::Var(v) => self.rigid_kinds.get(v).map(|r| self.zonk_rep(r)),
            Type::Con(tc, args) => {
                let mut k = tc.kind.clone();
                for _ in args {
                    k = k.apply_one()?.clone();
                }
                match k {
                    Kind::Type(rep) => Some(rep),
                    _ => None,
                }
            }
            Type::Fun(..) | Type::Dict(..) => Some(RepTy::LIFTED),
            Type::ForallTy(_, _, body) | Type::ForallRep(_, body) => self.head_kind_rep(body),
            Type::UnboxedTuple(ts) => {
                let parts = ts
                    .iter()
                    .map(|t| self.head_kind_rep(t))
                    .collect::<Option<Vec<_>>>()?;
                Some(normalize_tuple(parts))
            }
        }
    }

    /// Unifies two types (rank-1, predicative: `forall` types only unify
    /// with α-equivalent `forall` types).
    ///
    /// # Errors
    ///
    /// See [`UnifyError`].
    pub fn unify(&mut self, t1: &Type, t2: &Type) -> Result<(), UnifyError> {
        let t1 = self.zonk(t1);
        let t2 = self.zonk(t2);
        match (&t1, &t2) {
            (Type::Var(v1), Type::Var(v2)) if v1 == v2 => Ok(()),
            (Type::Var(v), other) if Self::is_ty_meta(*v) => self.bind_meta(*v, other),
            (other, Type::Var(v)) if Self::is_ty_meta(*v) => self.bind_meta(*v, other),
            (Type::Con(c1, a1), Type::Con(c2, a2))
                if c1.name == c2.name && a1.len() == a2.len() =>
            {
                for (x, y) in a1.clone().iter().zip(a2.clone().iter()) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::Fun(a1, b1), Type::Fun(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            (Type::UnboxedTuple(x), Type::UnboxedTuple(y)) if x.len() == y.len() => {
                for (a, b) in x.clone().iter().zip(y.clone().iter()) {
                    self.unify(a, b)?;
                }
                Ok(())
            }
            (Type::Dict(c1, x), Type::Dict(c2, y)) if c1 == c2 => self.unify(x, y),
            (Type::ForallTy(..), Type::ForallTy(..))
            | (Type::ForallRep(..), Type::ForallRep(..))
                if t1.alpha_eq(&t2) =>
            {
                Ok(())
            }
            _ => Err(UnifyError::Mismatch(t1, t2)),
        }
    }

    fn bind_meta(&mut self, v: Symbol, ty: &Type) -> Result<(), UnifyError> {
        if occurs_in(v, ty) {
            return Err(UnifyError::Occurs(v, ty.clone()));
        }
        // Kind preservation: the solution's rep must match the meta's.
        if let (Some(meta_rep), Some(ty_rep)) = (self.meta_kind_rep(v), self.head_kind_rep(ty)) {
            self.unify_rep(&meta_rep, &ty_rep)?;
        }
        self.ty_solutions.insert(v, ty.clone());
        Ok(())
    }

    // -----------------------------------------------------------------
    // Defaulting and generalization support (§5.2)
    // -----------------------------------------------------------------

    /// Defaults every *unsolved* representation metavariable occurring in
    /// `ty` to `LiftedRep` — "any levity variable that in principle could
    /// be generalized is instead defaulted to `Type`" (§5.2). Returns the
    /// number defaulted.
    pub fn default_rep_metas(&mut self, ty: &Type) -> usize {
        let ty = self.zonk(ty);
        let mut count = 0;
        // Rep metas appear through the kinds of unsolved ty metas and in
        // the kind annotations of quantifiers.
        let mut reps = Vec::new();
        collect_rep_metas_in_type(self, &ty, &mut reps);
        for r in reps {
            if self.zonk_rep(&RepTy::Var(r)) == RepTy::Var(r) {
                self.rep_solutions.insert(r, RepTy::LIFTED);
                count += 1;
            }
        }
        count
    }

    /// Unsolved type metavariables occurring in a zonked type, in order.
    pub fn free_ty_metas(&self, ty: &Type) -> Vec<Symbol> {
        let ty = self.zonk(ty);
        let mut out = Vec::new();
        fn go(t: &Type, out: &mut Vec<Symbol>) {
            match t {
                Type::Var(v) if Unifier::is_ty_meta(*v) && !out.contains(v) => out.push(*v),
                Type::Var(_) => {}
                Type::Con(_, args) => args.iter().for_each(|a| go(a, out)),
                Type::Fun(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Type::ForallTy(_, _, b) | Type::ForallRep(_, b) => go(b, out),
                Type::UnboxedTuple(ts) => ts.iter().for_each(|t| go(t, out)),
                Type::Dict(_, t) => go(t, out),
            }
        }
        go(&ty, &mut out);
        out
    }

    /// Solves a type metavariable directly (used by generalization to
    /// replace metas with fresh rigid variables).
    pub fn solve_ty_meta(&mut self, name: Symbol, ty: Type) {
        self.ty_solutions.insert(name, ty);
    }
}

fn occurs_in(v: Symbol, ty: &Type) -> bool {
    match ty {
        Type::Var(w) => *w == v,
        Type::Con(_, args) => args.iter().any(|a| occurs_in(v, a)),
        Type::Fun(a, b) => occurs_in(v, a) || occurs_in(v, b),
        Type::ForallTy(_, _, b) | Type::ForallRep(_, b) => occurs_in(v, b),
        Type::UnboxedTuple(ts) => ts.iter().any(|t| occurs_in(v, t)),
        Type::Dict(_, t) => occurs_in(v, t),
    }
}

fn collect_rep_metas_in_type(u: &Unifier, ty: &Type, out: &mut Vec<Symbol>) {
    let push_rep = |rep: &RepTy, out: &mut Vec<Symbol>| {
        for v in u.zonk_rep(rep).free_vars() {
            if Unifier::is_rep_meta(v) && !out.contains(&v) {
                out.push(v);
            }
        }
    };
    match ty {
        Type::Var(v) if Unifier::is_ty_meta(*v) => {
            if let Some(rep) = u.meta_kind_rep(*v) {
                push_rep(&rep, out);
            }
        }
        Type::Var(_) => {}
        Type::Con(_, args) => args
            .iter()
            .for_each(|a| collect_rep_metas_in_type(u, a, out)),
        Type::Fun(a, b) => {
            collect_rep_metas_in_type(u, a, out);
            collect_rep_metas_in_type(u, b, out);
        }
        Type::ForallTy(_, k, b) => {
            for rep_var in k.free_rep_vars() {
                push_rep(&RepTy::Var(rep_var), out);
            }
            collect_rep_metas_in_type(u, b, out);
        }
        Type::ForallRep(_, b) => collect_rep_metas_in_type(u, b, out),
        Type::UnboxedTuple(ts) => ts.iter().for_each(|t| collect_rep_metas_in_type(u, t, out)),
        Type::Dict(_, t) => collect_rep_metas_in_type(u, t, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levity_ir::builtin::builtins;

    #[test]
    fn fresh_metas_carry_rep_kinds() {
        let mut u = Unifier::new();
        let t = u.fresh_ty_meta();
        let Type::Var(v) = t else { panic!() };
        let rep = u.meta_kind_rep(v).unwrap();
        assert!(matches!(rep, RepTy::Var(r) if Unifier::is_rep_meta(r)));
    }

    #[test]
    fn unifying_with_lifted_type_solves_the_rep() {
        // The §5.2 story: α :: TYPE ρ; use at Int forces ρ := LiftedRep.
        let b = builtins();
        let mut u = Unifier::new();
        let alpha = u.fresh_ty_meta();
        u.unify(&alpha, &Type::con0(&b.int)).unwrap();
        let Type::Var(v) = alpha else { panic!() };
        // The meta's kind rep must now be LiftedRep.
        assert_eq!(u.meta_kind_rep(v), Some(RepTy::LIFTED));
    }

    #[test]
    fn unifying_with_unboxed_type_solves_the_rep_to_int_rep() {
        let b = builtins();
        let mut u = Unifier::new();
        let alpha = u.fresh_ty_meta();
        u.unify(&alpha, &Type::con0(&b.int_hash)).unwrap();
        let Type::Var(v) = alpha else { panic!() };
        assert_eq!(u.meta_kind_rep(v), Some(RepTy::Concrete(Rep::Int)));
    }

    #[test]
    fn occurs_check_fires() {
        let mut u = Unifier::new();
        let alpha = u.fresh_ty_meta();
        let t = Type::fun(alpha.clone(), alpha.clone());
        assert!(matches!(u.unify(&alpha, &t), Err(UnifyError::Occurs(..))));
    }

    #[test]
    fn rep_metas_default_to_lifted() {
        let mut u = Unifier::new();
        let alpha = u.fresh_ty_meta();
        // Nothing constrains α's rep; defaulting sets it to LiftedRep.
        let defaulted = u.default_rep_metas(&alpha);
        assert_eq!(defaulted, 1);
        let Type::Var(v) = alpha else { panic!() };
        assert_eq!(u.meta_kind_rep(v), Some(RepTy::LIFTED));
    }

    #[test]
    fn kind_mismatch_between_solved_reps_is_an_error() {
        let b = builtins();
        let mut u = Unifier::new();
        let alpha = u.fresh_ty_meta();
        u.unify(&alpha, &Type::con0(&b.int_hash)).unwrap();
        // α is solved at Int#; unifying α with Int must fail (kinds).
        assert!(u.unify(&alpha, &Type::con0(&b.int)).is_err());
    }

    #[test]
    fn fun_types_unify_componentwise() {
        let b = builtins();
        let mut u = Unifier::new();
        let a1 = u.fresh_ty_meta();
        let t1 = Type::fun(a1.clone(), Type::con0(&b.int));
        let t2 = Type::fun(Type::con0(&b.int_hash), Type::con0(&b.int));
        u.unify(&t1, &t2).unwrap();
        assert_eq!(u.zonk(&a1).to_string(), "Int#");
    }

    #[test]
    fn zonking_is_deep() {
        let b = builtins();
        let mut u = Unifier::new();
        let a1 = u.fresh_ty_meta();
        let a2 = u.fresh_ty_meta();
        u.unify(
            &a1,
            &Type::Con(std::sync::Arc::clone(&b.maybe), vec![a2.clone()]),
        )
        .unwrap();
        u.unify(&a2, &Type::con0(&b.bool)).unwrap();
        assert_eq!(u.zonk(&a1).to_string(), "Maybe Bool");
    }

    #[test]
    fn unboxed_tuple_unification() {
        let b = builtins();
        let mut u = Unifier::new();
        let a = u.fresh_ty_meta();
        let t1 = Type::UnboxedTuple(vec![a.clone(), Type::con0(&b.bool)]);
        let t2 = Type::UnboxedTuple(vec![Type::con0(&b.int_hash), Type::con0(&b.bool)]);
        u.unify(&t1, &t2).unwrap();
        assert_eq!(u.zonk(&a).to_string(), "Int#");
    }

    #[test]
    fn alpha_equivalent_foralls_unify() {
        let t1 = Type::forall_ty(
            "a",
            Kind::TYPE,
            Type::fun(Type::Var("a".into()), Type::Var("a".into())),
        );
        let t2 = Type::forall_ty(
            "b",
            Kind::TYPE,
            Type::fun(Type::Var("b".into()), Type::Var("b".into())),
        );
        let mut u = Unifier::new();
        u.unify(&t1, &t2).unwrap();
        let t3 = Type::forall_ty(
            "b",
            Kind::TYPE,
            Type::fun(Type::Var("b".into()), Type::con0(&builtins().int)),
        );
        assert!(u.unify(&t1, &t3).is_err());
    }
}
