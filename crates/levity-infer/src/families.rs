//! Closed type families and the §7.1 representation-homogeneity check.
//!
//! The paper's example:
//!
//! ```text
//! type family F a :: # where
//!   F Int  = Int#
//!   F Char = Char#
//! ```
//!
//! Under the old sub-kinding regime this was kind-correct — all unlifted
//! types shared the kind `#` — yet un-compilable: "GHC would be at a
//! loss trying to compile `f :: F a -> a`, as there would not be a way
//! to know what size register to use" (§7.1). Under `TYPE r`, the family
//! is *ill-kinded*: `Int# :: TYPE IntRep` while `Char# :: TYPE CharRep`,
//! so no single result kind covers both equations. This module performs
//! exactly that check.

use levity_core::diag::{Diagnostic, ErrorCode, Span};
use levity_core::kind::Kind;
use levity_core::symbol::Symbol;

use levity_ir::typecheck::{kind_of, Scope, ScopeEntry, TypeEnv};
use levity_ir::types::Type;
use levity_surface::ast::{SKind, SType};

use crate::convert::{convert_kind, convert_type, ConvScope, ConvertOptions};

/// A checked closed type family.
#[derive(Clone, Debug)]
pub struct FamilyInfo {
    /// Family name.
    pub name: Symbol,
    /// The parameter.
    pub param: Symbol,
    /// The declared result kind.
    pub result_kind: Kind,
    /// Checked equations (lhs instance type, rhs type, rhs kind).
    pub equations: Vec<(Type, Type, Kind)>,
}

impl FamilyInfo {
    /// Reduces `F τ` for a concrete argument, if an equation matches.
    pub fn reduce(&self, arg: &Type) -> Option<&Type> {
        self.equations
            .iter()
            .find(|(lhs, _, _)| lhs.alpha_eq(arg))
            .map(|(_, rhs, _)| rhs)
    }
}

/// Checks a closed type family declaration under the `TYPE r` regime:
/// every equation's right-hand side must inhabit the *declared* result
/// kind, with no sub-kinding to hide representation differences.
///
/// # Errors
///
/// [`ErrorCode::InhomogeneousFamily`] when an equation's kind differs
/// from the declared result kind — the §7.1 rejection.
pub fn check_family(
    env: &TypeEnv,
    name: Symbol,
    param: Symbol,
    result_kind: &SKind,
    equations: &[(SType, SType)],
    span: Span,
) -> Result<FamilyInfo, Diagnostic> {
    let mut implicit = Vec::new();
    let result_kind = convert_kind(result_kind, &ConvScope::new(), &mut implicit, span)?;
    if !implicit.is_empty() {
        return Err(Diagnostic::error(
            ErrorCode::InhomogeneousFamily,
            format!(
                "type family `{name}` declares a levity-polymorphic result kind; \
                 the code generator could not choose registers for its applications"
            ),
            span,
        )
        .with_note(
            "see section 8.2: GHC 8.2 cannot support type families in type representations",
        ));
    }
    let mut checked = Vec::new();
    let no_classes = |_c: Symbol| false;
    for (lhs, rhs) in equations {
        let lhs_ty = convert_type(
            env,
            &no_classes,
            lhs,
            &mut ConvScope::new(),
            ConvertOptions {
                implicit_quantify: false,
                span,
            },
        )?;
        let rhs_ty = convert_type(
            env,
            &no_classes,
            rhs,
            &mut ConvScope::new(),
            ConvertOptions {
                implicit_quantify: false,
                span,
            },
        )?;
        let mut scope = Scope::new();
        scope.push(param, ScopeEntry::TyVar(Kind::TYPE));
        let rhs_kind = kind_of(env, &mut scope, &rhs_ty)
            .map_err(|e| Diagnostic::error(ErrorCode::KindMismatch, e.to_string(), span))?;
        if rhs_kind != result_kind {
            return Err(Diagnostic::error(
                ErrorCode::InhomogeneousFamily,
                format!(
                    "type family `{name}`: equation `{name} {lhs_ty} = {rhs_ty}` has kind \
                     `{rhs_kind}`, but the declared result kind is `{result_kind}`"
                ),
                span,
            )
            .with_note(
                "under TYPE r there is no common kind `#` for differently-represented \
                 unlifted types (section 7.1)",
            ));
        }
        checked.push((lhs_ty, rhs_ty, rhs_kind));
    }
    Ok(FamilyInfo {
        name,
        param,
        result_kind,
        equations: checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use levity_surface::ast::SDecl;
    use levity_surface::parser::parse_module;

    fn run_family(src: &str) -> Result<FamilyInfo, Diagnostic> {
        let module = parse_module(src).unwrap();
        let env = TypeEnv::new();
        match &module.decls[0] {
            SDecl::TypeFamily {
                name,
                param,
                result_kind,
                equations,
                span,
            } => check_family(&env, *name, *param, result_kind, equations, *span),
            other => panic!("expected a family, got {other:?}"),
        }
    }

    #[test]
    fn homogeneous_family_is_accepted() {
        // Both equations land in TYPE IntRep: fine.
        let info =
            run_family("type family G a :: TYPE IntRep where { G Int = Int#; G Bool = Int# }\n")
                .unwrap();
        assert_eq!(info.equations.len(), 2);
    }

    #[test]
    fn section_7_1_family_is_rejected() {
        // The paper's F: Int# and Char# live at different representations.
        let err =
            run_family("type family F a :: TYPE IntRep where { F Int = Int#; F Char = Char# }\n")
                .unwrap_err();
        assert_eq!(err.code, ErrorCode::InhomogeneousFamily);
    }

    #[test]
    fn lifted_families_work() {
        let info =
            run_family("type family H a :: Type where { H Int = Bool; H Bool = Int }\n").unwrap();
        assert_eq!(info.result_kind, Kind::TYPE);
        // Reduction works for matching arguments.
        let env = TypeEnv::new();
        let int = Type::con0(&env.builtins.int);
        assert_eq!(info.reduce(&int).unwrap().to_string(), "Bool");
        let double = Type::con0(&env.builtins.double);
        assert!(info.reduce(&double).is_none());
    }

    #[test]
    fn levity_polymorphic_result_kind_is_rejected() {
        let module = parse_module("type family J a :: TYPE r where { J Int = Int# }\n").unwrap();
        let env = TypeEnv::new();
        match &module.decls[0] {
            SDecl::TypeFamily {
                name,
                param,
                result_kind,
                equations,
                span,
            } => {
                let err =
                    check_family(&env, *name, *param, result_kind, equations, *span).unwrap_err();
                assert_eq!(err.code, ErrorCode::InhomogeneousFamily);
            }
            other => panic!("{other:?}"),
        }
    }
}
