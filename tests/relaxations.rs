//! E9 + E4 — §7.1's relaxed restrictions and the §3.2–3.3 legacy
//! comparison.

use levity::core::diag::ErrorCode;
use levity::driver::{compile_with_prelude, PipelineError};
use levity::infer::legacy::{
    legacy_accepts, legacy_error_scheme, legacy_generalize, legacy_instantiable, LegacyKind,
};
use levity_core::symbol::Symbol;

// ---------------------------------------------------------------------
// E9: §7.1 relaxations
// ---------------------------------------------------------------------

#[test]
fn the_inhomogeneous_type_family_is_now_ill_kinded() {
    // §7.1: "the F type family is ill-kinded in our new system, as Int#
    // has kind TYPE IntRep while Char# has kind TYPE CharRep."
    let err = compile_with_prelude(
        "type family F a :: TYPE IntRep where { F Int = Int#; F Char = Char# }\n",
    )
    .unwrap_err();
    match err {
        PipelineError::Elaborate(diags) => {
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == ErrorCode::InhomogeneousFamily),
                "{diags:?}"
            );
        }
        other => panic!("expected an elaboration rejection, got {other}"),
    }
}

#[test]
fn homogeneous_unlifted_families_are_fine() {
    // Families whose equations share one representation now kind-check —
    // something the blunt "no family may return #" ban forbade.
    compile_with_prelude("type family G a :: TYPE IntRep where { G Int = Int#; G Bool = Int# }\n")
        .unwrap();
}

#[test]
fn under_the_legacy_hash_kind_the_family_was_accepted() {
    // Both Int# and Char# had kind # (sub-kinding collapsed all unlifted
    // types), so the legacy system could not reject F — and then could
    // not compile its uses (§7.1).
    assert!(legacy_accepts(LegacyKind::Hash, LegacyKind::Hash));
    // The new kinds are distinct:
    use levity::core::kind::Kind;
    use levity::core::rep::Rep;
    assert_ne!(Kind::of_rep(Rep::Int), Kind::of_rep(Rep::Char));
}

#[test]
fn partially_applied_unlifted_tycons_are_now_legal() {
    // §7.1: "unlifted types had to be fully saturated" — no longer.
    // Array# :: Type -> TYPE UnliftedRep is a fine partial kind.
    use levity::ir::typecheck::{kind_of, Scope, TypeEnv};
    use levity::ir::types::Type;
    let env = TypeEnv::new();
    let bare = Type::con0(&env.builtins.array_hash);
    let k = kind_of(&env, &mut Scope::new(), &bare).unwrap();
    assert_eq!(k.to_string(), "Type -> TYPE UnliftedRep");
}

// ---------------------------------------------------------------------
// E4: the legacy OpenKind system and the myError fragility
// ---------------------------------------------------------------------

#[test]
fn legacy_error_magic_works_but_wrappers_lose_it() {
    let a = Symbol::intern("a");
    // error :: ∀(a :: OpenKind). String -> a accepted at Int#...
    let magic = legacy_error_scheme();
    assert!(legacy_instantiable(&magic, a, LegacyKind::Hash));
    // ...but the inferred myError is quantified at kind Type (§3.3):
    let inferred = legacy_generalize(&[a]);
    assert!(!legacy_instantiable(&inferred, a, LegacyKind::Hash));
}

#[test]
fn new_system_keeps_my_error_usable_at_unboxed_types() {
    // The same wrapper, with its declared levity-polymorphic signature,
    // works at Int# through the real pipeline.
    let src = "main :: Int#\n\
               main = if False then myError True else 3#\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, _) = compiled.run("main", 10_000_000).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(3));
}

#[test]
fn new_system_rejects_what_legacy_sub_kinding_needed_special_cases_for() {
    // §3.2's complaint: `Int# -> Double#` was accepted only via the
    // OpenKind hack. In the new system it is directly well-kinded.
    compile_with_prelude(
        "f :: Int# -> Double#\n\
         f n = int2Double# n\n\
         main :: Int#\n\
         main = double2Int# (f 3#)\n",
    )
    .unwrap();
}

#[test]
fn open_kind_never_appears_in_new_system_errors() {
    // §3.2: "The kind OpenKind would embarrassingly appear in error
    // messages." Our diagnostics never mention it.
    let err = compile_with_prelude("f :: forall (r :: Rep) (a :: TYPE r). a -> a\nf x = x\n")
        .unwrap_err();
    let msg = format!("{err}");
    assert!(!msg.contains("OpenKind"), "{msg}");
}
