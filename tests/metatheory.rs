//! E6 — the §6 theorems over random well-typed terms, run as integration
//! tests across the `levity-l`, `levity-m` and `levity-compile` crates.

use levity::compile::metatheory::{check_compilation, check_simulation};
use levity::l::gen::{GenConfig, Generator};
use levity::l::typecheck::check_closed;

#[test]
fn preservation_progress_compilation_simulation_hold() {
    let mut generator = Generator::new(0xD1CE, GenConfig::default());
    let mut bottoms = 0;
    let mut values = 0;
    for _ in 0..250 {
        let (e, _ty) = generator.generate();
        check_compilation(&e).unwrap();
        let ev = check_simulation(&e).unwrap();
        if ev.hit_bottom {
            bottoms += 1;
        } else {
            values += 1;
        }
    }
    assert!(bottoms > 0, "the sample should include ⊥ outcomes");
    assert!(values > 0, "the sample should include value outcomes");
}

#[test]
fn deeper_terms_also_satisfy_the_theorems() {
    let config = GenConfig {
        max_depth: 9,
        ..GenConfig::default()
    };
    let mut generator = Generator::new(0xABCD, config);
    for _ in 0..60 {
        let (e, _ty) = generator.generate();
        check_simulation(&e).unwrap();
    }
}

#[test]
fn generated_terms_are_well_typed_by_construction() {
    let mut generator = Generator::new(7, GenConfig::default());
    for _ in 0..200 {
        let (e, _ty) = generator.generate();
        check_closed(&e).unwrap();
    }
}

#[test]
fn type_erasure_is_total_on_well_typed_terms() {
    // Compilation erases all type and representation forms; the result
    // must never mention them (M has no such constructs), and must be
    // closed.
    use levity::compile::figure7::compile_closed;
    let mut generator = Generator::new(99, GenConfig::default());
    for _ in 0..100 {
        let (e, _ty) = generator.generate();
        let t = compile_closed(&e).unwrap();
        // Run it: any unbound variable would surface as a machine error.
        let mut machine = levity::m::machine::Machine::new();
        machine.set_fuel(2_000_000);
        machine.run(t).unwrap();
    }
}
