//! E8 — the §8.1 study: 34 of 76 classes levity-generalize; the six
//! special-cased functions; the `($)` printing policy.

use levity::classes::{run_study, special_functions, study_counts};
use levity::core::pretty::PrintOptions;
use levity::driver::compile_with_prelude;

#[test]
fn the_headline_34_of_76() {
    let rows = run_study();
    assert_eq!(study_counts(&rows), (34, 76));
}

#[test]
fn generalizable_classes_include_the_papers_example() {
    let rows = run_study();
    let gen: Vec<_> = rows
        .iter()
        .filter(|r| r.verdict.is_generalizable())
        .map(|r| r.name)
        .collect();
    assert!(gen.contains(&"Num"), "§7.3's Num must be generalizable");
    assert!(gen.contains(&"Eq"));
    assert!(!gen.contains(&"Monoid"), "mempty :: a blocks Monoid");
}

#[test]
fn six_functions_were_de_special_cased() {
    let fns = special_functions();
    assert_eq!(fns.len(), 6);
    let names: Vec<_> = fns.iter().map(|f| f.name).collect();
    for expected in [
        "error",
        "errorWithoutStackTrace",
        "undefined",
        "oneShot",
        "runRW#",
        "($)",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}

#[test]
fn dollar_signature_printing_follows_section_8_1() {
    // Through the *pipeline*: the prelude's real ($) signature.
    let compiled = compile_with_prelude("main :: Int\nmain = id $ 1\n").unwrap();
    let plain = compiled.signature("$", &PrintOptions::default()).unwrap();
    let explicit = compiled.signature("$", &PrintOptions::explicit()).unwrap();
    assert_eq!(plain, "forall a b. (a -> b) -> a -> b");
    assert_eq!(
        explicit,
        "forall (r :: Rep) a (b :: TYPE r). (a -> b) -> a -> b"
    );
}

#[test]
fn num_class_methods_are_levity_polymorphic_selectors() {
    // (+) :: forall (r :: Rep) (a :: TYPE r). Num a => a -> a -> a, the
    // §7.3 type — visible when explicit reps are requested, hidden
    // otherwise.
    let compiled = compile_with_prelude("main :: Int\nmain = 1 + 1\n").unwrap();
    let explicit = compiled.signature("+", &PrintOptions::explicit()).unwrap();
    assert_eq!(
        explicit,
        "forall (r :: Rep) (a :: TYPE r). Num a -> a -> a -> a"
    );
    let plain = compiled.signature("+", &PrintOptions::default()).unwrap();
    assert_eq!(plain, "forall a. Num a -> a -> a -> a");
}
