//! Differential testing along two independent axes:
//!
//! **subst vs env** — the substitution machine
//! (`levity::m::machine::Machine`) is the executable reference
//! semantics, Figure 6 transcribed literally; the environment engine
//! (`levity::m::env::EnvMachine`) is the fast evaluator the benchmarks
//! run on. On every corpus program, every hand-written machine term,
//! and a property-based sample of generated well-typed `L` terms, the
//! two engines must agree on
//!
//! * the [`RunOutcome`] (values — functions included, via readback —
//!   and `error`/⊥ aborts),
//! * the [`MachineError`] on failing terms (`<<loop>>` blackholing,
//!   §6.2 `ClassMismatch` width-check failures, fuel exhaustion, …),
//! * **every** [`MachineStats`] counter: the engines take structurally
//!   identical transitions, so not only the allocation-shaped counters
//!   (`thunk_allocs`, `con_allocs`, `allocated_words`, `updates`) but
//!   also `steps`, `thunk_forces`, `var_lookups`, `prim_ops` and
//!   `max_stack` must coincide exactly.
//!
//! **opt vs no-opt** — the levity-directed Core optimizer must preserve
//! outcomes and final values (its entire point is to change the
//! *counters*): every corpus program and a property-based sample of
//! generated surface programs compile at `O0` and at the default level
//! and must produce identical [`RunOutcome`]s, on both engines.
//!
//! Both proptest blocks honour `LEVITY_PROPTEST_CASES` (the nightly CI
//! job raises it to 2048).

use std::sync::Arc;

use proptest::prelude::*;

use levity::compile::figure7::compile_closed;
use levity::driver::pipeline::{
    compile_with_prelude, compile_with_prelude_opt, Compiled, RunLimits,
};
use levity::driver::OptLevel;
use levity::l::gen::{GenConfig, Generator};
use levity::m::bytecode::BcProgram;
use levity::m::compile::CodeProgram;
use levity::m::env::EnvMachine;
use levity::m::machine::{Globals, Machine, MachineError, MachineStats, RunOutcome};
use levity::m::regmachine::BcMachine;
use levity::m::syntax::{Alt, Atom, Binder, DataCon, Literal, MExpr, PrimOp};
use levity::m::Engine;

const FUEL: u64 = 200_000_000;

/// Property-test case count, overridable via `LEVITY_PROPTEST_CASES`
/// (the scheduled nightly CI job runs with 2048).
fn proptest_cases(default: u32) -> u32 {
    std::env::var("LEVITY_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Outcome and counters of one run. The stats ride *outside* the
/// `Result` so that failing terms still pin every counter — an engine
/// that took extra transitions before erroring must not slip through.
type MachineResult = (Result<RunOutcome, MachineError>, MachineStats);

/// Runs a raw machine term on the substitution engine.
fn run_subst(globals: &Globals, t: &Arc<MExpr>, fuel: u64) -> MachineResult {
    let mut machine = Machine::with_globals(globals.clone());
    machine.set_fuel(fuel);
    let result = machine.run(Arc::clone(t));
    (result, *machine.stats())
}

/// Runs the same term on the environment engine.
fn run_env(globals: &Globals, t: &Arc<MExpr>, fuel: u64) -> MachineResult {
    let program = CodeProgram::compile(globals);
    let entry = program.compile_entry(t);
    let mut machine = EnvMachine::new(&program);
    machine.set_fuel(fuel);
    let result = machine.run(&entry);
    (result, *machine.stats())
}

/// Runs the same term on the flat-bytecode register machine.
fn run_bytecode(globals: &Globals, t: &Arc<MExpr>, fuel: u64) -> MachineResult {
    let program = CodeProgram::compile(globals);
    let bc = Arc::new(BcProgram::compile(&program));
    let entry = bc.compile_entry(&program.compile_entry(t));
    let mut machine = BcMachine::new(bc);
    machine.set_fuel(fuel);
    let result = machine.run(&entry);
    (result, *machine.stats())
}

/// Pins the bytecode engine against a tree-walking reference result.
///
/// Outcome (values, `error`/⊥ aborts, `MachineError`s) and the
/// allocation-shaped counters must match exactly — the flat engine
/// executes the same heap semantics. `steps` is *designed* to differ
/// (superinstructions collapse several tree transitions into one
/// dispatch), so instead of equality the step counts must stay within a
/// constant factor of each other, in both directions: neither engine
/// may quietly start doing asymptotically more work.
fn assert_bytecode_agrees(reference: &MachineResult, bc: &MachineResult, what: &str) {
    let (r_out, r_stats) = reference;
    let (b_out, b_stats) = bc;
    // Address-blind outcome comparison: the bytecode engine's copying
    // collector moves heap cells, so outcomes that mention heap
    // addresses (constructor fields, readback captures, addresses
    // rendered into error payloads) may differ from the non-collecting
    // tree engines *in the addresses only*. Renumbering each side's
    // addresses in first-appearance order makes the comparison exact
    // up to that relocation; everything else must still match
    // verbatim. The tree engines never collect, so subst-vs-env stays
    // full structural equality elsewhere.
    assert_eq!(
        addr_blind(&format!("{r_out:?}")),
        addr_blind(&format!("{b_out:?}")),
        "bytecode outcome differs on {what}: {r_out:?} vs {b_out:?}"
    );
    // Fuel exhaustion stops the engines mid-program at *different*
    // program points (they count transitions differently), so the
    // counters are only comparable on every other outcome.
    if matches!(r_out, Err(MachineError::OutOfFuel { .. })) {
        return;
    }
    assert_eq!(
        (
            r_stats.thunk_allocs,
            r_stats.con_allocs,
            r_stats.allocated_words,
            r_stats.updates
        ),
        (
            b_stats.thunk_allocs,
            b_stats.con_allocs,
            b_stats.allocated_words,
            b_stats.updates
        ),
        "bytecode allocation counters differ on {what}"
    );
    assert!(
        b_stats.steps <= 8 * r_stats.steps + 64 && r_stats.steps <= 8 * b_stats.steps + 64,
        "step counts drifted apart on {what}: reference {} vs bytecode {}",
        r_stats.steps,
        b_stats.steps
    );
}

/// Asserts all three engines produce identical results on a raw term.
fn assert_engines_agree(globals: &Globals, t: &Arc<MExpr>, fuel: u64, what: &str) {
    let subst = run_subst(globals, t, fuel);
    let env = run_env(globals, t, fuel);
    assert_eq!(subst, env, "engines disagree on {what}: {t}");
    let bc = run_bytecode(globals, t, fuel);
    assert_bytecode_agrees(&env, &bc, what);
}

/// Asserts both engines produce identical results through the full
/// pipeline (surface source, prelude included), at *both* optimization
/// levels — four runs, with **every** [`MachineStats`] counter equal
/// between the engines at each level (the optimizer may change the
/// counters between levels; the engines may not disagree within one).
fn assert_pipeline_agrees(source: &str, what: &str) {
    for level in [OptLevel::O0, OptLevel::O2] {
        let compiled = compile_with_prelude_opt(source, level)
            .unwrap_or_else(|e| panic!("{what} ({level}): {e}"));
        let subst = compiled.run_with_engine("main", FUEL, Engine::Subst);
        let env = compiled.run_with_engine("main", FUEL, Engine::Env);
        assert_eq!(
            subst, env,
            "engines disagree on {what} at {level} (outcome or stats)"
        );
        // Third engine, looser stats contract: outcome and allocation
        // counters pinned, steps bounded — the 6-way grid.
        let bc = compiled.run_with_engine("main", FUEL, Engine::Bytecode);
        assert_bytecode_agrees(&split(env), &split(bc), &format!("{what} at {level}"));
        // Plus the PR-9 extension: the lowered Core lints clean, and
        // the register machine's checked and unchecked paths agree on
        // outcome and every counter.
        assert_verified_fast_path_agrees(&compiled, &format!("{what} at {level}"));
    }
}

/// The PR-9 leg of the grid: the lowered program passes every Core
/// lint rule with zero errors, and the flat-bytecode machine's
/// *unchecked* fast path (the verifier's payoff) agrees with the
/// checked path on the outcome and **every** [`MachineStats`] counter.
fn assert_verified_fast_path_agrees(compiled: &Compiled, what: &str) {
    let tenv = levity::ir::typecheck::check_program(&compiled.program)
        .unwrap_or_else(|(b, e)| panic!("{what}: `{b}` fails re-typecheck: {e}"));
    let lints = levity::compile::lint_program(&tenv, &compiled.program);
    assert!(lints.is_clean(), "{what} fails Core lint:\n{lints}");
    let entry = compiled
        .bytecode
        .compile_entry(&compiled.code.compile_entry(&MExpr::global("main")));
    let mut checked = BcMachine::new(Arc::clone(&compiled.bytecode));
    checked.set_fuel(FUEL);
    let c = (checked.run(&entry), *checked.stats());
    let ventry = compiled
        .verified
        .verify_entry(&entry)
        .unwrap_or_else(|e| panic!("{what}: entry fails verification: {e}"));
    let mut unchecked = BcMachine::new(Arc::clone(&compiled.bytecode));
    unchecked.set_fuel(FUEL);
    let u = (unchecked.run_verified(&ventry), *unchecked.stats());
    assert_eq!(
        c, u,
        "checked and unchecked register machines disagree on {what}"
    );
}

/// Adapts a pipeline run result to the raw-term [`MachineResult`]
/// shape (stats outside the `Result`; failing runs report empty stats
/// on every engine, so the default is comparable).
fn split(r: Result<(RunOutcome, MachineStats), MachineError>) -> MachineResult {
    match r {
        Ok((out, stats)) => (Ok(out), stats),
        Err(e) => (Err(e), MachineStats::default()),
    }
}

/// Renders a debug-formatted outcome with every heap address replaced
/// by its first-appearance index, so two runs that agree up to heap
/// relocation render identically. Addresses appear in two spellings:
/// the `Debug` form `Addr(N)` (atoms inside values) and the `Display`
/// form `#N` (values rendered into `MachineError` string payloads).
/// `#`-then-digits is unambiguous — literals render digits-then-`#`
/// (`42#`) and unboxed tuples as `(# … #)`, neither of which matches.
/// Both spellings share one renumbering map, so an address cited in an
/// error payload and again in a value stays consistent.
fn addr_blind(rendered: &str) -> String {
    let bytes = rendered.as_bytes();
    let mut seen: Vec<u64> = Vec::new();
    let mut intern = |n: u64| -> usize {
        match seen.iter().position(|&k| k == n) {
            Some(i) => i,
            None => {
                seen.push(n);
                seen.len() - 1
            }
        }
    };
    let digits_end = |start: usize| {
        let mut k = start;
        while k < bytes.len() && bytes[k].is_ascii_digit() {
            k += 1;
        }
        k
    };
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i..].starts_with(b"Addr(") {
            let j = i + 5;
            let k = digits_end(j);
            if k > j && bytes.get(k) == Some(&b')') {
                let id = intern(rendered[j..k].parse().unwrap());
                out.extend_from_slice(format!("Addr(a{id})").as_bytes());
                i = k + 1;
                continue;
            }
        }
        if bytes[i] == b'#' {
            let k = digits_end(i + 1);
            if k > i + 1 {
                let id = intern(rendered[i + 1..k].parse().unwrap());
                out.extend_from_slice(format!("#a{id}").as_bytes());
                i = k;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    // Only ASCII spans were rewritten, so UTF-8 validity is preserved.
    String::from_utf8(out).expect("addr_blind preserves UTF-8")
}

// ---------------------------------------------------------------------
// The compiled corpus: every benchmark program plus §2.1/§7.3 shapes
// ---------------------------------------------------------------------

/// The surface programs the benchmarks time, at reduced sizes, plus
/// representative prelude workloads. Outcomes *and* allocation counters
/// must be engine-independent, or the benchmark story would be
/// comparing different semantics.
const CORPUS: &[(&str, &str)] = &[
    (
        "sum_to boxed (section 2.1)",
        "sumTo :: Int -> Int -> Int\n\
         sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = sumTo 0 300\n",
    ),
    (
        "sum_to unboxed (section 2.1)",
        "sumTo# :: Int# -> Int# -> Int#\n\
         sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = sumTo# 0# 300#\n",
    ),
    (
        "dictionary dispatch at Int# (section 7.3)",
        "loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 200#\n",
    ),
    (
        "dictionary dispatch at Int (section 7.3)",
        "loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 200\n",
    ),
    (
        "prelude combinators",
        "main :: Int\nmain = sum (map (\\(x :: Int) -> x * x) (enumFromTo 1 15))\n",
    ),
    (
        "levity-polymorphic ($) at Int# (section 7.2)",
        "unbox :: Int -> Int#\nunbox n = case n of { I# k -> k }\n\
         main :: Int#\nmain = unbox $ 41 + 1\n",
    ),
    (
        "pairs and projections",
        "main :: Int\nmain = fst (MkPair 3 True) + snd (MkPair 1 4)\n",
    ),
    (
        "double class instances",
        "main :: Int#\nmain = double2Int# (abs (0.0## - 2.25##) * 4.0##)\n",
    ),
    (
        "runtime error carries its message (rule ERR)",
        "main :: Int#\nmain = error \"differential boom\"\n",
    ),
    (
        "lazy bottom is never demanded",
        "main :: Int\nmain = fst (MkPair 7 (error \"unforced\"))\n",
    ),
    (
        "levity-polymorphic user class",
        "class Default (a :: TYPE r) where { deflt :: Bool -> a }\n\
         instance Default Int# where { deflt b = 0# }\n\
         instance Default Int where { deflt b = 0 }\n\
         main :: Int#\n\
         main = deflt True +# 1#\n",
    ),
    (
        "function-valued main (closure readback)",
        "main :: Int -> Int\nmain = \\(x :: Int) -> x + 1\n",
    ),
    (
        "self-recursive constrained function (spec_fun clones the loop)",
        "powAcc :: Num a => a -> a -> Int# -> a\n\
         powAcc acc x n = case n of { 0# -> acc; _ -> powAcc (acc * x) x (n -# 1#) }\n\
         main :: Int\n\
         main = powAcc 1 2 10#\n",
    ),
    (
        "mutually recursive constrained helpers",
        "bounce :: Num a => a -> Int# -> a\n\
         bounce x n = case n of { 0# -> x; _ -> rebound (x + x) (n -# 1#) }\n\
         rebound :: Num a => a -> Int# -> a\n\
         rebound x n = case n of { 0# -> x; _ -> bounce (x * x) (n -# 1#) }\n\
         main :: Int\n\
         main = bounce 2 3#\n",
    ),
    (
        "constrained function at Int# (forall (a :: TYPE IntRep))",
        "stepU :: forall (a :: TYPE IntRep). Num a => a -> a\n\
         stepU x = (x * x) + x\n\
         main :: Int#\n\
         main = stepU 4# + stepU 2#\n",
    ),
    (
        "CPR: recursive divMod product scrutinised at every call site",
        "data QR = QR Int# Int#\n\
         divMod# :: Int# -> Int# -> QR\n\
         divMod# n d = case n <# d of { 1# -> QR 0# n; _ -> case divMod# (n -# d) d of { QR q r -> QR (q +# 1#) r } }\n\
         main :: Int#\n\
         main = case divMod# 173# 7# of { QR q r -> q *# 100# +# r }\n",
    ),
    (
        "CPR: accumulator whose tail self-call collapses through tuple-eta",
        "data QR = QR Int# Int#\n\
         spin :: Int# -> Int# -> QR\n\
         spin acc n = case n of { 0# -> QR acc n; _ -> spin (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = case spin 0# 50# of { QR s z -> s +# z }\n",
    ),
    (
        "join points: multi-alternative case-of-case diamond",
        "data QR = QR Int# Int#\n\
         pick :: Int# -> Int# -> QR\n\
         pick a b = case (case a <# b of { 1# -> QR a b; _ -> QR b a }) of { QR x y -> QR (x +# 100#) y }\n\
         main :: Int#\n\
         main = case pick 3# 5# of { QR u v -> u +# (v *# 2#) +# (u -# v) +# (u *# v) }\n",
    ),
    (
        "CPR result escaping unscrutinised keeps its box",
        "data QR = QR Int# Int#\n\
         mk :: Int# -> QR\n\
         mk n = case n <# 0# of { 1# -> QR 0# n; _ -> case mk (n -# 1#) of { QR a b -> QR (a +# n) b } }\n\
         main :: QR\n\
         main = mk 3#\n",
    ),
];

#[test]
fn engines_agree_on_the_whole_corpus() {
    for (what, source) in CORPUS {
        assert_pipeline_agrees(source, what);
    }
}

#[test]
fn gc_is_observationally_invisible_across_the_corpus() {
    // The whole grid again, but with the bytecode engine's nursery
    // forced tiny so every allocating program collects — repeatedly.
    // Outcomes (up to heap relocation) and every non-GC counter must
    // be identical to the never-collecting tree reference: a collector
    // that perturbed semantics or allocation accounting fails here.
    // Summed across the corpus the collector must also actually run,
    // or this test would pass vacuously.
    let mut collections = 0;
    for (what, source) in CORPUS {
        for level in [OptLevel::O0, OptLevel::O2] {
            let compiled = compile_with_prelude_opt(source, level)
                .unwrap_or_else(|e| panic!("{what} ({level}): {e}"));
            let env = compiled.run_with_engine("main", FUEL, Engine::Env);
            let limits = RunLimits {
                gc_nursery: Some(32),
                ..RunLimits::fuel(FUEL)
            };
            let bc = compiled.run_with_limits("main", Engine::Bytecode, limits);
            if let Ok((_, stats)) = &bc {
                collections += stats.collections;
            }
            let what = format!("{what} at {level} under forced gc");
            assert_bytecode_agrees(&split(env), &split(bc), &what);
        }
    }
    assert!(collections > 0, "forced-tiny nursery never collected");
}

#[test]
fn engines_agree_on_fuel_exhaustion_through_the_pipeline() {
    // OutOfFuel carries the limit; equality also certifies the engines
    // count the same number of transitions before giving up.
    let compiled = compile_with_prelude(
        "spin :: Int# -> Int#\nspin n = spin n\nmain :: Int#\nmain = spin 0#\n",
    )
    .unwrap();
    let subst = compiled.run_with_engine("main", 12_345, Engine::Subst);
    let env = compiled.run_with_engine("main", 12_345, Engine::Env);
    assert_eq!(subst, env);
    assert!(matches!(
        subst,
        Err(MachineError::OutOfFuel { limit: 12_345 })
    ));
    // The bytecode engine honours the same limit (it burns fuel per
    // dispatched instruction, so it gives up at the same count).
    assert!(matches!(
        compiled.run_with_engine("main", 12_345, Engine::Bytecode),
        Err(MachineError::OutOfFuel { limit: 12_345 })
    ));
}

// ---------------------------------------------------------------------
// Hand-written machine terms: failure modes and dark corners
// ---------------------------------------------------------------------

fn int_atom(n: i64) -> Atom {
    Atom::Lit(Literal::Int(n))
}

#[test]
fn engines_agree_on_blackhole_loops() {
    // let p = case p of I#[i] -> I#[i] in case p of I#[i] -> i — the
    // cyclic thunk demands itself: <<loop>> on both engines.
    let body = MExpr::case_int_hash(
        MExpr::var("p"),
        "i",
        MExpr::con_int_hash(Atom::Var("i".into())),
    );
    let t = MExpr::let_lazy(
        "p",
        body,
        MExpr::case_int_hash(MExpr::var("p"), "i", MExpr::var("i")),
    );
    let globals = Globals::new();
    assert_eq!(run_subst(&globals, &t, FUEL).0, Err(MachineError::Loop));
    assert_engines_agree(&globals, &t, FUEL, "blackhole self-demand");
}

#[test]
fn engines_agree_on_width_check_failures() {
    // (λp:ptr. p) 1# — §6.2 register-class mismatch, same error payload
    // (binder name, expected class, actual class) from both engines.
    let t = MExpr::app(MExpr::lam(Binder::ptr("p"), MExpr::var("p")), int_atom(1));
    let globals = Globals::new();
    let err = run_subst(&globals, &t, FUEL).0.unwrap_err();
    assert!(matches!(err, MachineError::ClassMismatch { .. }));
    assert_engines_agree(&globals, &t, FUEL, "class mismatch");

    // Mismatch through a case field binder.
    let bad_case = Arc::new(MExpr::Case(
        MExpr::con_int_hash(int_atom(3)),
        [Alt::Con(
            DataCon::int_hash(),
            vec![Binder::ptr("p")],
            MExpr::var("p"),
        )]
        .into(),
        None,
    ));
    assert_engines_agree(&globals, &bad_case, FUEL, "case-field class mismatch");
}

#[test]
fn engines_agree_on_machine_failures() {
    let globals = Globals::new();
    for (what, t) in [
        (
            "applied non-function",
            MExpr::app(MExpr::int(3), int_atom(4)),
        ),
        ("unknown global", MExpr::global("nope")),
        ("unbound variable", MExpr::var("ghost")),
        (
            "no matching alternative",
            Arc::new(MExpr::Case(
                MExpr::int(7),
                [Alt::Lit(Literal::Int(0), MExpr::int(1))].into(),
                None,
            )),
        ),
        (
            "case on a multi-value",
            Arc::new(MExpr::Case(
                Arc::new(MExpr::MultiVal(vec![int_atom(1), int_atom(2)])),
                [Alt::Lit(Literal::Int(0), MExpr::int(1))].into(),
                None,
            )),
        ),
        (
            "let! of a multi-value",
            MExpr::let_strict(
                Binder::int("x"),
                Arc::new(MExpr::MultiVal(vec![int_atom(1)])),
                MExpr::var("x"),
            ),
        ),
        (
            "division by zero",
            MExpr::prim(PrimOp::QuotI, vec![int_atom(1), int_atom(0)]),
        ),
        (
            "oversaturated primop",
            MExpr::prim(PrimOp::AddI, vec![int_atom(1), int_atom(2), int_atom(3)]),
        ),
    ] {
        assert!(
            run_subst(&globals, &t, FUEL).0.is_err(),
            "{what} should fail"
        );
        assert_engines_agree(&globals, &t, FUEL, what);
    }
}

#[test]
fn engines_count_prim_ops_identically_even_on_failure() {
    // A 3-argument primop errors in apply_prim on both engines — after
    // the op was counted. The run helpers only compare stats on Ok, so
    // read the counters off the machines directly here.
    let t = MExpr::prim(PrimOp::AddI, vec![int_atom(1), int_atom(2), int_atom(3)]);
    let mut subst = Machine::new();
    let subst_err = subst.run(Arc::clone(&t)).unwrap_err();
    let program = CodeProgram::compile(&Globals::new());
    let entry = program.compile_entry(&t);
    let mut env = EnvMachine::new(&program);
    let env_err = env.run(&entry).unwrap_err();
    assert_eq!(subst_err, env_err);
    assert_eq!(subst.stats(), env.stats());
    assert_eq!(subst.stats().prim_ops, 1);
}

#[test]
fn engines_agree_on_shared_thunks_and_stats() {
    // Shared thunk demanded twice: thunk_forces/updates/var_lookups
    // must match, not just the outcome.
    let t = MExpr::let_lazy(
        "p",
        MExpr::con_int_hash(int_atom(7)),
        MExpr::case_int_hash(
            MExpr::var("p"),
            "a",
            MExpr::case_int_hash(
                MExpr::var("p"),
                "b",
                MExpr::prim(
                    PrimOp::AddI,
                    vec![Atom::Var("a".into()), Atom::Var("b".into())],
                ),
            ),
        ),
    );
    let globals = Globals::new();
    let (result, stats) = run_subst(&globals, &t, FUEL);
    result.unwrap();
    assert_eq!(stats.thunk_forces, 1);
    assert_eq!(stats.var_lookups, 1);
    assert_engines_agree(&globals, &t, FUEL, "thunk sharing");
}

#[test]
fn engines_agree_on_function_results_with_captured_bindings() {
    // let! a = 5# in λb. +# a b — the subst machine substitutes a into
    // the lambda body; the env engine must read the closure back to the
    // same term.
    let t = MExpr::let_strict(
        Binder::int("a"),
        MExpr::int(5),
        MExpr::lam(
            Binder::int("b"),
            MExpr::prim(
                PrimOp::AddI,
                vec![Atom::Var("a".into()), Atom::Var("b".into())],
            ),
        ),
    );
    let globals = Globals::new();
    let out = run_subst(&globals, &t, FUEL).0.unwrap();
    assert_eq!(
        out.value().map(ToString::to_string),
        Some("<function \\b:word>".to_owned())
    );
    assert_engines_agree(&globals, &t, FUEL, "closure readback");
}

#[test]
fn engines_agree_on_shadowed_case_fields() {
    // case T[1#, 2#] of T x x -> x — the innermost (last) binder wins
    // on both engines.
    let two_field = DataCon {
        name: "T".into(),
        tag: 0,
        fields: [levity::core::rep::Slot::Word, levity::core::rep::Slot::Word].into(),
    };
    let t = Arc::new(MExpr::Case(
        Arc::new(MExpr::Con(
            two_field.clone(),
            vec![int_atom(1), int_atom(2)],
        )),
        [Alt::Con(
            two_field,
            vec![Binder::int("x"), Binder::int("x")],
            MExpr::var("x"),
        )]
        .into(),
        None,
    ));
    let globals = Globals::new();
    let out = run_subst(&globals, &t, FUEL).0.unwrap();
    assert_eq!(
        out,
        RunOutcome::Value(levity::m::Value::Lit(Literal::Int(2)))
    );
    assert_engines_agree(&globals, &t, FUEL, "shadowed case fields");
}

// ---------------------------------------------------------------------
// Property-based differential testing over generated well-typed terms
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(96)))]
    #[test]
    fn engines_agree_on_generated_well_typed_programs(seed in 0u64..25_000) {
        // Type-directed generation (levity-l) through the Figure 7
        // compiler exercises β-redexes, closures, case, `error`/⊥ and
        // rep-polymorphic instantiations — closed terms, so both
        // engines must agree on outcome, error and every counter.
        let mut generator = Generator::new(seed, GenConfig::default());
        let (e, _ty) = generator.generate();
        let t = compile_closed(&e).expect("well-typed terms compile");
        let globals = Globals::new();
        let subst = run_subst(&globals, &t, 2_000_000);
        let env = run_env(&globals, &t, 2_000_000);
        prop_assert_eq!(&subst, &env, "engines disagree on generated term {}", e);
        let bc = run_bytecode(&globals, &t, 2_000_000);
        assert_bytecode_agrees(&env, &bc, &format!("generated term {e}"));
    }
}

// ---------------------------------------------------------------------
// Optimized vs unoptimized: outcomes and final values must be identical
// ---------------------------------------------------------------------

/// A run result with function values made opaque: the optimizer is free
/// to compile a λ differently (that is its job), so two closures count
/// as the same *final value*; data values, literals and aborts must
/// match exactly.
#[derive(Debug, PartialEq)]
enum Observed {
    Value(String),
    Closure,
    Abort(String),
    Failed(MachineError),
}

fn observe(r: Result<RunOutcome, MachineError>) -> Observed {
    match r {
        Ok(RunOutcome::Value(levity::m::Value::Lam(..))) => Observed::Closure,
        Ok(RunOutcome::Value(v)) => Observed::Value(v.to_string()),
        Ok(RunOutcome::Error(msg)) => Observed::Abort(msg),
        Err(e) => Observed::Failed(e),
    }
}

/// Compiles at both levels and asserts identical run results on both
/// engines. Stats are deliberately *not* compared: changing the
/// counters while preserving the outcome is the optimizer's job.
fn assert_opt_noopt_agree(source: &str, what: &str) {
    let o0 = compile_with_prelude_opt(source, OptLevel::O0)
        .unwrap_or_else(|e| panic!("{what} (O0): {e}"));
    let o2 = compile_with_prelude_opt(source, OptLevel::O2)
        .unwrap_or_else(|e| panic!("{what} (O2): {e}"));
    for engine in [Engine::Subst, Engine::Env, Engine::Bytecode] {
        let r0 = observe(o0.run_with_engine("main", FUEL, engine).map(|(out, _)| out));
        let r2 = observe(o2.run_with_engine("main", FUEL, engine).map(|(out, _)| out));
        assert_eq!(r0, r2, "O0 and O2 disagree on {what} ({engine:?} engine)");
    }
}

#[test]
fn optimizer_preserves_outcomes_on_the_whole_corpus() {
    for (what, source) in CORPUS {
        assert_opt_noopt_agree(source, what);
    }
}

#[test]
fn worker_wrapper_never_forces_a_lazily_bound_argument() {
    // Two regression shapes for the demand analysis. `pad` keeps the
    // functions above the inline threshold so worker/wrapper (not
    // inlining) decides their fate.
    //
    // (a) `x` flows into a *lazy* let whose thunk the taken branch never
    // forces: unboxing `x` would turn `I# 81#` into an abort.
    let lazy_rhs = "pad :: Int# -> Int#\n\
         pad v = ((((v +# 1#) *# 2#) -# 3#) +# ((v *# v) -# (v +# 7#)))\n\
         f :: Int -> Int -> Int\n\
         f x b = let y = (case x of { I# k -> I# (k +# 1#) }) in \
                 case b of { I# j -> case j of { 0# -> y; _ -> I# (pad (j +# 80#)) } }\n\
         main :: Int\n\
         main = f (error \"boom\") 1\n";
    assert_opt_noopt_agree(lazy_rhs, "lazy let rhs must contribute no demand");
    // (b) the scrutinee is itself a lazy binding of ⊥: the alternatives'
    // demand on `x` must not count, or the wrapper reorders which error
    // surfaces (O0 says \"E\", a bad O2 would say \"X\").
    let lazy_scrutinee = "pad :: Int# -> Int#\n\
         pad v = ((((v +# 1#) *# 2#) -# 3#) +# ((v *# v) -# (v +# 7#)))\n\
         g :: Int -> Int\n\
         g x = let y = (error \"E\") in \
               case y of { I# k -> case x of { I# j -> I# (pad (k +# j)) } }\n\
         main :: Int\n\
         main = g (error \"X\")\n";
    assert_opt_noopt_agree(
        lazy_scrutinee,
        "lazy scrutinee must not license branch demand",
    );
}

#[test]
fn join_scopes_survive_recursive_reentry() {
    // Regression: a join point whose body closes over an enclosing
    // argument, jumped to *after* a recursive call in a case scrutinee
    // returns. The recursive activation re-executes the same static
    // `join`; with a flat machine-global join map the inner definition
    // would clobber the outer one and the outer jump would add the
    // innermost `a` (yielding 1#). Frames must capture the join scope
    // of their own activation. Spelled out: f 0# = k 0# = 0+0 = 0;
    // f 1#: f 0# = 0, so k 1# = 1+1 = 2; f 2#: f 1# = 2 ≠ 0, so
    // k 1# = 1+2 = 3.
    let src = "f :: Int# -> Int#\n\
               f a = let k = \\(y :: Int#) -> y +# a in \
                     case a of { 0# -> k 0#; _ -> case f (a -# 1#) of { 0# -> k 1#; _ -> k 1# } }\n\
               main :: Int#\n\
               main = f 2#\n";
    for level in [OptLevel::O0, OptLevel::O2] {
        let compiled = compile_with_prelude_opt(src, level).unwrap();
        // All three engines: the bytecode engine keeps join frames as
        // plain jump targets inside the activation's chunk, so the
        // recursive activation must not be able to clobber them either.
        for engine in [Engine::Subst, Engine::Env, Engine::Bytecode] {
            let (out, stats) = compiled.run_with_engine("main", FUEL, engine).unwrap();
            assert_eq!(
                out.value().and_then(|v| v.as_int()),
                Some(3),
                "join scope clobbered by recursive re-entry ({level}, {engine:?})"
            );
            assert!(stats.jumps >= 1, "k must still lower as a join point");
        }
    }
    assert_pipeline_agrees(src, "join scope across recursive re-entry");
}

#[test]
fn inliner_alpha_refresh_survives_shadowing() {
    // Regression shapes for the inliner's α-refresh: a β-redex whose
    // let-bound argument shares its name with a free variable of the
    // inlined body, with the collision routed across `Case` binders.
    // A capture bug would surface as a wrong value, an unbound
    // variable (caught by the post-pass typecheck), or a `<<loop>>`
    // from a let binder capturing its own right-hand side.
    for (what, src, expected) in [
        (
            // λ binder `m` shadows the enclosing function's `m`; the
            // argument mentions the *outer* `m`, and the body reads the
            // λ-bound `m` through a Case binder. let m = plusInt m m
            // (unfreshened) would be self-referential.
            "λ binder shadows the outer variable it is fed from",
            "shadow :: Int -> Int\n\
             shadow m = case m of { I# k -> (\\(m :: Int) -> case m of { I# q -> I# (q +# k) }) (plusInt m m) }\n\
             main :: Int\n\
             main = shadow 5\n",
            15,
        ),
        (
            // A top-level callee whose λ and Case binders reuse the
            // caller's variable name: inlining `callee` at arguments
            // that mention the caller's `a` must not capture it under
            // the body's own `I# a` Case binder.
            "callee Case binders collide with the caller's free variable",
            "callee :: Int -> Int -> Int\n\
             callee x y = case x of { I# a -> case y of { I# b -> I# (a +# b) } }\n\
             caller :: Int# -> Int\n\
             caller a = callee (I# (a +# 1#)) (I# (a *# 2#))\n\
             main :: Int\n\
             main = caller 4#\n",
            13,
        ),
        (
            // Two pending (non-atomic) arguments whose rhss mention an
            // outer binder named like the callee's second λ binder: the
            // let-nest for argument 1 must not shadow argument 2's rhs.
            "let-nest ordering with colliding names",
            "both :: Int -> Int -> Int\n\
             both x y = case y of { I# j -> case x of { I# i -> I# (i -# j) } }\n\
             use :: Int -> Int\n\
             use y = both (plusInt y y) (timesInt y y)\n\
             main :: Int\n\
             main = use 3\n",
            -3,
        ),
    ] {
        assert_opt_noopt_agree(src, what);
        let compiled = compile_with_prelude(src).unwrap();
        let (out, _) = compiled.run("main", FUEL).unwrap();
        assert_eq!(
            out.value().and_then(|v| v.as_boxed_int()),
            Some(expected),
            "{what}"
        );
    }
}

#[test]
fn optimizer_preserves_failure_modes() {
    // Aborts must carry the same message, laziness must stay observable,
    // and a diverging program must diverge at both levels.
    for (what, source) in [
        (
            "error reached through an optimized call chain",
            "f :: Int -> Int\nf n = case n of { I# k -> I# (k +# 1#) }\n\
             main :: Int\nmain = f (error \"kept message\")\n",
        ),
        (
            "error in a dead lazy binding stays dead",
            "main :: Int\nmain = fst (MkPair 3 (error \"never forced\"))\n",
        ),
        (
            "error selected by class dispatch",
            "main :: Int#\nmain = abs (error \"strict position\")\n",
        ),
        (
            "division by zero after specialisation",
            "main :: Int#\nmain = quotInt# 1# (0# * 1#)\n",
        ),
        (
            "aborting unboxed global passed to a function that ignores it",
            // `bad` is a Global of unboxed type: a strict argument, so
            // its body runs at the call even though `f` drops it. The
            // inliner must not substitute the global away.
            "bad :: Int#\nbad = quotInt# 1# 0#\n\
             f :: Int# -> Int#\nf x = 42#\n\
             main :: Int#\nmain = f bad\n",
        ),
        (
            "aborting unboxed global in a dead strict let",
            "bad :: Int#\nbad = quotInt# 1# 0#\n\
             main :: Int#\nmain = let v = bad in 42#\n",
        ),
    ] {
        assert_opt_noopt_agree(source, what);
    }
    // Fuel exhaustion: an infinite loop must stay infinite (the error
    // payload is the limit, which both levels share).
    let src = "spin :: Int# -> Int#\nspin n = spin n\nmain :: Int#\nmain = spin 0#\n";
    let o0 = compile_with_prelude_opt(src, OptLevel::O0).unwrap();
    let o2 = compile_with_prelude_opt(src, OptLevel::O2).unwrap();
    let r0 = o0.run("main", 50_000).map(|(out, _)| out);
    let r2 = o2.run("main", 50_000).map(|(out, _)| out);
    assert_eq!(r0, r2);
    assert!(matches!(r0, Err(MachineError::OutOfFuel { limit: 50_000 })));
    // `f x = f x` with a ⊥ argument: the demand analysis must not let
    // the optimistic self-call rule (with no direct-demand witness)
    // unbox x, or O2 would abort where O0 spins.
    let src = "f :: Int -> Int\nf x = f x\nmain :: Int\nmain = f (error \"boom\")\n";
    let o0 = compile_with_prelude_opt(src, OptLevel::O0).unwrap();
    let o2 = compile_with_prelude_opt(src, OptLevel::O2).unwrap();
    let r0 = o0.run("main", 50_000).map(|(out, _)| out);
    let r2 = o2.run("main", 50_000).map(|(out, _)| out);
    assert_eq!(r0, r2);
    assert!(matches!(r0, Err(MachineError::OutOfFuel { .. })));
}

// ---------------------------------------------------------------------
// Property-based opt-vs-noopt over generated surface programs
// ---------------------------------------------------------------------

/// SplitMix64; tiny, deterministic, and dependency-free.
struct SurfaceGen {
    state: u64,
}

impl SurfaceGen {
    fn new(seed: u64) -> SurfaceGen {
        SurfaceGen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Helper definitions exercising every optimizer pass: `inc`/`addB` are
/// worker/wrapper fodder (head-scrutinised boxed arguments), `stepDown`
/// is the §2.1 accumulator loop (branch-demanded argument), `sq` is a
/// constrained function — its implicit `a` defaults to `Type` (§5.2),
/// and every generated call site supplies `$dNum_Int`, so the function
/// specialiser clones it — `sqU` is the same shape pinned to
/// `TYPE IntRep` (so its clones run at `Int#`), `gsum` is called at
/// *two* instance types (`Int` and `Double`, both lifted), `chain2`
/// routes one constrained function through another (specialisation must
/// propagate), `h1` is a plain unboxed helper, and `unboxI` rides
/// `($)`'s levity-polymorphic result type. `qrStep`/`useQr` exercise
/// the CPR split (a recursive product-returning accumulator scrutinised
/// at its only call site — the worker must return `(# Int#, Int# #)`
/// and tail-call itself through tuple-η), and `branchy` is a join-point
/// diamond (multi-alternative case-of-case with a continuation too big
/// to duplicate).
const GEN_PRELUDE: &str = "\
data QR = QR Int# Int#\n\
qrStep :: Int# -> Int# -> QR\n\
qrStep acc n = case n of { 0# -> QR acc n; _ -> qrStep (acc +# n) (n -# 1#) }\n\
useQr :: Int# -> Int# -> Int#\n\
useQr a n = case qrStep a n of { QR s z -> s +# z }\n\
branchy :: Int# -> Int# -> Int#\n\
branchy a b = case (case a <# b of { 1# -> QR a b; _ -> QR b a }) of { QR x y -> x +# (y *# 2#) +# (x -# y) +# (x *# y) }\n\
inc :: Int -> Int\n\
inc n = case n of { I# k -> I# (k +# 1#) }\n\
addB :: Int -> Int -> Int\n\
addB a b = case a of { I# x -> case b of { I# y -> I# (x +# y) } }\n\
stepDown :: Int -> Int -> Int\n\
stepDown acc n = case n of { I# k -> case k of { 0# -> acc; _ -> stepDown (acc + n) (n - 1) } }\n\
sq :: Num a => a -> a\n\
sq x = x * x\n\
sqU :: forall (a :: TYPE IntRep). Num a => a -> a\n\
sqU x = x * x\n\
gsum :: Num a => a -> a -> a\n\
gsum x y = x + y\n\
chain2 :: Num a => a -> a\n\
chain2 x = gsum (sq x) x\n\
h1 :: Int# -> Int#\n\
h1 x = x +# 10#\n\
unboxI :: Int -> Int#\n\
unboxI n = case n of { I# k -> k }\n";

/// A random `Int#`-typed expression.
fn gen_unboxed(g: &mut SurfaceGen, depth: u32, binders: &mut u32) -> String {
    if depth == 0 {
        return format!("{}#", g.below(10));
    }
    let d = depth - 1;
    match g.below(16) {
        0 => format!("{}#", g.below(10)),
        // The CPR accumulator: the iteration count stays a small
        // literal so the loop always terminates.
        14 => format!("(useQr {} {}#)", gen_unboxed(g, d, binders), g.below(9)),
        // The join diamond, at arbitrary unboxed arguments.
        15 => format!(
            "(branchy {} {})",
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders)
        ),
        12 => format!("(sqU {})", gen_unboxed(g, d, binders)),
        13 => {
            // `gsum` at its second instance type (Num Double), so one
            // constrained function is specialised at two types in the
            // same program.
            *binders += 1;
            format!(
                "(case gsum {}.5 {}.25 of {{ D# d{} -> double2Int# d{} }})",
                g.below(5),
                g.below(5),
                binders,
                binders
            )
        }
        1 => format!(
            "({} +# {})",
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders)
        ),
        2 => format!(
            "({} + {})",
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders)
        ),
        3 => format!(
            "({} - {})",
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders)
        ),
        4 => format!("(abs {})", gen_unboxed(g, d, binders)),
        5 => format!("(negate {})", gen_unboxed(g, d, binders)),
        6 => format!("(h1 {})", gen_unboxed(g, d, binders)),
        7 => format!("(unboxI {})", gen_boxed(g, d, binders)),
        8 => format!("(unboxI $ {})", gen_boxed(g, d, binders)),
        9 => format!(
            "(if {} < {} then {} else {})",
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders)
        ),
        10 => {
            *binders += 1;
            let v = format!("v{binders}");
            format!(
                "(let {v} = {} in ({v} +# {}))",
                gen_unboxed(g, d, binders),
                gen_unboxed(g, d, binders)
            )
        }
        _ => format!(
            "(case {} of {{ 0# -> {}; _ -> {} }})",
            gen_unboxed(g, d, binders),
            gen_unboxed(g, d, binders),
            // An abort in a branch that may or may not be taken: the
            // optimizer must neither lose nor invent it.
            if g.below(6) == 0 {
                format!("error \"alt{}\"", g.below(100))
            } else {
                gen_unboxed(g, d, binders)
            }
        ),
    }
}

/// A random boxed-`Int`-typed expression.
fn gen_boxed(g: &mut SurfaceGen, depth: u32, binders: &mut u32) -> String {
    if depth == 0 {
        return format!("{}", g.below(10));
    }
    let d = depth - 1;
    match g.below(10) {
        0 => format!("{}", g.below(10)),
        1 => format!("(inc {})", gen_boxed(g, d, binders)),
        2 => format!(
            "(addB {} {})",
            gen_boxed(g, d, binders),
            gen_boxed(g, d, binders)
        ),
        3 => format!(
            "({} + {})",
            gen_boxed(g, d, binders),
            gen_boxed(g, d, binders)
        ),
        4 => format!("(sq {})", gen_boxed(g, d, binders)),
        5 => format!("(stepDown {} {})", gen_boxed(g, d, binders), g.below(9)),
        6 => format!("(I# {})", gen_unboxed(g, d, binders)),
        8 => format!(
            "(gsum {} {})",
            gen_boxed(g, d, binders),
            gen_boxed(g, d, binders)
        ),
        9 => format!("(chain2 {})", gen_boxed(g, d, binders)),
        _ => format!(
            "(if {} == {} then {} else {})",
            gen_boxed(g, d, binders),
            gen_boxed(g, d, binders),
            gen_boxed(g, d, binders),
            gen_boxed(g, d, binders)
        ),
    }
}

fn gen_program(seed: u64) -> String {
    let mut g = SurfaceGen::new(seed);
    let mut binders = 0u32;
    let main = if g.below(24) == 0 {
        format!("error \"main{}\"", g.below(100))
    } else {
        gen_unboxed(&mut g, 4, &mut binders)
    };
    format!("{GEN_PRELUDE}main :: Int#\nmain = {main}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(64)))]
    #[test]
    fn optimizer_preserves_outcomes_on_generated_surface_programs(seed in 0u64..1_000_000) {
        let source = gen_program(seed);
        let o0 = compile_with_prelude_opt(&source, OptLevel::O0)
            .unwrap_or_else(|e| panic!("generated program must compile (O0): {e}\n{source}"));
        let o2 = compile_with_prelude_opt(&source, OptLevel::O2)
            .unwrap_or_else(|e| panic!("generated program must compile (O2): {e}\n{source}"));
        let r0 = o0.run("main", FUEL).map(|(out, _)| out);
        let r2 = o2.run("main", FUEL).map(|(out, _)| out);
        prop_assert_eq!(r0, r2, "O0 and O2 disagree on seed {}:\n{}", seed, source);
        // And the program must stay engine-independent at *both*
        // levels, full MachineStats included for the tree-walking pair
        // and the looser bytecode contract on top — the six-way grid
        // O0/O2 × subst/env/bytecode.
        for (level, compiled) in [(OptLevel::O0, &o0), (OptLevel::O2, &o2)] {
            let subst = compiled.run_with_engine("main", FUEL, Engine::Subst);
            let env = compiled.run_with_engine("main", FUEL, Engine::Env);
            prop_assert_eq!(
                &subst,
                &env,
                "engines disagree on seed {} at {}",
                seed,
                level
            );
            let bc = compiled.run_with_engine("main", FUEL, Engine::Bytecode);
            assert_bytecode_agrees(
                &split(env),
                &split(bc),
                &format!("seed {seed} at {level}"),
            );
            // ... and the generated axis gets the PR-9 leg too: lint
            // the lowered Core, then race the verified fast path
            // against the checked one.
            assert_verified_fast_path_agrees(compiled, &format!("seed {seed} at {level}"));
        }
    }
}
