//! Differential testing of the two `M` engines.
//!
//! The substitution machine (`levity::m::machine::Machine`) is the
//! executable reference semantics — Figure 6 transcribed literally. The
//! environment engine (`levity::m::env::EnvMachine`) is the fast
//! evaluator the benchmarks run on. This suite pins them together: on
//! every corpus program, every hand-written machine term, and a
//! property-based sample of generated well-typed `L` terms, the two
//! engines must agree on
//!
//! * the [`RunOutcome`] (values — functions included, via readback —
//!   and `error`/⊥ aborts),
//! * the [`MachineError`] on failing terms (`<<loop>>` blackholing,
//!   §6.2 `ClassMismatch` width-check failures, fuel exhaustion, …),
//! * **every** [`MachineStats`] counter: the engines take structurally
//!   identical transitions, so not only the allocation-shaped counters
//!   (`thunk_allocs`, `con_allocs`, `allocated_words`, `updates`) but
//!   also `steps`, `thunk_forces`, `var_lookups`, `prim_ops` and
//!   `max_stack` must coincide exactly.

use std::rc::Rc;

use proptest::prelude::*;

use levity::compile::figure7::compile_closed;
use levity::driver::pipeline::compile_with_prelude;
use levity::l::gen::{GenConfig, Generator};
use levity::m::compile::CodeProgram;
use levity::m::env::EnvMachine;
use levity::m::machine::{Globals, Machine, MachineError, MachineStats, RunOutcome};
use levity::m::syntax::{Alt, Atom, Binder, DataCon, Literal, MExpr, PrimOp};
use levity::m::Engine;

const FUEL: u64 = 200_000_000;

/// Outcome and counters of one run. The stats ride *outside* the
/// `Result` so that failing terms still pin every counter — an engine
/// that took extra transitions before erroring must not slip through.
type MachineResult = (Result<RunOutcome, MachineError>, MachineStats);

/// Runs a raw machine term on the substitution engine.
fn run_subst(globals: &Globals, t: &Rc<MExpr>, fuel: u64) -> MachineResult {
    let mut machine = Machine::with_globals(globals.clone());
    machine.set_fuel(fuel);
    let result = machine.run(Rc::clone(t));
    (result, *machine.stats())
}

/// Runs the same term on the environment engine.
fn run_env(globals: &Globals, t: &Rc<MExpr>, fuel: u64) -> MachineResult {
    let program = Rc::new(CodeProgram::compile(globals));
    let entry = program.compile_entry(t);
    let mut machine = EnvMachine::new(program);
    machine.set_fuel(fuel);
    let result = machine.run(entry);
    (result, *machine.stats())
}

/// Asserts both engines produce identical results on a raw term.
fn assert_engines_agree(globals: &Globals, t: &Rc<MExpr>, fuel: u64, what: &str) {
    let subst = run_subst(globals, t, fuel);
    let env = run_env(globals, t, fuel);
    assert_eq!(subst, env, "engines disagree on {what}: {t}");
}

/// Asserts both engines produce identical results through the full
/// pipeline (surface source, prelude included).
fn assert_pipeline_agrees(source: &str, what: &str) {
    let compiled = compile_with_prelude(source).unwrap_or_else(|e| panic!("{what}: {e}"));
    let subst = compiled.run_with_engine("main", FUEL, Engine::Subst);
    let env = compiled.run_with_engine("main", FUEL, Engine::Env);
    assert_eq!(subst, env, "engines disagree on {what}");
}

// ---------------------------------------------------------------------
// The compiled corpus: every benchmark program plus §2.1/§7.3 shapes
// ---------------------------------------------------------------------

/// The surface programs the benchmarks time, at reduced sizes, plus
/// representative prelude workloads. Outcomes *and* allocation counters
/// must be engine-independent, or the benchmark story would be
/// comparing different semantics.
const CORPUS: &[(&str, &str)] = &[
    (
        "sum_to boxed (section 2.1)",
        "sumTo :: Int -> Int -> Int\n\
         sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = sumTo 0 300\n",
    ),
    (
        "sum_to unboxed (section 2.1)",
        "sumTo# :: Int# -> Int# -> Int#\n\
         sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = sumTo# 0# 300#\n",
    ),
    (
        "dictionary dispatch at Int# (section 7.3)",
        "loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 200#\n",
    ),
    (
        "dictionary dispatch at Int (section 7.3)",
        "loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 200\n",
    ),
    (
        "prelude combinators",
        "main :: Int\nmain = sum (map (\\(x :: Int) -> x * x) (enumFromTo 1 15))\n",
    ),
    (
        "levity-polymorphic ($) at Int# (section 7.2)",
        "unbox :: Int -> Int#\nunbox n = case n of { I# k -> k }\n\
         main :: Int#\nmain = unbox $ 41 + 1\n",
    ),
    (
        "pairs and projections",
        "main :: Int\nmain = fst (MkPair 3 True) + snd (MkPair 1 4)\n",
    ),
    (
        "double class instances",
        "main :: Int#\nmain = double2Int# (abs (0.0## - 2.25##) * 4.0##)\n",
    ),
    (
        "runtime error carries its message (rule ERR)",
        "main :: Int#\nmain = error \"differential boom\"\n",
    ),
    (
        "lazy bottom is never demanded",
        "main :: Int\nmain = fst (MkPair 7 (error \"unforced\"))\n",
    ),
    (
        "levity-polymorphic user class",
        "class Default (a :: TYPE r) where { deflt :: Bool -> a }\n\
         instance Default Int# where { deflt b = 0# }\n\
         instance Default Int where { deflt b = 0 }\n\
         main :: Int#\n\
         main = deflt True +# 1#\n",
    ),
    (
        "function-valued main (closure readback)",
        "main :: Int -> Int\nmain = \\(x :: Int) -> x + 1\n",
    ),
];

#[test]
fn engines_agree_on_the_whole_corpus() {
    for (what, source) in CORPUS {
        assert_pipeline_agrees(source, what);
    }
}

#[test]
fn engines_agree_on_fuel_exhaustion_through_the_pipeline() {
    // OutOfFuel carries the limit; equality also certifies the engines
    // count the same number of transitions before giving up.
    let compiled = compile_with_prelude(
        "spin :: Int# -> Int#\nspin n = spin n\nmain :: Int#\nmain = spin 0#\n",
    )
    .unwrap();
    let subst = compiled.run_with_engine("main", 12_345, Engine::Subst);
    let env = compiled.run_with_engine("main", 12_345, Engine::Env);
    assert_eq!(subst, env);
    assert!(matches!(
        subst,
        Err(MachineError::OutOfFuel { limit: 12_345 })
    ));
}

// ---------------------------------------------------------------------
// Hand-written machine terms: failure modes and dark corners
// ---------------------------------------------------------------------

fn int_atom(n: i64) -> Atom {
    Atom::Lit(Literal::Int(n))
}

#[test]
fn engines_agree_on_blackhole_loops() {
    // let p = case p of I#[i] -> I#[i] in case p of I#[i] -> i — the
    // cyclic thunk demands itself: <<loop>> on both engines.
    let body = MExpr::case_int_hash(
        MExpr::var("p"),
        "i",
        MExpr::con_int_hash(Atom::Var("i".into())),
    );
    let t = MExpr::let_lazy(
        "p",
        body,
        MExpr::case_int_hash(MExpr::var("p"), "i", MExpr::var("i")),
    );
    let globals = Globals::new();
    assert_eq!(run_subst(&globals, &t, FUEL).0, Err(MachineError::Loop));
    assert_engines_agree(&globals, &t, FUEL, "blackhole self-demand");
}

#[test]
fn engines_agree_on_width_check_failures() {
    // (λp:ptr. p) 1# — §6.2 register-class mismatch, same error payload
    // (binder name, expected class, actual class) from both engines.
    let t = MExpr::app(MExpr::lam(Binder::ptr("p"), MExpr::var("p")), int_atom(1));
    let globals = Globals::new();
    let err = run_subst(&globals, &t, FUEL).0.unwrap_err();
    assert!(matches!(err, MachineError::ClassMismatch { .. }));
    assert_engines_agree(&globals, &t, FUEL, "class mismatch");

    // Mismatch through a case field binder.
    let bad_case = Rc::new(MExpr::Case(
        MExpr::con_int_hash(int_atom(3)),
        [Alt::Con(
            DataCon::int_hash(),
            vec![Binder::ptr("p")],
            MExpr::var("p"),
        )]
        .into(),
        None,
    ));
    assert_engines_agree(&globals, &bad_case, FUEL, "case-field class mismatch");
}

#[test]
fn engines_agree_on_machine_failures() {
    let globals = Globals::new();
    for (what, t) in [
        (
            "applied non-function",
            MExpr::app(MExpr::int(3), int_atom(4)),
        ),
        ("unknown global", MExpr::global("nope")),
        ("unbound variable", MExpr::var("ghost")),
        (
            "no matching alternative",
            Rc::new(MExpr::Case(
                MExpr::int(7),
                [Alt::Lit(Literal::Int(0), MExpr::int(1))].into(),
                None,
            )),
        ),
        (
            "case on a multi-value",
            Rc::new(MExpr::Case(
                Rc::new(MExpr::MultiVal(vec![int_atom(1), int_atom(2)])),
                [Alt::Lit(Literal::Int(0), MExpr::int(1))].into(),
                None,
            )),
        ),
        (
            "let! of a multi-value",
            MExpr::let_strict(
                Binder::int("x"),
                Rc::new(MExpr::MultiVal(vec![int_atom(1)])),
                MExpr::var("x"),
            ),
        ),
        (
            "division by zero",
            MExpr::prim(PrimOp::QuotI, vec![int_atom(1), int_atom(0)]),
        ),
        (
            "oversaturated primop",
            MExpr::prim(PrimOp::AddI, vec![int_atom(1), int_atom(2), int_atom(3)]),
        ),
    ] {
        assert!(
            run_subst(&globals, &t, FUEL).0.is_err(),
            "{what} should fail"
        );
        assert_engines_agree(&globals, &t, FUEL, what);
    }
}

#[test]
fn engines_count_prim_ops_identically_even_on_failure() {
    // A 3-argument primop errors in apply_prim on both engines — after
    // the op was counted. The run helpers only compare stats on Ok, so
    // read the counters off the machines directly here.
    let t = MExpr::prim(PrimOp::AddI, vec![int_atom(1), int_atom(2), int_atom(3)]);
    let mut subst = Machine::new();
    let subst_err = subst.run(Rc::clone(&t)).unwrap_err();
    let program = Rc::new(CodeProgram::compile(&Globals::new()));
    let entry = program.compile_entry(&t);
    let mut env = EnvMachine::new(program);
    let env_err = env.run(entry).unwrap_err();
    assert_eq!(subst_err, env_err);
    assert_eq!(subst.stats(), env.stats());
    assert_eq!(subst.stats().prim_ops, 1);
}

#[test]
fn engines_agree_on_shared_thunks_and_stats() {
    // Shared thunk demanded twice: thunk_forces/updates/var_lookups
    // must match, not just the outcome.
    let t = MExpr::let_lazy(
        "p",
        MExpr::con_int_hash(int_atom(7)),
        MExpr::case_int_hash(
            MExpr::var("p"),
            "a",
            MExpr::case_int_hash(
                MExpr::var("p"),
                "b",
                MExpr::prim(
                    PrimOp::AddI,
                    vec![Atom::Var("a".into()), Atom::Var("b".into())],
                ),
            ),
        ),
    );
    let globals = Globals::new();
    let (result, stats) = run_subst(&globals, &t, FUEL);
    result.unwrap();
    assert_eq!(stats.thunk_forces, 1);
    assert_eq!(stats.var_lookups, 1);
    assert_engines_agree(&globals, &t, FUEL, "thunk sharing");
}

#[test]
fn engines_agree_on_function_results_with_captured_bindings() {
    // let! a = 5# in λb. +# a b — the subst machine substitutes a into
    // the lambda body; the env engine must read the closure back to the
    // same term.
    let t = MExpr::let_strict(
        Binder::int("a"),
        MExpr::int(5),
        MExpr::lam(
            Binder::int("b"),
            MExpr::prim(
                PrimOp::AddI,
                vec![Atom::Var("a".into()), Atom::Var("b".into())],
            ),
        ),
    );
    let globals = Globals::new();
    let out = run_subst(&globals, &t, FUEL).0.unwrap();
    assert_eq!(
        out.value().map(ToString::to_string),
        Some("<function \\b:word>".to_owned())
    );
    assert_engines_agree(&globals, &t, FUEL, "closure readback");
}

#[test]
fn engines_agree_on_shadowed_case_fields() {
    // case T[1#, 2#] of T x x -> x — the innermost (last) binder wins
    // on both engines.
    let two_field = DataCon {
        name: "T".into(),
        tag: 0,
        fields: vec![levity::core::rep::Slot::Word, levity::core::rep::Slot::Word],
    };
    let t = Rc::new(MExpr::Case(
        Rc::new(MExpr::Con(
            two_field.clone(),
            vec![int_atom(1), int_atom(2)],
        )),
        [Alt::Con(
            two_field,
            vec![Binder::int("x"), Binder::int("x")],
            MExpr::var("x"),
        )]
        .into(),
        None,
    ));
    let globals = Globals::new();
    let out = run_subst(&globals, &t, FUEL).0.unwrap();
    assert_eq!(
        out,
        RunOutcome::Value(levity::m::Value::Lit(Literal::Int(2)))
    );
    assert_engines_agree(&globals, &t, FUEL, "shadowed case fields");
}

// ---------------------------------------------------------------------
// Property-based differential testing over generated well-typed terms
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn engines_agree_on_generated_well_typed_programs(seed in 0u64..25_000) {
        // Type-directed generation (levity-l) through the Figure 7
        // compiler exercises β-redexes, closures, case, `error`/⊥ and
        // rep-polymorphic instantiations — closed terms, so both
        // engines must agree on outcome, error and every counter.
        let mut generator = Generator::new(seed, GenConfig::default());
        let (e, _ty) = generator.generate();
        let t = compile_closed(&e).expect("well-typed terms compile");
        let globals = Globals::new();
        let subst = run_subst(&globals, &t, 2_000_000);
        let env = run_env(&globals, &t, 2_000_000);
        prop_assert_eq!(subst, env, "engines disagree on generated term {}", e);
    }
}
