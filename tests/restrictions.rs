//! E5 — the §5.1 acceptance table, end to end.
//!
//! Each of the paper's worked examples is fed through the *full*
//! pipeline (parse → infer → lint → levity check → lower); the paper's
//! verdicts must be reproduced, with rejections arriving specifically
//! from the levity checks (not as generic type errors).

use levity::driver::{compile_with_prelude, PipelineError};

fn accepts(src: &str) {
    match compile_with_prelude(src) {
        Ok(_) => {}
        Err(e) => panic!("expected acceptance, got:\n{e}\nsource:\n{src}"),
    }
}

fn rejects_for_levity(src: &str) {
    match compile_with_prelude(src) {
        Ok(_) => panic!("expected a levity rejection for:\n{src}"),
        Err(e) => assert!(
            e.is_levity_rejection(),
            "expected a section-5.1 rejection, got a different error:\n{e}"
        ),
    }
}

#[test]
fn b_twice_at_lifted_types_is_accepted() {
    // The ordinary bTwice of §1: a :: Type.
    accepts(
        "bTwice :: Bool -> a -> (a -> a) -> a\n\
         bTwice b x f = if b then f (f x) else x\n",
    );
}

#[test]
fn levity_polymorphic_b_twice_is_rejected() {
    // §5: "we cannot compile a levity-polymorphic bTwice into concrete
    // machine code, because its calling convention depends on r."
    rejects_for_levity(
        "bTwice :: forall (r :: Rep) (a :: TYPE r). Bool -> a -> (a -> a) -> a\n\
         bTwice b x f = if b then f (f x) else x\n",
    );
}

#[test]
fn my_error_with_declared_signature_is_accepted() {
    // §5.2: "we can write myError … to get a levity-polymorphic myError."
    accepts(
        "myError2 :: forall (r :: Rep) (a :: TYPE r). Bool -> a\n\
         myError2 s = error \"Program error\"\n",
    );
}

#[test]
fn levity_polymorphic_identity_is_rejected() {
    // §5.2: "any attempt to declare the above levity-polymorphic type
    // signature for f will fail the check."
    rejects_for_levity(
        "f :: forall (r :: Rep) (a :: TYPE r). a -> a\n\
         f x = x\n",
    );
}

#[test]
fn dollar_generalizes_in_its_result_only() {
    // §7.2: ($) with a levity-polymorphic *result* is accepted...
    accepts(
        "apply :: forall (r :: Rep) (a :: Type) (b :: TYPE r). (a -> b) -> a -> b\n\
         apply f x = f x\n\
         useIt :: Int#\n\
         useIt = apply (\\(n :: Int) -> case n of { I# k -> k }) 3\n",
    );
    // ... but generalizing the *argument* too is rejected.
    rejects_for_levity(
        "apply :: forall (r1 :: Rep) (r2 :: Rep) (a :: TYPE r1) (b :: TYPE r2). (a -> b) -> a -> b\n\
         apply f x = f x\n",
    );
}

#[test]
fn compose_cannot_generalize_the_middle_type() {
    // §7.2: "we cannot generalize the kind of b."
    accepts(
        "comp :: forall (r :: Rep) (a :: Type) (b :: Type) (c :: TYPE r). (b -> c) -> (a -> b) -> a -> c\n\
         comp f g x = f (g x)\n",
    );
    rejects_for_levity(
        "comp :: forall (r1 :: Rep) (r2 :: Rep) (a :: Type) (b :: TYPE r2) (c :: TYPE r1). (b -> c) -> (a -> b) -> a -> c\n\
         comp f g x = f (g x)\n",
    );
}

#[test]
fn abs1_is_accepted_but_abs2_is_rejected() {
    // §7.3: abs1 = abs is fine; abs2 x = abs x binds a levity-polymorphic
    // x. "When compiling, η-equivalent definitions are not equivalent!"
    accepts(
        "abs1 :: forall (r :: Rep) (a :: TYPE r). Num a => a -> a\n\
         abs1 = abs\n",
    );
    rejects_for_levity(
        "abs2 :: forall (r :: Rep) (a :: TYPE r). Num a => a -> a\n\
         abs2 x = abs x\n",
    );
}

#[test]
fn concrete_unboxed_code_is_always_accepted() {
    // Unboxed ≠ levity-polymorphic: Int# binders are fine (§3.1's kinds
    // distinguish, they don't forbid).
    accepts(
        "f :: Int# -> Int#\n\
         f n = if intToBool (n <# 0#) then error \"negative\" else n *# 2#\n",
    );
}

#[test]
fn levity_polymorphic_local_let_is_rejected() {
    rejects_for_levity(
        "g :: forall (r :: Rep) (a :: TYPE r). Bool -> a\n\
         g b = let x = myError b in x\n",
    );
}

#[test]
fn instantiating_levity_polymorphism_is_fine_at_each_concrete_rep() {
    // The whole point: one definition, many calling conventions — chosen
    // at instantiation.
    accepts(
        "useBoxed :: Int\n\
         useBoxed = id $ 5\n\
         useUnboxed :: Int#\n\
         useUnboxed = (\\(n :: Int) -> case n of { I# k -> k }) $ 5\n",
    );
}

#[test]
fn rejection_quality_names_the_binder() {
    let err = compile_with_prelude(
        "f :: forall (r :: Rep) (a :: TYPE r). a -> a\n\
         f x = x\n",
    )
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains('x'), "error should name the binder: {msg}");
    assert!(msg.contains("TYPE r"), "error should show the kind: {msg}");
}

#[test]
fn ill_typed_programs_are_not_levity_rejections() {
    let err = compile_with_prelude("f :: Int#\nf = 3\n").unwrap_err();
    assert!(
        matches!(err, PipelineError::Elaborate(_)),
        "a plain type error must come from elaboration: {err}"
    );
}
