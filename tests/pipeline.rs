//! End-to-end pipeline tests: surface source through inference,
//! dictionary elaboration, levity checks, lowering, and the machine.

use levity::driver::compile_with_prelude;
use levity::m::machine::RunOutcome;

const FUEL: u64 = 50_000_000;

fn run_int(src: &str) -> i64 {
    let compiled = compile_with_prelude(src).unwrap_or_else(|e| panic!("{e}"));
    let (out, _) = compiled.run("main", FUEL).unwrap();
    match out.value() {
        Some(v) => v
            .as_int()
            .or_else(|| v.as_boxed_int())
            .unwrap_or_else(|| panic!("non-integer result: {v}")),
        None => panic!("program aborted: {out:?}"),
    }
}

#[test]
fn sum_to_unboxed_runs_with_zero_allocation() {
    // §2.1's sumTo#, the unboxed loop: "no memory traffic whatsoever."
    let src = "sumTo# :: Int# -> Int# -> Int#\n\
               sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
               main :: Int#\n\
               main = sumTo# 0# 1000#\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(500500));
    assert_eq!(stats.allocated_words, 0);
    assert_eq!(stats.thunk_forces, 0);
}

#[test]
fn sum_to_boxed_allocates_linearly() {
    // §2.1's boxed sumTo: thunks and boxes per iteration. This is a
    // claim about the *unoptimized* compilation scheme, so it pins the
    // `O0` baseline — the optimizer's whole job is to destroy it (see
    // `optimizer_unboxes_the_boxed_loop` below).
    let src = "sumTo :: Int -> Int -> Int\n\
               sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
               main :: Int\n\
               main = sumTo 0 1000\n";
    let compiled =
        levity::driver::compile_with_prelude_opt(src, levity::driver::OptLevel::O0).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(500500));
    // At least one allocation per iteration: boxes and thunks.
    assert!(
        stats.allocated_words >= 1000,
        "boxed loop should allocate heavily, got {} words",
        stats.allocated_words
    );
    assert!(stats.thunk_forces >= 1000);
}

#[test]
fn optimizer_unboxes_the_boxed_loop() {
    // The same program at the default level: specialisation +
    // worker/wrapper turn the boxed class-dispatch loop into an unboxed
    // register loop — only the final result is boxed.
    let src = "sumTo :: Int -> Int -> Int\n\
               sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
               main :: Int\n\
               main = sumTo 0 1000\n";
    let compiled = compile_with_prelude(src).unwrap();
    assert!(
        compiled.opt_report.workers >= 1,
        "{:?}",
        compiled.opt_report
    );
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(500500));
    assert!(
        stats.allocated_words <= 8,
        "optimized boxed loop should allocate O(1) words, got {}",
        stats.allocated_words
    );
    assert_eq!(stats.thunk_forces, 0);
}

#[test]
fn class_dispatch_at_unboxed_types() {
    // §7.3: 3# + 4# via the Num Int# instance.
    assert_eq!(run_int("main :: Int#\nmain = 3# + 4#\n"), 7);
    // And at boxed types through the same class.
    assert_eq!(run_int("main :: Int\nmain = 3 + 4\n"), 7);
}

#[test]
fn class_methods_work_across_instances() {
    assert_eq!(run_int("main :: Int#\nmain = abs (negate 5#)\n"), 5);
    assert_eq!(run_int("main :: Int\nmain = abs (0 - 42)\n"), 42);
    // Double# arithmetic through the class, observed via conversion.
    assert_eq!(
        run_int("main :: Int#\nmain = double2Int# (2.5## + 1.5##)\n"),
        4
    );
}

#[test]
fn comparison_classes_dispatch_at_both_reps() {
    assert_eq!(
        run_int("main :: Int#\nmain = if 3# < 4# then 1# else 0#\n"),
        1
    );
    assert_eq!(
        run_int("main :: Int#\nmain = if 3 == 4 then 1# else 0#\n"),
        0
    );
    assert_eq!(
        run_int("main :: Int#\nmain = if 2.0## <= 2.0## then 1# else 0#\n"),
        1
    );
}

#[test]
fn dollar_applies_at_unboxed_result_type() {
    // §7.2: the generalized ($) at b :: TYPE IntRep.
    assert_eq!(
        run_int(
            "unbox :: Int -> Int#\n\
             unbox n = case n of { I# k -> k }\n\
             main :: Int#\n\
             main = unbox $ 7\n"
        ),
        7
    );
}

#[test]
fn compose_applies_at_unboxed_final_result() {
    assert_eq!(
        run_int(
            "unbox :: Int -> Int#\n\
             unbox n = case n of { I# k -> k }\n\
             inc :: Int -> Int\n\
             inc n = n + 1\n\
             main :: Int#\n\
             main = (.) unbox inc 41\n"
        ),
        42
    );
}

#[test]
fn laziness_is_observable() {
    // A bound error that is never demanded does not fire.
    assert_eq!(
        run_int(
            "ignore :: Int -> Int#\n\
             ignore x = 9#\n\
             main :: Int#\n\
             main = ignore (error \"not demanded\")\n"
        ),
        9
    );
    // But a strict (unboxed) argument is demanded.
    let compiled = compile_with_prelude(
        "strict :: Int# -> Int#\n\
         strict x = 9#\n\
         main :: Int#\n\
         main = strict (error \"demanded\")\n",
    )
    .unwrap();
    let (out, _) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out, RunOutcome::Error("demanded".to_owned()));
}

#[test]
fn user_data_types_and_matching() {
    assert_eq!(
        run_int(
            "data Shape = Circle Double | Rect Double Double\n\
             area2 :: Shape -> Int#\n\
             area2 s = case s of { Circle r -> 1#; Rect w h -> 2# }\n\
             main :: Int#\n\
             main = area2 (Rect 1.0 2.0)\n"
        ),
        2
    );
}

#[test]
fn polymorphic_data_types_work() {
    assert_eq!(
        run_int(
            "main :: Int\n\
             main = fromMaybe 0 (Just 42)\n"
        ),
        42
    );
    assert_eq!(run_int("main :: Int\nmain = fromMaybe 7 Nothing\n"), 7);
}

#[test]
fn lists_and_higher_order_functions() {
    assert_eq!(
        run_int("main :: Int\nmain = sum (enumFromTo 1 100)\n"),
        5050
    );
    assert_eq!(
        run_int("main :: Int\nmain = sum (map (\\x -> x * 2) (enumFromTo 1 10))\n"),
        110
    );
    assert_eq!(
        run_int("main :: Int\nmain = length (replicate 5 True)\n"),
        5
    );
}

#[test]
fn local_lets_and_recursion() {
    assert_eq!(
        run_int(
            "main :: Int#\n\
             main = let go = \\(n :: Int#) -> case n of { 0# -> 0#; _ -> 1# + go (n -# 1#) } in go 10#\n"
        ),
        10
    );
}

#[test]
fn unsigned_bindings_generalize_with_lifted_defaults() {
    // §5.2: f = \x -> x infers forall (a :: Type). a -> a, *not* the
    // un-compilable levity-polymorphic type.
    let compiled = compile_with_prelude("myId x = x\nmain :: Int\nmain = myId 3\n").unwrap();
    let sig = compiled
        .signature("myId", &levity::core::pretty::PrintOptions::explicit())
        .unwrap();
    assert!(
        !sig.contains("Rep"),
        "inferred type must not be levity-polymorphic: {sig}"
    );
    let (out, _) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(3));
}

#[test]
fn inferred_identity_rejects_unboxed_arguments() {
    // Because myId defaulted to Type, using it at Int# must fail to
    // unify (kind mismatch surfaces as an elaboration error).
    let err = compile_with_prelude("myId x = x\nmain :: Int#\nmain = myId 3#\n").unwrap_err();
    assert!(
        matches!(err, levity::driver::PipelineError::Elaborate(_)),
        "{err}"
    );
}

#[test]
fn char_primops_run() {
    assert_eq!(run_int("main :: Int#\nmain = ord# 'A'#\n"), 65);
    assert_eq!(
        run_int("main :: Int#\nmain = if 'x'# == 'x'# then 1# else 0#\n"),
        1
    );
}

#[test]
fn mutual_recursion_between_signed_bindings() {
    assert_eq!(
        run_int(
            "isEven :: Int# -> Int#\n\
             isEven n = case n of { 0# -> 1#; _ -> isOdd (n -# 1#) }\n\
             isOdd :: Int# -> Int#\n\
             isOdd n = case n of { 0# -> 0#; _ -> isEven (n -# 1#) }\n\
             main :: Int#\n\
             main = isEven 100#\n"
        ),
        1
    );
}

#[test]
fn deep_polymorphic_recursion_with_signature() {
    // Signatures allow polymorphic recursion (§9.2 notes Haskell has it).
    assert_eq!(
        run_int(
            "depth :: Maybe a -> Int -> Int\n\
             depth m n = case m of { Nothing -> n; Just x -> depth (Just (Just x)) (n + 1) }\n\
             shallow :: Maybe Int\n\
             shallow = Nothing\n\
             main :: Int\n\
             main = depth shallow 0\n"
        ),
        0
    );
}

// ---------------------------------------------------------------------
// Optimizer boundaries: what the passes must *not* touch, and opt-level
// coverage of the pipeline's own corner programs.
// ---------------------------------------------------------------------

mod optimizer_boundaries {
    use levity::driver::{
        compile_prelude, compile_with_prelude, compile_with_prelude_opt, OptLevel,
    };

    /// Programs must behave identically at `O0` and the default level,
    /// through the full pipeline entry points (the differential suite
    /// covers the corpus; this pins the pipeline API itself).
    #[test]
    fn every_opt_level_produces_the_same_values() {
        for src in [
            "main :: Int#\nmain = 3# + 4#\n",
            "main :: Int\nmain = sum (enumFromTo 1 20)\n",
            "main :: Int#\nmain = abs (negate 5#)\n",
        ] {
            let o0 = compile_with_prelude_opt(src, OptLevel::O0).unwrap();
            let o2 = compile_with_prelude_opt(src, OptLevel::O2).unwrap();
            let (v0, _) = o0.run("main", super::FUEL).unwrap();
            let (v2, _) = o2.run("main", super::FUEL).unwrap();
            assert_eq!(
                v0.value().map(ToString::to_string),
                v2.value().map(ToString::to_string),
                "{src}"
            );
        }
    }

    /// The specialisation passes act exactly when a dictionary is
    /// statically known. A constrained function *never called with a
    /// concrete dictionary* keeps its dictionary λ untouched; the
    /// moment call sites supply one, the function specialiser clones it
    /// and the clone's projections discharge.
    #[test]
    fn specialiser_leaves_unknown_dictionaries_alone() {
        let prelude_only = compile_prelude().unwrap();
        assert_eq!(prelude_only.opt_report.specialised, 0);
        assert_eq!(prelude_only.opt_report.fn_specialised, 0);
        // No `main`, so every binding is an entry point and `square`
        // survives with its abstract dictionary intact: there is no
        // call site to read a concrete dictionary from.
        let abstract_only = compile_with_prelude(
            "square :: Num a => a -> a\n\
             square x = x * x\n",
        )
        .unwrap();
        assert_eq!(abstract_only.opt_report.specialised, 0);
        assert_eq!(abstract_only.opt_report.fn_specialised, 0);
        let square = abstract_only.program.binding("square".into()).unwrap();
        fn keeps_dict_lambda(mut e: &levity::ir::terms::CoreExpr) -> bool {
            use levity::ir::terms::CoreExpr;
            use levity::ir::types::Type;
            while let CoreExpr::RepLam(_, b) | CoreExpr::TyLam(_, _, b) = e {
                e = b;
            }
            matches!(e, CoreExpr::Lam(_, Type::Dict(..), _))
        }
        assert!(
            keeps_dict_lambda(&square.expr),
            "an abstract dictionary must keep its λ: {}",
            square.expr
        );
        // …and the moment the dictionary *is* known at a call site, the
        // function specialiser clones `square`, the clone's projection
        // discharges, and the constrained original is eliminated.
        let known = compile_with_prelude(
            "square :: Num a => a -> a\n\
             square x = x * x\n\
             main :: Int\n\
             main = square 7\n",
        )
        .unwrap();
        assert!(
            known.opt_report.fn_specialised >= 1,
            "{:?}",
            known.opt_report
        );
        assert!(known.opt_report.specialised >= 1, "{:?}", known.opt_report);
        let (out, _) = known.run("main", super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(49));
        // Selector projections fire directly too, as before.
        let sel = compile_with_prelude("main :: Int#\nmain = 3# + 4#\n").unwrap();
        assert!(sel.opt_report.specialised >= 1, "{:?}", sel.opt_report);
    }

    /// Truly levity-polymorphic bindings — the class selectors (whose
    /// types quantify `r :: Rep`) and the prelude's `myError` — must
    /// come through the optimizer byte-for-byte unchanged: there is no
    /// representation information to act on. (No `main` here, so every
    /// binding is an entry point and dead-global elimination keeps the
    /// whole prelude inspectable.)
    #[test]
    fn levity_polymorphic_bindings_are_untouched() {
        let compiled = compile_with_prelude("keepAlive :: Int#\nkeepAlive = 1#\n").unwrap();
        for name in ["+", "abs", "==", "myError"] {
            let before = compiled
                .elaborated
                .program
                .binding(name.into())
                .unwrap_or_else(|| panic!("{name} missing from elaborated program"));
            let after = compiled
                .program
                .binding(name.into())
                .unwrap_or_else(|| panic!("{name} missing from optimized program"));
            assert_eq!(
                before.expr, after.expr,
                "optimizer must not rewrite the levity-polymorphic `{name}`"
            );
            assert_eq!(before.ty, after.ty);
        }
    }

    /// A constrained function called only at `Int#` (through the
    /// `forall (a :: TYPE IntRep)` shape §5.1 admits — the binder's rep
    /// is concrete) is cloned without its dictionary argument, and the
    /// dictionary-threading original is eliminated from the lowered
    /// program.
    #[test]
    fn constrained_function_at_int_hash_loses_its_dictionary_argument() {
        use levity::ir::types::Type;
        let compiled = compile_with_prelude(
            "stepU :: forall (a :: TYPE IntRep). Num a => a -> a\n\
             stepU x = (x * x) + x\n\
             main :: Int#\n\
             main = stepU 4#\n",
        )
        .unwrap();
        assert!(
            compiled.opt_report.fn_specialised >= 1,
            "{:?}",
            compiled.opt_report
        );
        assert!(
            compiled.opt_report.dead_globals >= 1,
            "{:?}",
            compiled.opt_report
        );
        // The original — the only binding with a dictionary argument —
        // is gone from the lowered program…
        assert!(
            compiled.program.binding("stepU".into()).is_none(),
            "the dictionary-threading original must be eliminated"
        );
        // …and nothing that survived takes a dictionary.
        for b in &compiled.program.bindings {
            let (args, _) = b.ty.split_funs();
            assert!(
                !args.iter().any(|t| matches!(t, Type::Dict(..))),
                "`{}` still threads a dictionary: {}",
                b.name,
                b.ty
            );
        }
        let (out, _) = compiled.run("main", super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_int()), Some(20));
    }

    /// The PR-4 acceptance criterion, pinned in tier-1: a
    /// `Num a => a -> a` helper driving the §7.3 loop reaches ≤1.1x
    /// the step count of the direct primop loop at O2, at `Int` and at
    /// `Int#` alike.
    #[test]
    fn specialised_helper_loops_match_direct_primop_step_counts() {
        let direct = compile_with_prelude(
            "loop :: Int# -> Int# -> Int#\n\
             loop acc n = case n of { 0# -> acc; _ -> loop (acc +# (n +# n)) (n -# 1#) }\n\
             main :: Int#\n\
             main = loop 0# 1000#\n",
        )
        .unwrap();
        let unboxed = compile_with_prelude(
            "step :: forall (a :: TYPE IntRep). Num a => a -> a\n\
             step x = x + x\n\
             loop :: Int# -> Int# -> Int#\n\
             loop acc n = case n of { 0# -> acc; _ -> loop (acc + step n) (n - 1#) }\n\
             main :: Int#\n\
             main = loop 0# 1000#\n",
        )
        .unwrap();
        let boxed = compile_with_prelude(
            "step :: Num a => a -> a\n\
             step x = x + x\n\
             loop :: Int -> Int -> Int\n\
             loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + step n) (n - 1) } }\n\
             main :: Int\n\
             main = loop 0 1000\n",
        )
        .unwrap();
        let (dv, ds) = direct.run("main", super::FUEL).unwrap();
        let (uv, us) = unboxed.run("main", super::FUEL).unwrap();
        let (bv, bs) = boxed.run("main", super::FUEL).unwrap();
        assert_eq!(
            dv.value().and_then(|v| v.as_int()),
            uv.value().and_then(|v| v.as_int())
        );
        assert_eq!(
            dv.value().and_then(|v| v.as_int()),
            bv.value().and_then(|v| v.as_boxed_int())
        );
        let unboxed_ratio = us.steps as f64 / ds.steps as f64;
        let boxed_ratio = bs.steps as f64 / ds.steps as f64;
        assert!(
            unboxed_ratio <= 1.1,
            "Int# helper loop: {} steps vs {} direct ({unboxed_ratio:.3}x)",
            us.steps,
            ds.steps
        );
        assert!(
            boxed_ratio <= 1.1,
            "Int helper loop: {} steps vs {} direct ({boxed_ratio:.3}x)",
            bs.steps,
            ds.steps
        );
        // And the loops run register-clean: no thunks, O(1) allocation.
        assert_eq!(us.thunk_forces, 0);
        assert!(bs.allocated_words <= 8, "{}", bs.allocated_words);
    }

    /// An exported-but-unused global survives dead-global elimination
    /// exactly when it is listed as an entry point; unlisted, it is
    /// dropped.
    #[test]
    fn entry_points_protect_exported_but_unused_globals() {
        use levity::driver::{compile_with_prelude_entries, OptLevel};
        let src = "exportedHelper :: Int# -> Int#\n\
                   exportedHelper n = n +# 100#\n\
                   main :: Int#\n\
                   main = 1#\n";
        // Default policy: `main` is the only entry; the helper dies.
        let default = compile_with_prelude(src).unwrap();
        assert_eq!(default.entry_points, vec!["main".into()]);
        assert!(default.program.binding("exportedHelper".into()).is_none());
        // Listed as an entry point: it survives, and is runnable.
        let exported =
            compile_with_prelude_entries(src, OptLevel::O2, Some(&["main", "exportedHelper"]))
                .unwrap();
        assert!(exported.program.binding("exportedHelper".into()).is_some());
        let (out, _) = exported.run("main", super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_int()), Some(1));
        let term = levity::m::syntax::MExpr::apps(
            levity::m::syntax::MExpr::global("exportedHelper"),
            [levity::m::syntax::Atom::Lit(
                levity::m::syntax::Literal::Int(5),
            )],
        );
        let (out, _) = exported.run_term(term, super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_int()), Some(105));
    }

    /// The PR-5 acceptance criterion, pinned in tier-1: the boxed
    /// sum_to loop at O2 runs within 1.1x of the direct primop loop's
    /// step count and allocates ~0 words per iteration, and the same
    /// holds for a CPR'd recursive divMod loop against its hand-written
    /// unboxed-tuple equivalent.
    #[test]
    fn boxed_and_cpr_loops_match_direct_primop_step_counts() {
        // sum_to/boxed vs the direct unboxed loop.
        let boxed = compile_with_prelude(
            "sumTo :: Int -> Int -> Int\n\
             sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
             main :: Int\n\
             main = sumTo 0 5000\n",
        )
        .unwrap();
        let direct = compile_with_prelude(
            "sumTo# :: Int# -> Int# -> Int#\n\
             sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
             main :: Int#\n\
             main = sumTo# 0# 5000#\n",
        )
        .unwrap();
        let (bv, bs) = boxed.run("main", super::FUEL).unwrap();
        let (dv, ds) = direct.run("main", super::FUEL).unwrap();
        assert_eq!(
            bv.value().and_then(|v| v.as_boxed_int()),
            dv.value().and_then(|v| v.as_int())
        );
        let ratio = bs.steps as f64 / ds.steps as f64;
        assert!(
            ratio <= 1.1,
            "sum_to/boxed at O2: {} steps vs {} direct ({ratio:.3}x)",
            bs.steps,
            ds.steps
        );
        assert!(
            bs.allocated_words <= 8,
            "sum_to/boxed at O2 should allocate ~0 words/iteration, got {}",
            bs.allocated_words
        );

        // The accumulating divMod-style loop: CPR + tuple-η must bring
        // the product-returning version to the hand-written
        // unboxed-tuple loop's step count, with zero allocation.
        let cpr = compile_with_prelude(
            "data QR = QR Int# Int#\n\
             divMod# :: Int# -> Int# -> QR\n\
             divMod# n d = case n <# d of { 1# -> QR 0# n; _ -> case divMod# (n -# d) d of { QR q r -> QR (q +# 1#) r } }\n\
             loop :: Int# -> Int# -> Int#\n\
             loop acc n = case n of { 0# -> acc; _ -> case divMod# n 3# of { QR q r -> loop (acc +# q +# r) (n -# 1#) } }\n\
             main :: Int#\n\
             main = loop 0# 1000#\n",
        )
        .unwrap();
        assert!(cpr.opt_report.cpr_workers >= 1, "{:?}", cpr.opt_report);
        let tuple = compile_with_prelude(
            "divModU :: Int# -> Int# -> (# Int#, Int# #)\n\
             divModU n d = case n <# d of { 1# -> (# 0#, n #); _ -> case divModU (n -# d) d of { (# q, r #) -> (# q +# 1#, r #) } }\n\
             loop :: Int# -> Int# -> Int#\n\
             loop acc n = case n of { 0# -> acc; _ -> case divModU n 3# of { (# q, r #) -> loop (acc +# q +# r) (n -# 1#) } }\n\
             main :: Int#\n\
             main = loop 0# 1000#\n",
        )
        .unwrap();
        let (cv, cs) = cpr.run("main", super::FUEL).unwrap();
        let (tv, ts) = tuple.run("main", super::FUEL).unwrap();
        assert_eq!(
            cv.value().and_then(|v| v.as_int()),
            tv.value().and_then(|v| v.as_int())
        );
        let cpr_ratio = cs.steps as f64 / ts.steps as f64;
        assert!(
            cpr_ratio <= 1.1,
            "CPR divMod loop: {} steps vs {} hand-written tuples ({cpr_ratio:.3}x)",
            cs.steps,
            ts.steps
        );
        assert_eq!(
            cs.allocated_words, 0,
            "the CPR'd loop must not allocate at all"
        );
        assert_eq!(cs.con_allocs, 0);
    }

    /// Negative space for CPR, one: a worker whose result escapes
    /// unscrutinised (here: returned straight out of `main`) keeps its
    /// box — no CPR worker is created.
    #[test]
    fn cpr_keeps_the_box_when_the_result_escapes() {
        let compiled = compile_with_prelude(
            "data QR = QR Int# Int#\n\
             mk :: Int# -> QR\n\
             mk n = case n <# 0# of { 1# -> QR 0# n; _ -> case mk (n -# 1#) of { QR a b -> QR (a +# n) b } }\n\
             main :: QR\n\
             main = mk 3#\n",
        )
        .unwrap();
        assert_eq!(
            compiled.opt_report.cpr_workers, 0,
            "an escaping result must keep its box: {:?}",
            compiled.opt_report
        );
        // And no surviving binding returns an unboxed tuple.
        for b in &compiled.program.bindings {
            let (_, result) = b.ty.split_funs();
            assert!(
                !matches!(result, levity::ir::types::Type::UnboxedTuple(_)),
                "`{}` was CPR'd despite the escape: {}",
                b.name,
                b.ty
            );
        }
        let (out, _) = compiled.run("main", super::FUEL).unwrap();
        let v = out.value().expect("mk terminates").to_string();
        assert_eq!(v, "QR[6#, -1#]");
    }

    /// Negative space for CPR, two: a levity-polymorphic result (the
    /// §6.2 restriction — `a :: TYPE IntRep` has a concrete rep but is
    /// no product) is never CPR'd, neither as the original nor as a
    /// specialised clone; scalar results are simply not products.
    #[test]
    fn levity_polymorphic_results_are_never_cprd() {
        let compiled = compile_with_prelude(
            "stepU :: forall (a :: TYPE IntRep). Num a => a -> a\n\
             stepU x = (x * x) + x\n\
             main :: Int#\n\
             main = case stepU 4# of { 0# -> 1#; _ -> 2# }\n",
        )
        .unwrap();
        assert!(
            compiled.opt_report.fn_specialised >= 1,
            "{:?}",
            compiled.opt_report
        );
        assert_eq!(
            compiled.opt_report.cpr_workers, 0,
            "a levity-polymorphic result must never be CPR'd: {:?}",
            compiled.opt_report
        );
        let (out, _) = compiled.run("main", super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_int()), Some(2));
    }

    /// Negative space for join points: a continuation-shaped `let` that
    /// appears in *argument position* (escapes into a higher-order
    /// call) is not a join point — it lowers as an ordinary closure and
    /// the machine records zero jumps; the genuine diamond on the same
    /// machinery records at least one.
    #[test]
    fn join_points_never_appear_in_argument_position() {
        // At O0 the λ reaches lowering exactly as written: its use is
        // the argument of `applyTo`, so the escape analysis must refuse
        // the join and lower a closure (zero jumps). (At O2 the inliner
        // may legitimately rewrite the call into a direct tail call
        // first — that is a different program.)
        let escaping = compile_with_prelude_opt(
            "applyTo :: (Int -> Int) -> Int -> Int\n\
             applyTo f x = f x\n\
             main :: Int\n\
             main = let g = \\(y :: Int) -> y + 1 in applyTo g 41\n",
            OptLevel::O0,
        )
        .unwrap();
        let (out, stats) = escaping.run("main", super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(42));
        assert_eq!(
            stats.jumps, 0,
            "an argument-position λ must stay a closure, not a join point"
        );
        // And a λ that stays in argument position even at O2 — handed
        // to the (recursive, never-inlined) `map` — still jumps nowhere.
        let escaping_o2 = compile_with_prelude(
            "main :: Int\n\
             main = let g = \\(y :: Int) -> y + 1 in sum (map g (enumFromTo 1 3))\n",
        )
        .unwrap();
        let (out, stats) = escaping_o2.run("main", super::FUEL).unwrap();
        assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(9));
        assert_eq!(
            stats.jumps, 0,
            "a λ passed to map escapes; it must never become a join point"
        );
        let diamond = compile_with_prelude(
            "data QR = QR Int# Int#\n\
             pick :: Int# -> Int# -> QR\n\
             pick a b = case (case a <# b of { 1# -> QR a b; _ -> QR b a }) of { QR x y -> QR (x +# 100#) y }\n\
             main :: Int#\n\
             main = case pick 3# 5# of { QR u v -> u +# (v *# 2#) +# (u -# v) +# (u *# v) }\n",
        )
        .unwrap();
        assert!(
            diamond.opt_report.join_points >= 1,
            "{:?}",
            diamond.opt_report
        );
        let (out, stats) = diamond.run("main", super::FUEL).unwrap();
        // pick 3# 5# → QR 103# 5#; 103 + 10 + 98 + 515 = 726.
        assert_eq!(out.value().and_then(|v| v.as_int()), Some(726));
        assert!(
            stats.jumps >= 1,
            "the diamond's shared continuation must run as a jump"
        );
        assert_eq!(stats.allocated_words, 0, "joins allocate nothing");
    }

    /// The worker/wrapper split must not touch a function whose argument
    /// is not demanded on every path — unboxing it would force a thunk
    /// the program never evaluates.
    #[test]
    fn lazy_arguments_are_not_unboxed() {
        let compiled = compile_with_prelude(
            "pick :: Int -> Int -> Int\n\
             pick a b = case a of { I# k -> case k of { 0# -> b; _ -> a } }\n\
             main :: Int\n\
             main = pick 3 (error \"must stay lazy\")\n",
        )
        .unwrap();
        let (out, _) = compiled.run("main", super::FUEL).unwrap();
        // `b` is only demanded on the 0# path; with a = 3 the error is
        // never forced, at any optimization level.
        assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(3));
    }
}

// ---------------------------------------------------------------------
// Stage separation: every `PipelineError` variant is reachable, so the
// parse / elaborate / lint / levity / lower stages stay distinct.
// ---------------------------------------------------------------------

mod pipeline_error_reachability {
    use levity::driver::{compile_with_prelude, PipelineError};

    #[test]
    fn parse_stage_rejects_malformed_source() {
        let err = compile_with_prelude("main = (1#\n").unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)), "{err}");
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn elaborate_stage_rejects_unbound_variables() {
        let err = compile_with_prelude("main :: Int\nmain = notInScope\n").unwrap_err();
        assert!(matches!(err, PipelineError::Elaborate(_)), "{err}");
        assert!(!err.is_levity_rejection());
    }

    #[test]
    fn levity_stage_rejects_polymorphic_binders_after_elaboration() {
        // §5.1 restriction 1: a levity-polymorphic binder. The program
        // parses and elaborates (the signature is declared, so checking
        // skolemizes `r`); only the separate levity pass rejects it.
        let err = compile_with_prelude(
            "ident :: forall (r :: Rep) (a :: TYPE r). a -> a\n\
             ident x = x\n\
             main :: Int#\n\
             main = 1#\n",
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Levity(_)), "{err}");
        assert!(err.is_levity_rejection());
        assert!(err.to_string().contains("section 5.1"), "{err}");
    }

    #[test]
    fn lower_stage_rejects_unsupported_constructs() {
        // An unboxed tuple stored in a constructor field has a concrete
        // representation — the levity checks pass — but the lowering
        // fragment does not cover it yet, so the error must come from
        // the lowering stage, not earlier.
        let err = compile_with_prelude(
            "data P = MkP (# Int#, Int# #)\n\
             main :: P\n\
             main = MkP (# 1#, 2# #)\n",
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Lower(_)), "{err}");
        assert!(err.to_string().contains("lowering failed"), "{err}");
    }

    #[test]
    fn core_lint_stage_rejects_ill_typed_core() {
        // `CoreLint` is unreachable from surface source by design (the
        // elaborator must emit well-typed Core), so drive the lint stage
        // directly with an ill-typed program and check the error plumbs
        // into the pipeline's variant.
        use levity::ir::terms::{CoreExpr, Program, TopBind};
        use levity::ir::typecheck::{check_program, TypeEnv};
        use levity::ir::types::Type;
        use levity_core::symbol::Symbol;

        let env = TypeEnv::new();
        let int_hash = Type::con0(&env.builtins.int_hash);
        let program = Program {
            data_decls: vec![],
            bindings: vec![TopBind {
                name: Symbol::intern("bad"),
                // Claimed type Int# -> Int#, actual type Int#.
                ty: Type::fun(int_hash.clone(), int_hash),
                expr: CoreExpr::int(3),
            }],
        };
        let (name, core_err) = check_program(&program).unwrap_err();
        assert_eq!(name, Symbol::intern("bad"));
        let err = PipelineError::CoreLint(name, core_err);
        assert!(matches!(err, PipelineError::CoreLint(..)));
        assert!(
            err.to_string().contains("core lint failed in `bad`"),
            "{err}"
        );
    }
}

// ---------------------------------------------------------------------
// Engine 3 negative space: what the register machine must *not* do —
// mix representation classes across operand stacks, skip the §6.2 width
// checks, or panic on malformed flat code.
// ---------------------------------------------------------------------

mod bytecode_negative_space {
    use std::sync::Arc;

    use levity::driver::{compile_with_prelude, compile_with_prelude_opt, OptLevel};
    use levity::m::bytecode::{BcEntry, Chunk, Instr};
    use levity::m::machine::MachineError;
    use levity::m::regmachine::BcMachine;
    use levity::m::syntax::{Atom, Binder, Literal, MExpr};
    use levity::m::Engine;

    /// Runs `main` of a compiled pipeline program on a fresh
    /// [`BcMachine`] and reports the per-class stack high-water marks
    /// (`[ptr, word, float, double]`).
    fn high_water(src: &str) -> [usize; 4] {
        let compiled = compile_with_prelude(src).unwrap();
        let entry = compiled
            .bytecode
            .compile_entry(&compiled.code.compile_entry(&MExpr::global("main")));
        let mut machine = BcMachine::new(Arc::clone(&compiled.bytecode));
        machine.set_fuel(super::FUEL);
        machine.run(&entry).unwrap();
        machine.stack_high_water()
    }

    /// The paper's point made physical: representation classes live on
    /// *disjoint* operand stacks. A `DoubleRep` value never occupies a
    /// word slot, and an `IntRep` loop never touches the double stack —
    /// pinned via the high-water marks, so even a transient spill would
    /// be caught.
    #[test]
    fn operand_stacks_separate_representation_classes() {
        let word_loop = high_water(
            "sumTo# :: Int# -> Int# -> Int#\n\
             sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
             main :: Int#\n\
             main = sumTo# 0# 500#\n",
        );
        assert!(word_loop[1] > 0, "the word stack did the work");
        assert_eq!(word_loop[2], 0, "no float slots in a word program");
        assert_eq!(word_loop[3], 0, "no double slots in a word program");

        // Comparison-free: `abs` would compare, and comparisons return
        // `Int#` booleans — word-class work that belongs on the word
        // stack.
        let double_work = high_water(
            "main :: Double#\n\
             main = (0.0## - 2.25##) * 4.0##\n",
        );
        assert!(double_work[3] > 0, "the double stack did the work");
        assert_eq!(double_work[1], 0, "no word slots in a double program");
    }

    /// §6.2's width checks survive on the flat engine at `O0`: an
    /// ill-classed β-redex produces the same structured
    /// `ClassMismatch` (not a misread register) as the reference
    /// engines, with the same payload.
    #[test]
    fn o0_width_checks_hold_on_the_bytecode_engine() {
        let compiled = compile_with_prelude_opt("main :: Int#\nmain = 0#\n", OptLevel::O0).unwrap();
        // (λp:ptr. p) 1# — a word literal fed to a pointer binder.
        let t = MExpr::app(
            MExpr::lam(Binder::ptr("p"), MExpr::var("p")),
            Atom::Lit(Literal::Int(1)),
        );
        let bc = compiled
            .run_term_with_engine(Arc::clone(&t), super::FUEL, Engine::Bytecode)
            .unwrap_err();
        assert!(matches!(bc, MachineError::ClassMismatch { .. }), "{bc}");
        let subst = compiled
            .run_term_with_engine(t, super::FUEL, Engine::Subst)
            .unwrap_err();
        assert_eq!(bc, subst, "width-check payloads must match");
    }

    /// A jump to an undefined join point is a *structured* error on the
    /// flat engine — identical to the reference engines' — not a bad
    /// chunk id or a panic.
    #[test]
    fn unknown_join_is_a_structured_error() {
        let compiled = compile_with_prelude("main :: Int#\nmain = 0#\n").unwrap();
        let t = MExpr::jump("nowhere", vec![Atom::Lit(Literal::Int(1))]);
        for engine in [Engine::Subst, Engine::Env, Engine::Bytecode] {
            assert_eq!(
                compiled
                    .run_term_with_engine(Arc::clone(&t), super::FUEL, engine)
                    .unwrap_err(),
                MachineError::UnknownJoin("nowhere".into()),
                "{engine:?}"
            );
        }
    }

    /// Hand-built malformed flat code: a jump past the end of the chunk
    /// and a call to a chunk id that does not exist must both surface
    /// as `BadBytecode` — the interpreter bounds-checks its program
    /// counter and chunk table instead of panicking.
    #[test]
    fn wild_pc_and_unknown_chunk_are_bad_bytecode_not_panics() {
        let compiled = compile_with_prelude("main :: Int#\nmain = 0#\n").unwrap();
        let rogue = |label: &str, code: Vec<Instr>| BcEntry {
            chunks: vec![Arc::new(Chunk {
                label: label.to_owned(),
                code: code.into(),
                frame: [0; 4],
                caps: Arc::from([] as [levity::core::rep::Slot; 0]),
                caps_counts: [0; 4],
                params: Arc::from([] as [Binder; 0]),
                lam_body: None,
            })],
            root: compiled.bytecode.chunks.len() as u32,
        };
        let run = |entry: &BcEntry| {
            let mut machine = BcMachine::new(Arc::clone(&compiled.bytecode));
            machine.set_fuel(super::FUEL);
            machine.run(entry).unwrap_err()
        };
        let wild_pc = run(&rogue("wild-pc", vec![Instr::Goto(99)]));
        assert!(
            matches!(&wild_pc, MachineError::BadBytecode(m) if m.contains("out of range")),
            "{wild_pc}"
        );
        let bad_chunk = run(&rogue(
            "bad-chunk",
            vec![Instr::CallF {
                chunk: 9999,
                args: Arc::from([] as [levity::m::bytecode::Src; 0]),
                tail: true,
            }],
        ));
        assert!(
            matches!(&bad_chunk, MachineError::BadBytecode(m) if m.contains("unknown chunk")),
            "{bad_chunk}"
        );
    }
}
