//! End-to-end tests of the serving layer (`levity-serve`) — the
//! multithread smoke test for the `Rc` → `Arc` spine refactor.
//!
//! Two shapes:
//!
//! * a service-level test driving an in-process [`EvalService`] with
//!   concurrent client threads over the mixed corpus, asserting
//!   correctness of every response, the cache-hit counters
//!   (compile-once), the fuel kill on a divergent program, and load
//!   shedding when the queue is full;
//! * an engine-level stress test running *one shared* [`Compiled`]
//!   program on 8 threads simultaneously, asserting every thread's
//!   outcome and full [`MachineStats`] equal the single-threaded run —
//!   the `Arc`-spined program really is immutable under concurrency.

use std::sync::Arc;
use std::thread;

use levity::driver::{compile_with_prelude, Compiled, RunLimits};
use levity::m::Engine;
use levity_serve::corpus::{expected_int, CorpusProgram, CHURN, MIXED_CORPUS, SPIN};
use levity_serve::{EvalRequest, EvalService, ServeConfig, ServeError};

const CLIENTS: usize = 8;
const ROUNDS: usize = 6;

/// Concurrent clients over the mixed corpus: every response correct,
/// the pipeline ran exactly once per distinct program, a divergent
/// tenant dies by fuel, and a full queue sheds instead of queueing.
#[test]
fn service_end_to_end_under_concurrency() {
    let service = Arc::new(EvalService::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    }));

    // Phase 1: N client threads × M rounds over the whole corpus.
    thread::scope(|s| {
        for client in 0..CLIENTS {
            let service = Arc::clone(&service);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    // Stagger the starting program per client/round so
                    // requests collide on the cache from the start.
                    for i in 0..MIXED_CORPUS.len() {
                        let prog = &MIXED_CORPUS[(client + round + i) % MIXED_CORPUS.len()];
                        let resp = service
                            .call(EvalRequest::source(prog.source))
                            .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
                        assert_eq!(
                            expected_int(&resp.outcome),
                            Some(prog.expected),
                            "{} returned a wrong answer under concurrency",
                            prog.name
                        );
                    }
                }
            });
        }
    });

    let counters = service.counters();
    let total = (CLIENTS * ROUNDS * MIXED_CORPUS.len()) as u64;
    assert_eq!(counters.completed, total);
    // Compile-once: one miss per distinct program, everything else hit.
    assert_eq!(counters.cache.misses, MIXED_CORPUS.len() as u64);
    assert_eq!(counters.cache.hits, total - MIXED_CORPUS.len() as u64);
    assert_eq!(counters.cache.collisions, 0);

    // Phase 2: a divergent program is killed by the fuel meter, with a
    // structured error — the worker survives to serve the next request.
    let err = service
        .call(EvalRequest::source(SPIN).fuel(50_000))
        .unwrap_err();
    assert_eq!(err, ServeError::FuelExhausted { fuel: 50_000 });
    assert_eq!(service.counters().fuel_killed, 1);
    let after = service
        .call(EvalRequest::source(MIXED_CORPUS[0].source))
        .unwrap();
    assert_eq!(expected_int(&after.outcome), Some(MIXED_CORPUS[0].expected));

    Arc::into_inner(service)
        .expect("all clients done")
        .shutdown();
}

/// A single worker with a depth-1 queue: park it on a slow request,
/// overfill the queue, and assert deterministic shedding.
#[test]
fn full_queue_sheds_deterministically() {
    let service = EvalService::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    // ~20M steps of spin keeps the one worker busy far longer than the
    // submit loop below, and the fuel meter guarantees it ends.
    let parked = service
        .submit(EvalRequest::source(SPIN).fuel(20_000_000))
        .unwrap();
    let mut queued = Vec::new();
    let mut shed = 0u64;
    for _ in 0..4 {
        match service.submit(EvalRequest::source(MIXED_CORPUS[0].source)) {
            Ok(t) => queued.push(t),
            Err(ServeError::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected: {e:?}"),
        }
    }
    // Worker holds one job at most; queue holds one more: of 4 extra
    // submits at least 2 must shed, whatever the interleaving.
    assert!(shed >= 2, "expected ≥2 sheds, got {shed}");
    assert_eq!(service.counters().shed, shed);
    assert!(matches!(
        parked.wait(),
        Err(ServeError::FuelExhausted { .. })
    ));
    for t in queued {
        let resp = t.wait().unwrap();
        assert_eq!(expected_int(&resp.outcome), Some(MIXED_CORPUS[0].expected));
    }
    service.shutdown();
}

/// One compiled program, 8 threads, 3 engines: outcomes and *every*
/// counter in `MachineStats` must match the single-threaded run. This
/// is the direct witness that the shared `Arc` spines are read-only.
#[test]
fn shared_compiled_program_is_deterministic_across_8_threads() {
    const THREADS: usize = 8;
    let limits = RunLimits::fuel(50_000_000);
    for prog in [
        &MIXED_CORPUS[0], // unboxed loop
        &MIXED_CORPUS[3], // CPR constructor returns
        &MIXED_CORPUS[4], // allocation churn
    ] {
        let compiled: Arc<Compiled> =
            Arc::new(compile_with_prelude(prog.source).unwrap_or_else(|e| panic!("{e}")));
        for engine in [Engine::Subst, Engine::Env, Engine::Bytecode] {
            let (baseline_out, baseline_stats) = compiled
                .run_with_limits("main", engine, limits)
                .unwrap_or_else(|e| panic!("{}/{engine:?}: {e}", prog.name));
            assert_eq!(
                expected_int(&baseline_out),
                Some(prog.expected),
                "{}",
                prog.name
            );
            thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|_| {
                        let compiled = Arc::clone(&compiled);
                        s.spawn(move || compiled.run_with_limits("main", engine, limits).unwrap())
                    })
                    .collect();
                for h in handles {
                    let (out, stats) = h.join().unwrap();
                    assert_eq!(
                        out, baseline_out,
                        "{}/{engine:?}: outcome diverged across threads",
                        prog.name
                    );
                    assert_eq!(
                        stats, baseline_stats,
                        "{}/{engine:?}: MachineStats diverged across threads",
                        prog.name
                    );
                }
            });
        }
    }
}

/// The soak test the copying collector exists for: one worker serving
/// a long run of allocation-churn requests under a *live-heap* cap far
/// below the program's cumulative allocation. Before the collector,
/// the bytecode heap only ever grew, so a residency bound this tight
/// was unenforceable — cumulative allocation for one churn request is
/// ~100× the cap. Now every request must complete correctly inside the
/// cap (the collector keeps residency at the live set, which is one
/// 24-cell chain) and must actually collect along the way.
#[test]
fn soak_churn_requests_stay_inside_a_live_heap_cap() {
    // 10k requests in release CI (`LEVITY_SOAK_REQUESTS=10000`); a
    // shorter default keeps plain debug `cargo test` quick while still
    // covering hundreds of collections.
    let requests: usize = std::env::var("LEVITY_SOAK_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let service = EvalService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut collections = 0u64;
    let mut bytes_copied = 0u64;
    for i in 0..requests {
        let req = EvalRequest::source(CHURN.source)
            .engine(Engine::Bytecode)
            .gc_nursery(256)
            .heap_cap(64 * 1024);
        let resp = service
            .call(req)
            .unwrap_or_else(|e| panic!("churn request {i} failed: {e}"));
        assert_eq!(
            expected_int(&resp.outcome),
            Some(CHURN.expected),
            "churn request {i} returned a wrong answer"
        );
        collections += resp.stats.collections;
        bytes_copied += resp.stats.bytes_copied;
    }
    assert!(
        collections > 0,
        "churn never triggered a collection — the nursery knob is dead"
    );
    // The residency bound itself: `heap_cap` kills any request whose
    // live set exceeds 64KiB after a collection, so mere completion is
    // the bound — but pin the reported numbers too: what survives each
    // collection averages far below the cap (the live set is one
    // 24-cell chain, not the cumulative allocation).
    assert!(
        bytes_copied <= collections * 64 * 1024,
        "collections retained more than the residency cap on average"
    );
    service.shutdown();
}

/// The residency cap as a tenancy policy: a request whose *live* data
/// outgrows its cap is killed with a structured error and its own
/// counter, and the worker survives to serve the next request.
#[test]
fn over_residency_request_is_killed_and_counted() {
    let service = EvalService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    // ALLOC_HEAVY keeps a 300-cell chain fully reachable — no amount
    // of collecting fits that in 4KiB.
    let err = service
        .call(
            EvalRequest::source(MIXED_CORPUS[4].source)
                .engine(Engine::Bytecode)
                .gc_nursery(64)
                .heap_cap(4096),
        )
        .unwrap_err();
    assert_eq!(err, ServeError::HeapCapExceeded { limit: 4096 });
    assert_eq!(service.counters().heap_killed, 1);
    // Same cap, churn-shaped traffic: lives happily within it.
    let resp = service
        .call(
            EvalRequest::source(CHURN.source)
                .engine(Engine::Bytecode)
                .gc_nursery(64)
                .heap_cap(4096),
        )
        .unwrap();
    assert_eq!(expected_int(&resp.outcome), Some(CHURN.expected));
    assert!(resp.stats.collections > 0);
    service.shutdown();
}

/// The corpus expectations themselves stay honest: every program also
/// passes through the plain (serverless) pipeline.
#[test]
fn corpus_expectations_match_the_plain_pipeline() {
    for CorpusProgram {
        name,
        source,
        expected,
    } in MIXED_CORPUS
    {
        let compiled = compile_with_prelude(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (out, _) = compiled.run("main", 50_000_000).unwrap();
        assert_eq!(expected_int(&out), Some(expected), "{name}");
    }
}
