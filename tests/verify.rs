//! The static bytecode verifier, end to end:
//!
//! * **corpus** — every golden-bytecode program (the same thirteen the
//!   snapshot suites pin), at `O0` *and* `O2`, must verify and must
//!   pass every Core lint rule with zero errors;
//! * **negative pins** — hand-built chunks exercising each
//!   [`VerifyErrorKind`]: the verifier must reject them with exactly
//!   the structured error (kind, chunk, pc) the API promises;
//! * **the payoff** — the unchecked fast path: on every corpus
//!   program, a register machine run through the verifier's witness
//!   ([`BcMachine::run_verified`]) must agree with the checked path on
//!   the outcome *and every counter*;
//! * **fuzz** — a SplitMix64 bytecode mutator: for every mutant,
//!   either the verifier rejects it, or the checked machine returns a
//!   structured [`MachineError`] (never a panic) — and when the mutant
//!   *and* the entry both verify, the unchecked path must not diverge
//!   from the checked one. This is the soundness story in executable
//!   form: "verified" must never mean "runs different semantics".

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use levity::compile::lint_program;
use levity::core::rep::Slot;
use levity::driver::pipeline::{compile_with_prelude_opt, Compiled};
use levity::driver::OptLevel;
use levity::m::bytecode::{BDefault, Chunk, Instr, Src, WSrc};
use levity::m::machine::{MachineError, MachineStats, RunOutcome};
use levity::m::regmachine::BcMachine;
use levity::m::syntax::{Binder, Literal, MExpr};
use levity::m::verify::{verify, VerifyErrorKind};
use levity::m::BcProgram;

/// The golden corpus — kept in lockstep with `golden_core.rs` and
/// `golden_bytecode.rs`, so every program whose Core and flat code are
/// pinned is also pinned to verify and lint clean.
const GOLDEN: &[(&str, &str)] = &[
    (
        "sum_to_boxed",
        "sumTo :: Int -> Int -> Int\n\
         sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = sumTo 0 5000\n",
    ),
    (
        "sum_to_unboxed",
        "sumTo# :: Int# -> Int# -> Int#\n\
         sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = sumTo# 0# 5000#\n",
    ),
    (
        "dict_unboxed",
        "loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 2000#\n",
    ),
    (
        "dict_boxed",
        "loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 2000\n",
    ),
    (
        "dict_poly_fn",
        "step :: forall (a :: TYPE IntRep). Num a => a -> a\n\
         step x = x + x\n\
         loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + step n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 2000#\n",
    ),
    (
        "dict_poly_fn_boxed",
        "step :: Num a => a -> a\n\
         step x = x + x\n\
         loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + step n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 2000\n",
    ),
    (
        "spec_square",
        "square :: Num a => a -> a\n\
         square x = x * x\n\
         main :: Int\n\
         main = square 7\n",
    ),
    (
        "cpr_divmod",
        "data QR = QR Int# Int#\n\
         divMod# :: Int# -> Int# -> QR\n\
         divMod# n d = case n <# d of { 1# -> QR 0# n; _ -> case divMod# (n -# d) d of { QR q r -> QR (q +# 1#) r } }\n\
         loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> case divMod# n 3# of { QR q r -> loop (acc +# q +# r) (n -# 1#) } }\n\
         main :: Int#\n\
         main = loop 0# 5000#\n",
    ),
    (
        "cpr_accumulator",
        "data QR = QR Int# Int#\n\
         spin :: Int# -> Int# -> QR\n\
         spin acc n = case n of { 0# -> QR acc n; _ -> spin (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = case spin 0# 5000# of { QR s z -> s +# z }\n",
    ),
    (
        "cpr_escape",
        "data QR = QR Int# Int#\n\
         mk :: Int# -> QR\n\
         mk n = case n <# 0# of { 1# -> QR 0# n; _ -> case mk (n -# 1#) of { QR a b -> QR (a +# n) b } }\n\
         main :: QR\n\
         main = mk 3#\n",
    ),
    (
        "join_diamond",
        "data QR = QR Int# Int#\n\
         pick :: Int# -> Int# -> QR\n\
         pick a b = case (case a <# b of { 1# -> QR a b; _ -> QR b a }) of { QR x y -> QR (x +# 100#) y }\n\
         use :: Int# -> Int#\n\
         use n = case pick n 5# of { QR u v -> u +# (v *# 2#) +# (u -# v) +# (u *# v) }\n\
         main :: Int#\n\
         main = use 3#\n",
    ),
    (
        "tuple_divmod",
        "divMod# :: Int# -> Int# -> (# Int#, Int# #)\n\
         divMod# n k = (# quotInt# n k, remInt# n k #)\n\
         useBoth :: Int# -> Int# -> Int#\n\
         useBoth n k = case divMod# n k of { (# q, r #) -> q +# r }\n\
         main :: Int#\n\
         main = useBoth 17# 5#\n",
    ),
    (
        "spec_mutual",
        "bounce :: Num a => a -> Int# -> a\n\
         bounce x n = case n of { 0# -> x; _ -> rebound (x + x) (n -# 1#) }\n\
         rebound :: Num a => a -> Int# -> a\n\
         rebound x n = case n of { 0# -> x; _ -> bounce (x * x) (n -# 1#) }\n\
         main :: Int\n\
         main = bounce 2 3#\n",
    ),
];

const FUEL: u64 = 200_000_000;

// ---------------------------------------------------------------------
// Corpus: everything the snapshots pin must verify and lint clean
// ---------------------------------------------------------------------

#[test]
fn the_golden_corpus_verifies_and_lints_clean_at_both_levels() {
    for (name, src) in GOLDEN {
        for level in [OptLevel::O0, OptLevel::O2] {
            let compiled = compile_with_prelude_opt(src, level)
                .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
            // The pipeline already verified once (compilation would
            // have failed otherwise); re-verify through the public API
            // and pin that the stored witness covers this bytecode.
            let witness = verify(&compiled.bytecode)
                .unwrap_or_else(|e| panic!("{name} at {level} fails verification: {e}"));
            assert!(
                Arc::ptr_eq(witness.program(), compiled.verified.program()),
                "{name} at {level}: fresh witness covers a different program"
            );
            let tenv = levity::ir::typecheck::check_program(&compiled.program)
                .unwrap_or_else(|(b, e)| panic!("{name} at {level}: `{b}` fails typecheck: {e}"));
            let lints = lint_program(&tenv, &compiled.program);
            assert!(
                lints.is_clean(),
                "{name} at {level} fails Core lint:\n{lints}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Negative pins: one hand-built chunk per VerifyErrorKind
// ---------------------------------------------------------------------

fn chunk(label: &str, frame: [u16; 4], code: Vec<Instr>) -> Arc<Chunk> {
    Arc::new(Chunk {
        label: label.to_owned(),
        code: code.into(),
        frame,
        caps: Arc::from([] as [Slot; 0]),
        caps_counts: [0; 4],
        params: Arc::from([] as [Binder; 0]),
        lam_body: None,
    })
}

fn program_of(chunks: Vec<Arc<Chunk>>) -> Arc<BcProgram> {
    Arc::new(BcProgram {
        chunks,
        generic: Vec::new(),
        fast: Vec::new(),
        names: Vec::new(),
    })
}

fn rejected_with(p: &Arc<BcProgram>) -> VerifyErrorKind {
    verify(p)
        .expect_err("the verifier must reject this program")
        .kind
}

#[test]
fn a_jump_past_the_code_is_rejected() {
    let p = program_of(vec![chunk("bad", [0; 4], vec![Instr::Goto(7)])]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::BadJumpTarget { target: 7, len: 1 }
    );
}

#[test]
fn falling_off_the_end_is_rejected() {
    let p = program_of(vec![chunk(
        "bad",
        [0, 1, 0, 0],
        vec![Instr::MovW {
            dst: 0,
            src: WSrc::K(Literal::Int(1)),
        }],
    )]);
    assert_eq!(rejected_with(&p), VerifyErrorKind::FallThrough);
}

#[test]
fn a_write_beyond_the_declared_frame_is_rejected() {
    let p = program_of(vec![chunk(
        "bad",
        [0, 2, 0, 0],
        vec![
            Instr::MovW {
                dst: 5,
                src: WSrc::K(Literal::Int(1)),
            },
            Instr::RetW(WSrc::K(Literal::Int(0))),
        ],
    )]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::FrameOverflow {
            class: Slot::Word,
            slot: 5,
            frame: 2
        }
    );
}

#[test]
fn an_uninitialised_read_is_rejected() {
    let p = program_of(vec![chunk(
        "bad",
        [0, 2, 0, 0],
        vec![Instr::RetW(WSrc::R(1))],
    )]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::UninitialisedRead {
            class: Slot::Word,
            slot: 1,
            height: 0
        }
    );
}

#[test]
fn a_non_word_breq_default_binder_is_rejected() {
    // The unchecked machine writes the scrutinee straight into the
    // word bank on the miss edge; a pointer-class binder here would
    // corrupt the frame, so the verifier must refuse it statically.
    let p = program_of(vec![chunk(
        "bad",
        [1, 1, 0, 0],
        vec![
            Instr::BrEqW {
                src: WSrc::K(Literal::Int(0)),
                lit: Literal::Int(0),
                on_eq: 1,
                default: BDefault {
                    binder: Binder::ptr("p"),
                    slot: 0,
                    target: 1,
                },
            },
            Instr::RetW(WSrc::K(Literal::Int(0))),
        ],
    )]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::ClassMismatch {
            what: "br.eq default binder",
            expected: Slot::Word,
            found: Slot::Ptr,
        }
    );
}

#[test]
fn a_non_word_fused_bind_is_rejected() {
    // call.fw's return protocol writes the caller's binds as raw
    // words; a pointer binder must be a static error.
    let p = program_of(vec![chunk(
        "bad",
        [1, 1, 0, 0],
        vec![
            Instr::CallFW {
                chunk: 0,
                resume: 1,
                args: Arc::from([] as [WSrc; 0]),
                binds: Arc::from([(Binder::ptr("p"), 0u16)]),
            },
            Instr::RetW(WSrc::K(Literal::Int(0))),
        ],
    )]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::NonWordBind {
            binder: "p:ptr".to_owned()
        }
    );
}

#[test]
fn a_self_call_wider_than_the_buffer_is_rejected() {
    // The fused self-call resolves every operand into a fixed
    // 12-slot buffer before rewriting the frame; a wider arity would
    // index past it, so the verifier bounds it statically.
    let args: Vec<WSrc> = (0..13).map(|i| WSrc::K(Literal::Int(i))).collect();
    let p = program_of(vec![chunk(
        "bad",
        [0, 13, 0, 0],
        vec![Instr::CallW { args: args.into() }],
    )]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::SelfCallBufExceeded { arity: 13 }
    );
}

#[test]
fn a_dangling_chunk_reference_is_rejected() {
    let p = program_of(vec![chunk(
        "bad",
        [0; 4],
        vec![Instr::CallF {
            chunk: 9,
            args: Arc::from([] as [Src; 0]),
            tail: true,
        }],
    )]);
    assert_eq!(rejected_with(&p), VerifyErrorKind::BadChunkRef { id: 9 });
}

#[test]
fn a_closure_over_a_parameterless_chunk_is_rejected() {
    let p = program_of(vec![chunk(
        "bad",
        [0; 4],
        vec![
            Instr::MkClos {
                chunk: 0,
                caps: Arc::from([] as [Src; 0]),
            },
            Instr::RetA,
        ],
    )]);
    assert_eq!(rejected_with(&p), VerifyErrorKind::MissingParam);
}

#[test]
fn caps_counts_disagreeing_with_the_capture_list_are_rejected() {
    let p = program_of(vec![Arc::new(Chunk {
        label: "bad".to_owned(),
        code: vec![Instr::RetA].into(),
        frame: [1, 0, 0, 0],
        caps: Arc::from([Slot::Ptr]),
        caps_counts: [0; 4],
        params: Arc::from([] as [Binder; 0]),
        lam_body: None,
    })]);
    assert_eq!(
        rejected_with(&p),
        VerifyErrorKind::BadCaps {
            declared: [0; 4],
            found: [1, 0, 0, 0]
        }
    );
}

// ---------------------------------------------------------------------
// The payoff: checked and unchecked runs agree on everything
// ---------------------------------------------------------------------

type MachineResult = (Result<RunOutcome, MachineError>, MachineStats);

fn main_entry(compiled: &Compiled) -> levity::m::BcEntry {
    compiled
        .bytecode
        .compile_entry(&compiled.code.compile_entry(&MExpr::global("main")))
}

fn run_checked(compiled: &Compiled, entry: &levity::m::BcEntry) -> MachineResult {
    let mut m = BcMachine::new(Arc::clone(&compiled.bytecode));
    m.set_fuel(FUEL);
    let r = m.run(entry);
    (r, *m.stats())
}

fn run_unchecked(compiled: &Compiled, entry: &levity::m::BcEntry) -> MachineResult {
    let ventry = compiled
        .verified
        .verify_entry(entry)
        .expect("corpus entries verify");
    let mut m = BcMachine::new(Arc::clone(&compiled.bytecode));
    m.set_fuel(FUEL);
    let r = m.run_verified(&ventry);
    (r, *m.stats())
}

#[test]
fn the_unchecked_fast_path_agrees_with_the_checked_path_on_the_corpus() {
    for (name, src) in GOLDEN {
        for level in [OptLevel::O0, OptLevel::O2] {
            let compiled = compile_with_prelude_opt(src, level)
                .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
            let entry = main_entry(&compiled);
            let checked = run_checked(&compiled, &entry);
            let unchecked = run_unchecked(&compiled, &entry);
            assert_eq!(
                checked, unchecked,
                "checked and unchecked register machines disagree on {name} at {level}"
            );
        }
    }
}

#[test]
fn a_witness_for_another_program_is_refused() {
    let a = compile_with_prelude_opt(GOLDEN[0].1, OptLevel::O2).unwrap();
    let b = compile_with_prelude_opt(GOLDEN[1].1, OptLevel::O2).unwrap();
    let entry = main_entry(&a);
    let ventry = a.verified.verify_entry(&entry).unwrap();
    // Same entry, same witness — but a machine loaded with the *other*
    // program: the unchecked path must refuse to run rather than race
    // an unrelated program through elided checks.
    let mut m = BcMachine::new(Arc::clone(&b.bytecode));
    m.set_fuel(FUEL);
    assert!(matches!(
        m.run_verified(&ventry),
        Err(MachineError::BadBytecode(_))
    ));
}

// ---------------------------------------------------------------------
// Fuzz: mutate bytecode; reject, or fail safely, but never diverge
// ---------------------------------------------------------------------

/// SplitMix64; tiny, deterministic, and dependency-free.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One random structural mutation of one chunk: retargeted jumps,
/// swapped/duplicated/truncated instructions, rewritten register
/// slots. Deliberately includes identity-shaped mutations (a swap of
/// an instruction with itself) so the accepted population is never
/// empty, and wild ones (slot 63 of a 2-slot frame) so the rejected
/// population never is either.
fn mutate(program: &BcProgram, g: &mut SplitMix64) -> Arc<BcProgram> {
    let mut chunks = program.chunks.clone();
    let ci = g.below(chunks.len() as u64) as usize;
    let mut code: Vec<Instr> = chunks[ci].code.to_vec();
    let i = g.below(code.len() as u64) as usize;
    match g.below(6) {
        0 => code[i] = Instr::Goto(g.below(2 * code.len() as u64 + 2) as u32),
        1 => {
            let j = g.below(code.len() as u64) as usize;
            code.swap(i, j);
        }
        2 => code.truncate(i + 1),
        3 => code[i] = Instr::RetW(WSrc::R(g.below(64) as u16)),
        4 => {
            let dup = code[i].clone();
            code.insert(i, dup);
        }
        _ => {
            code[i] = Instr::MovW {
                dst: g.below(64) as u16,
                src: WSrc::R(g.below(64) as u16),
            }
        }
    }
    let mutated = Chunk {
        code: code.into(),
        ..(*chunks[ci]).clone()
    };
    chunks[ci] = Arc::new(mutated);
    Arc::new(BcProgram {
        chunks,
        generic: program.generic.clone(),
        fast: program.fast.clone(),
        names: program.names.clone(),
    })
}

#[test]
fn mutated_bytecode_is_rejected_or_fails_safely_and_never_diverges() {
    // A small CPR workload: fused self-calls, multi-returns, joins —
    // the instruction families whose checks the unchecked path elides.
    let src = "data QR = QR Int# Int#\n\
               divMod# :: Int# -> Int# -> QR\n\
               divMod# n d = case n <# d of { 1# -> QR 0# n; _ -> case divMod# (n -# d) d of { QR q r -> QR (q +# 1#) r } }\n\
               loop :: Int# -> Int# -> Int#\n\
               loop acc n = case n of { 0# -> acc; _ -> case divMod# n 3# of { QR q r -> loop (acc +# q +# r) (n -# 1#) } }\n\
               main :: Int#\n\
               main = loop 0# 40#\n";
    let compiled = compile_with_prelude_opt(src, OptLevel::O2).unwrap();
    // The entry comes from the *unmutated* program: mutations keep the
    // chunk count, so its chunk references stay meaningful.
    let entry = main_entry(&compiled);
    let mut g = SplitMix64::new(0x5eed_bc09);
    let (mut rejected, mut accepted, mut compared) = (0u32, 0u32, 0u32);
    for round in 0..400u32 {
        let mutant = mutate(&compiled.bytecode, &mut g);
        let witness = match verify(&mutant) {
            Err(_) => {
                rejected += 1;
                continue;
            }
            Ok(w) => w,
        };
        accepted += 1;
        // Accepted mutants run with small budgets: a mutation may well
        // have manufactured an infinite loop, and that must surface as
        // OutOfFuel/AllocLimitExceeded on both paths, not a hang.
        let run = |machine: &mut BcMachine, verified: bool| {
            machine.set_fuel(100_000);
            machine.set_alloc_limit(1 << 20);
            if verified {
                let v = witness.verify_entry(&entry).expect("pre-validated");
                machine.run_verified(&v)
            } else {
                machine.run(&entry)
            }
        };
        let checked = catch_unwind(AssertUnwindSafe(|| {
            let mut m = BcMachine::new(Arc::clone(&mutant));
            let r = run(&mut m, false);
            (r, *m.stats())
        }))
        .unwrap_or_else(|_| panic!("checked machine panicked on accepted mutant {round}"));
        // The entry is verified against the *mutant*: a mutation can
        // invalidate the entry's assumptions about the chunks it
        // calls, in which case only the checked path may run it.
        if witness.verify_entry(&entry).is_err() {
            continue;
        }
        compared += 1;
        let unchecked = catch_unwind(AssertUnwindSafe(|| {
            let mut m = BcMachine::new(Arc::clone(&mutant));
            let r = run(&mut m, true);
            (r, *m.stats())
        }))
        .unwrap_or_else(|_| panic!("unchecked machine panicked on verified mutant {round}"));
        assert_eq!(
            checked, unchecked,
            "checked and unchecked paths diverge on verified mutant {round}"
        );
    }
    // The mutator must actually exercise both sides of the verifier.
    assert!(rejected >= 50, "only {rejected}/400 mutants rejected");
    assert!(accepted >= 20, "only {accepted}/400 mutants accepted");
    assert!(compared >= 20, "only {compared}/400 mutants compared");
}
