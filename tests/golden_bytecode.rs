//! Golden-bytecode snapshot tests: the Engine 3 compiler's flat code,
//! pinned.
//!
//! Each corpus program below (the same thirteen programs the
//! golden-Core suite pins) compiles at the default level and the
//! disassembly of its whole [`BcProgram`] — every global's chunk, in
//! program order, with resolved jump offsets, frame sizes and fused
//! superinstructions spelled out — is snapshotted into
//! `tests/golden/<name>.bc`. A change anywhere in the bytecode
//! compiler (new fusion, different frame layout, reordered blocks)
//! shows up as a reviewable diff of compiler *output*, not as bench
//! noise three PRs later.
//!
//! The disassembler is deterministic by construction: registers are
//! named by class and slot (`w0`, `p1`, `f2`, `d3`), jump targets are
//! resolved pcs, and binder names in `binds [...]` come from the
//! machine lowering's per-function numbering, not the optimizer's
//! process-global fresh counter (pinned by
//! `disassembly_is_stable_across_recompilations` below).
//!
//! To regenerate after an intentional bytecode-compiler change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_bytecode
//! ```

use std::path::PathBuf;

use levity::driver::compile_with_prelude;

/// The snapshot corpus — kept in lockstep with `golden_core.rs`, so
/// every pinned Core program also pins the flat code it lowers to.
const GOLDEN: &[(&str, &str)] = &[
    (
        "sum_to_boxed",
        "sumTo :: Int -> Int -> Int\n\
         sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = sumTo 0 5000\n",
    ),
    (
        "sum_to_unboxed",
        "sumTo# :: Int# -> Int# -> Int#\n\
         sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = sumTo# 0# 5000#\n",
    ),
    (
        "dict_unboxed",
        "loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 2000#\n",
    ),
    (
        "dict_boxed",
        "loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 2000\n",
    ),
    (
        "dict_poly_fn",
        "step :: forall (a :: TYPE IntRep). Num a => a -> a\n\
         step x = x + x\n\
         loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + step n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 2000#\n",
    ),
    (
        "dict_poly_fn_boxed",
        "step :: Num a => a -> a\n\
         step x = x + x\n\
         loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + step n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 2000\n",
    ),
    (
        "spec_square",
        "square :: Num a => a -> a\n\
         square x = x * x\n\
         main :: Int\n\
         main = square 7\n",
    ),
    (
        // The tentpole CPR shape; its worker's loop header must pin the
        // `cmp+br …; prim.w …; call.fw` triple fusion.
        "cpr_divmod",
        "data QR = QR Int# Int#\n\
         divMod# :: Int# -> Int# -> QR\n\
         divMod# n d = case n <# d of { 1# -> QR 0# n; _ -> case divMod# (n -# d) d of { QR q r -> QR (q +# 1#) r } }\n\
         loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> case divMod# n 3# of { QR q r -> loop (acc +# q +# r) (n -# 1#) } }\n\
         main :: Int#\n\
         main = loop 0# 5000#\n",
    ),
    (
        // The tail self-call lowers to a `prim.call.w` back-edge.
        "cpr_accumulator",
        "data QR = QR Int# Int#\n\
         spin :: Int# -> Int# -> QR\n\
         spin acc n = case n of { 0# -> QR acc n; _ -> spin (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = case spin 0# 5000# of { QR s z -> s +# z }\n",
    ),
    (
        // Negative space: no unboxed-tuple returns, so no `ret.multi.w`
        // may appear for `mk`.
        "cpr_escape",
        "data QR = QR Int# Int#\n\
         mk :: Int# -> QR\n\
         mk n = case n <# 0# of { 1# -> QR 0# n; _ -> case mk (n -# 1#) of { QR a b -> QR (a +# n) b } }\n\
         main :: QR\n\
         main = mk 3#\n",
    ),
    (
        // Join points lower to moves + `goto` back into the chunk.
        "join_diamond",
        "data QR = QR Int# Int#\n\
         pick :: Int# -> Int# -> QR\n\
         pick a b = case (case a <# b of { 1# -> QR a b; _ -> QR b a }) of { QR x y -> QR (x +# 100#) y }\n\
         use :: Int# -> Int#\n\
         use n = case pick n 5# of { QR u v -> u +# (v *# 2#) +# (u -# v) +# (u *# v) }\n\
         main :: Int#\n\
         main = use 3#\n",
    ),
    (
        "tuple_divmod",
        "divMod# :: Int# -> Int# -> (# Int#, Int# #)\n\
         divMod# n k = (# quotInt# n k, remInt# n k #)\n\
         useBoth :: Int# -> Int# -> Int#\n\
         useBoth n k = case divMod# n k of { (# q, r #) -> q +# r }\n\
         main :: Int#\n\
         main = useBoth 17# 5#\n",
    ),
    (
        "spec_mutual",
        "bounce :: Num a => a -> Int# -> a\n\
         bounce x n = case n of { 0# -> x; _ -> rebound (x + x) (n -# 1#) }\n\
         rebound :: Num a => a -> Int# -> a\n\
         rebound x n = case n of { 0# -> x; _ -> bounce (x * x) (n -# 1#) }\n\
         main :: Int\n\
         main = bounce 2 3#\n",
    ),
];

fn disasm(src: &str, name: &str) -> String {
    compile_with_prelude(src)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .bytecode
        .disasm()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.bc"))
}

#[test]
fn flat_bytecode_matches_the_committed_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut mismatches: Vec<String> = Vec::new();
    for (name, src) in GOLDEN {
        let rendered = disasm(src, name);
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == rendered => {}
            Ok(expected) => {
                let diff: Vec<String> = expected
                    .lines()
                    .zip(rendered.lines())
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                    .take(5)
                    .map(|(i, (a, b))| format!("  line {}: {a:?}\n       now: {b:?}", i + 1))
                    .collect();
                mismatches.push(format!(
                    "{name}: golden bytecode differs ({} vs {} lines){}{}",
                    expected.lines().count(),
                    rendered.lines().count(),
                    if diff.is_empty() { "" } else { "\n" },
                    diff.join("\n")
                ));
            }
            Err(_) => mismatches.push(format!("{name}: missing golden file {path:?}")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "bytecode-compiler output drifted from the committed golden snapshots:\n{}\n\n\
         If the change is intentional, regenerate with:\n    UPDATE_GOLDEN=1 cargo test --test golden_bytecode\n\
         and commit the updated tests/golden/*.bc files.",
        mismatches.join("\n")
    );
}

/// Two independent compilations of the same source must disassemble
/// byte-identically, even with other compilations interleaved (the
/// optimizer's process-global fresh-name counter must not leak into
/// the flat code's rendering).
#[test]
fn disassembly_is_stable_across_recompilations() {
    let (name, src) = GOLDEN.iter().find(|(n, _)| *n == "cpr_divmod").unwrap();
    let a = disasm(src, name);
    let _ = compile_with_prelude("f :: Int -> Int\nf x = x + x\nmain :: Int\nmain = f 1\n");
    let b = disasm(src, name);
    assert_eq!(a, b, "disassembly must not depend on compilation order");
}

/// The snapshots must actually contain the shapes they pin: the CPR
/// worker's loop header is the fully fused compare-call, the
/// accumulator's back-edge is a fused tail self-call, and the escaping
/// product keeps its box (no word-stack multi-returns).
#[test]
fn snapshots_contain_the_shapes_they_pin() {
    let by_name = |n: &str| GOLDEN.iter().find(|(g, _)| *g == n).unwrap().1;
    let divmod = disasm(by_name("cpr_divmod"), "cpr_divmod");
    assert!(
        divmod.contains("cmp+br <#") && divmod.contains("; call.fw"),
        "cpr_divmod must pin the fused loop header:\n{divmod}"
    );
    let acc = disasm(by_name("cpr_accumulator"), "cpr_accumulator");
    assert!(
        acc.contains("call.self.w"),
        "cpr_accumulator must pin the fused tail self-call:\n{acc}"
    );
    let escape = disasm(by_name("cpr_escape"), "cpr_escape");
    assert!(
        !escape.contains("ret.multi.w"),
        "cpr_escape's result escapes unscrutinised; it must keep its box:\n{escape}"
    );
}
