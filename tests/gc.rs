//! Negative-space pins for the bytecode engine's copying collector.
//!
//! The differential suite proves the collector is observationally
//! invisible across the whole corpus grid; these tests pin the edges
//! that a grid sweep would not isolate if they regressed:
//!
//! * zero-allocation loops never collect, however tiny the nursery —
//!   the §2.1 payoff (unboxed code never touches the heap) must
//!   survive the collector's existence;
//! * allocation churn under a tiny nursery collects *many* times and
//!   still reproduces the uncollected run's outcome and every non-GC
//!   counter;
//! * a collection landing in the middle of a `Force` — update frame on
//!   the stack, blackhole in the heap — preserves thunk-update
//!   semantics (sharing) and `<<loop>>` detection;
//! * the live-heap cap kills a program whose *reachable* data outgrows
//!   it, with a structured error distinct from the cumulative
//!   allocation cap;
//! * the verifier's unchecked fast path collects at exactly the same
//!   points as the checked path: outcome and **every** counter equal.

use std::sync::Arc;

use levity::driver::pipeline::{compile_with_prelude, RunLimits};
use levity::m::bytecode::BcProgram;
use levity::m::compile::CodeProgram;
use levity::m::machine::{Globals, MachineError, MachineStats, RunOutcome};
use levity::m::regmachine::BcMachine;
use levity::m::syntax::{Atom, Literal, MExpr};
use levity::m::Engine;

const FUEL: u64 = 50_000_000;

/// The §2.1 unboxed ladder: a register loop that allocates nothing.
const ZERO_ALLOC: &str = "sumTo# :: Int# -> Int# -> Int#\n\
     sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
     main :: Int#\n\
     main = sumTo# 0# 5000#\n";

/// Allocation churn with a tiny live set: builds and drops a fresh
/// 24-cell chain per round.
const CHURN: &str = "data Chain = End | Link Int Chain\n\
     build :: Int# -> Chain\n\
     build n = case n of { 0# -> End; _ -> Link (I# n) (build (n -# 1#)) }\n\
     len :: Chain -> Int#\n\
     len xs = case xs of { End -> 0#; Link h t -> 1# +# len t }\n\
     churn :: Int# -> Int# -> Int#\n\
     churn acc r = case r of { 0# -> acc; _ -> churn (acc +# len (build 24#)) (r -# 1#) }\n\
     main :: Int#\n\
     main = churn 0# 100#\n";

/// A big *live* chain: 300 cells all reachable at once, so residency
/// (unlike churn's) genuinely grows.
const BIG_LIVE: &str = "data Chain = End | Link Int Chain\n\
     build :: Int# -> Chain\n\
     build n = case n of { 0# -> End; _ -> Link (I# n) (build (n -# 1#)) }\n\
     len :: Chain -> Int#\n\
     len xs = case xs of { End -> 0#; Link h t -> 1# +# len t }\n\
     main :: Int#\n\
     main = len (build 300#)\n";

/// A shared thunk forced twice: `xs` is an argument thunk whose first
/// force runs the whole allocating `build` under an update frame.
const SHARED_FORCE: &str = "data Chain = End | Link Int Chain\n\
     build :: Int# -> Chain\n\
     build n = case n of { 0# -> End; _ -> Link (I# n) (build (n -# 1#)) }\n\
     len :: Chain -> Int#\n\
     len xs = case xs of { End -> 0#; Link h t -> 1# +# len t }\n\
     twice :: Chain -> Int#\n\
     twice xs = len xs +# len xs\n\
     main :: Int#\n\
     main = twice (build 25#)\n";

fn run_bc(source: &str, limits: RunLimits) -> (RunOutcome, MachineStats) {
    let compiled = compile_with_prelude(source).unwrap_or_else(|e| panic!("{e}"));
    compiled
        .run_with_limits("main", Engine::Bytecode, limits)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Every field of `MachineStats` except the three GC counters.
#[allow(clippy::type_complexity)]
fn non_gc_counters(s: &MachineStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, usize, u64) {
    (
        s.steps,
        s.thunk_allocs,
        s.con_allocs,
        s.thunk_forces,
        s.updates,
        s.var_lookups,
        s.prim_ops,
        s.jumps,
        s.allocated_words,
        s.max_stack,
        s.fused_ops,
    )
}

#[test]
fn zero_allocation_ladders_never_collect() {
    let tiny = RunLimits {
        gc_nursery: Some(1),
        ..RunLimits::fuel(FUEL)
    };
    let (out, stats) = run_bc(ZERO_ALLOC, tiny);
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(12_502_500));
    // The loop never allocates, so pressure is never reached: the
    // collector must not cost an unboxed program anything — not one
    // collection, not one copied byte.
    assert_eq!(stats.collections, 0, "zero-alloc loop collected");
    assert_eq!(stats.bytes_copied, 0);
    assert_eq!(stats.gc_steps, 0);
    assert_eq!(stats.allocated_words, 0, "ladder is no longer zero-alloc");
}

#[test]
fn forced_collections_change_nothing_but_the_gc_counters() {
    let baseline = run_bc(CHURN, RunLimits::fuel(FUEL));
    assert_eq!(
        baseline.1.collections, 0,
        "churn at the default nursery should not collect in one request"
    );
    let tiny = RunLimits {
        gc_nursery: Some(64),
        ..RunLimits::fuel(FUEL)
    };
    let collected = run_bc(CHURN, tiny);
    assert!(
        collected.1.collections > 10,
        "tiny nursery barely collected: {}",
        collected.1.collections
    );
    assert_eq!(collected.0, baseline.0, "collection changed the outcome");
    assert_eq!(
        non_gc_counters(&collected.1),
        non_gc_counters(&baseline.1),
        "collection perturbed a non-GC counter"
    );
}

#[test]
fn collection_mid_force_preserves_update_semantics() {
    // `twice` forces its argument thunk twice; the first force runs
    // ~75 allocations under the update frame, so a 32-cell nursery
    // guarantees collections while the frame is live and the thunk is
    // blackholed. Sharing must survive relocation: same outcome, same
    // number of forces and updates as the uncollected run.
    let baseline = run_bc(SHARED_FORCE, RunLimits::fuel(FUEL));
    let tiny = RunLimits {
        gc_nursery: Some(32),
        ..RunLimits::fuel(FUEL)
    };
    let collected = run_bc(SHARED_FORCE, tiny);
    assert!(collected.1.collections > 0, "nursery of 32 never collected");
    assert_eq!(collected.0, baseline.0);
    assert_eq!(
        (collected.1.thunk_forces, collected.1.updates),
        (baseline.1.thunk_forces, baseline.1.updates),
        "relocation broke thunk sharing"
    );
}

#[test]
fn blackholes_survive_collection_and_still_catch_loops() {
    // let p = (let q = I#[1] in case q of I#[_] -> case p of I#[i] ->
    // I#[i]) in case p of I#[i] -> i — forcing `p` blackholes it, then
    // allocates `q`; with a 1-cell nursery that allocation collects
    // while `p` is a blackhole with its update frame on the stack. The
    // relocated blackhole must still be recognised when `p` demands
    // itself: `<<loop>>`, not a crash or a stale value.
    let inner = MExpr::let_lazy(
        "q",
        MExpr::con_int_hash(Atom::Lit(Literal::Int(1))),
        MExpr::case_int_hash(
            MExpr::var("q"),
            "j",
            MExpr::case_int_hash(
                MExpr::var("p"),
                "i",
                MExpr::con_int_hash(Atom::Var("i".into())),
            ),
        ),
    );
    let t = MExpr::let_lazy(
        "p",
        inner,
        MExpr::case_int_hash(MExpr::var("p"), "i", MExpr::var("i")),
    );
    let globals = Globals::new();
    let program = CodeProgram::compile(&globals);
    let bc = Arc::new(BcProgram::compile(&program));
    let entry = bc.compile_entry(&program.compile_entry(&t));
    let mut machine = BcMachine::new(bc);
    machine.set_fuel(FUEL);
    machine.set_gc_nursery(1);
    assert_eq!(machine.run(&entry), Err(MachineError::Loop));
}

#[test]
fn live_heap_cap_kills_what_churn_survives() {
    // Churn's live set is one 24-cell chain — far under 4KiB — so it
    // completes under the cap…
    let capped = RunLimits {
        heap_bytes: Some(4096),
        gc_nursery: Some(64),
        ..RunLimits::fuel(FUEL)
    };
    let (out, stats) = run_bc(CHURN, capped);
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(2_400));
    assert!(stats.collections > 0);
    // …while the same cap kills a program whose *reachable* data
    // outgrows it, with the residency error, not the allocation one.
    let compiled = compile_with_prelude(BIG_LIVE).unwrap_or_else(|e| panic!("{e}"));
    let err = compiled
        .run_with_limits("main", Engine::Bytecode, capped)
        .unwrap_err();
    assert_eq!(err, MachineError::HeapLimitExceeded { limit: 4096 });
    // The distinction matters: churn allocates far *more* than
    // BIG_LIVE in total. An allocation cap could never separate them.
    let alloc_capped = RunLimits {
        alloc_words: Some(2_000),
        ..RunLimits::fuel(FUEL)
    };
    assert!(matches!(
        compile_with_prelude(CHURN)
            .unwrap()
            .run_with_limits("main", Engine::Bytecode, alloc_capped)
            .unwrap_err(),
        MachineError::AllocLimitExceeded { .. }
    ));
}

#[test]
fn checked_and_verified_paths_collect_identically() {
    // The unchecked fast path derives its pointer maps from the
    // verifier witness; the checked path re-derives them lazily at the
    // first collection. If the two ever collected at different program
    // points, the GC counters would split — so demand *full* stats
    // equality under a nursery tiny enough to collect constantly.
    let compiled = compile_with_prelude(CHURN).unwrap_or_else(|e| panic!("{e}"));
    let entry = compiled
        .bytecode
        .compile_entry(&compiled.code.compile_entry(&MExpr::global("main")));
    let mut checked = BcMachine::new(Arc::clone(&compiled.bytecode));
    checked.set_fuel(FUEL);
    checked.set_gc_nursery(64);
    let c = (checked.run(&entry), *checked.stats());
    let ventry = compiled
        .verified
        .verify_entry(&entry)
        .unwrap_or_else(|e| panic!("entry fails verification: {e}"));
    let mut unchecked = BcMachine::new(Arc::clone(&compiled.bytecode));
    unchecked.set_fuel(FUEL);
    unchecked.set_gc_nursery(64);
    let u = (unchecked.run_verified(&ventry), *unchecked.stats());
    assert_eq!(c, u, "checked and unchecked paths collect differently");
    assert!(c.1.collections > 10, "tiny nursery barely collected");
}
