//! Golden-Core snapshot tests: the optimizer's O2 output, pinned.
//!
//! Each corpus program below compiles at the default level and its
//! whole post-optimizer Core program is pretty-printed into
//! `tests/golden/<name>.core`. A change anywhere in the pass pipeline
//! shows up as a reviewable diff of compiler *output*, not as bench
//! noise three PRs later.
//!
//! The printer α-normalizes term binders (`x0`, `x1`, … in traversal
//! order): every optimizer pass freshens binders through a
//! process-global counter, so raw names differ run to run while the
//! *structure* — which this suite pins — does not. Global names
//! (workers `$w…`, specialised clones `$s…`) are minted
//! deterministically and print as-is.
//!
//! To regenerate after an intentional optimizer change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_core
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use levity::driver::compile_with_prelude;
use levity::ir::terms::{CoreAlt, CoreExpr, LetKind, Program};
use levity_core::symbol::Symbol;

/// The snapshot corpus: the §7.3 ladder, the CPR loops, the join-point
/// diamonds, and the worked specialisation example.
const GOLDEN: &[(&str, &str)] = &[
    (
        "sum_to_boxed",
        "sumTo :: Int -> Int -> Int\n\
         sumTo acc n = case n of { I# k -> case k of { 0# -> acc; _ -> sumTo (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = sumTo 0 5000\n",
    ),
    (
        "sum_to_unboxed",
        "sumTo# :: Int# -> Int# -> Int#\n\
         sumTo# acc n = case n of { 0# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = sumTo# 0# 5000#\n",
    ),
    (
        "dict_unboxed",
        "loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 2000#\n",
    ),
    (
        "dict_boxed",
        "loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 2000\n",
    ),
    (
        "dict_poly_fn",
        "step :: forall (a :: TYPE IntRep). Num a => a -> a\n\
         step x = x + x\n\
         loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> loop (acc + step n) (n - 1#) }\n\
         main :: Int#\n\
         main = loop 0# 2000#\n",
    ),
    (
        "dict_poly_fn_boxed",
        "step :: Num a => a -> a\n\
         step x = x + x\n\
         loop :: Int -> Int -> Int\n\
         loop acc n = case n of { I# k -> case k of { 0# -> acc; _ -> loop (acc + step n) (n - 1) } }\n\
         main :: Int\n\
         main = loop 0 2000\n",
    ),
    (
        "spec_square",
        "square :: Num a => a -> a\n\
         square x = x * x\n\
         main :: Int\n\
         main = square 7\n",
    ),
    (
        // The tentpole CPR shape: a recursive divMod returning a
        // two-field product, scrutinised at every call site. The
        // worker must return (# Int#, Int# #) and recurse directly.
        "cpr_divmod",
        "data QR = QR Int# Int#\n\
         divMod# :: Int# -> Int# -> QR\n\
         divMod# n d = case n <# d of { 1# -> QR 0# n; _ -> case divMod# (n -# d) d of { QR q r -> QR (q +# 1#) r } }\n\
         loop :: Int# -> Int# -> Int#\n\
         loop acc n = case n of { 0# -> acc; _ -> case divMod# n 3# of { QR q r -> loop (acc +# q +# r) (n -# 1#) } }\n\
         main :: Int#\n\
         main = loop 0# 5000#\n",
    ),
    (
        // A CPR-shaped accumulator whose worker's tail self-call must
        // collapse through tuple-η to a direct call.
        "cpr_accumulator",
        "data QR = QR Int# Int#\n\
         spin :: Int# -> Int# -> QR\n\
         spin acc n = case n of { 0# -> QR acc n; _ -> spin (acc +# n) (n -# 1#) }\n\
         main :: Int#\n\
         main = case spin 0# 5000# of { QR s z -> s +# z }\n",
    ),
    (
        // The result escapes from main unscrutinised: the negative
        // space — no CPR worker may appear in this snapshot.
        "cpr_escape",
        "data QR = QR Int# Int#\n\
         mk :: Int# -> QR\n\
         mk n = case n <# 0# of { 1# -> QR 0# n; _ -> case mk (n -# 1#) of { QR a b -> QR (a +# n) b } }\n\
         main :: QR\n\
         main = mk 3#\n",
    ),
    (
        // A join-point diamond: multi-alternative case-of-case, the
        // shared continuation bound once and jumped to from both arms.
        "join_diamond",
        "data QR = QR Int# Int#\n\
         pick :: Int# -> Int# -> QR\n\
         pick a b = case (case a <# b of { 1# -> QR a b; _ -> QR b a }) of { QR x y -> QR (x +# 100#) y }\n\
         use :: Int# -> Int#\n\
         use n = case pick n 5# of { QR u v -> u +# (v *# 2#) +# (u -# v) +# (u *# v) }\n\
         main :: Int#\n\
         main = use 3#\n",
    ),
    (
        // Hand-written unboxed-tuple returns: the shape CPR workers
        // compile down to, kept as the reference point.
        "tuple_divmod",
        "divMod# :: Int# -> Int# -> (# Int#, Int# #)\n\
         divMod# n k = (# quotInt# n k, remInt# n k #)\n\
         useBoth :: Int# -> Int# -> Int#\n\
         useBoth n k = case divMod# n k of { (# q, r #) -> q +# r }\n\
         main :: Int#\n\
         main = useBoth 17# 5#\n",
    ),
    (
        // Mutually recursive constrained helpers, specialised and
        // worker/wrapped: the widest slice of the pipeline in one file.
        "spec_mutual",
        "bounce :: Num a => a -> Int# -> a\n\
         bounce x n = case n of { 0# -> x; _ -> rebound (x + x) (n -# 1#) }\n\
         rebound :: Num a => a -> Int# -> a\n\
         rebound x n = case n of { 0# -> x; _ -> bounce (x * x) (n -# 1#) }\n\
         main :: Int\n\
         main = bounce 2 3#\n",
    ),
];

// ---------------------------------------------------------------------
// The α-normalizing pretty-printer
// ---------------------------------------------------------------------

#[derive(Default)]
struct Norm {
    /// Term-binder renames in scope, innermost last.
    stack: Vec<(Symbol, String)>,
    next: usize,
}

impl Norm {
    fn bind(&mut self, s: Symbol) -> String {
        let fresh = format!("x{}", self.next);
        self.next += 1;
        self.stack.push((s, fresh.clone()));
        fresh
    }

    fn mark(&self) -> usize {
        self.stack.len()
    }

    fn release(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }

    fn var(&self, s: Symbol) -> String {
        self.stack
            .iter()
            .rev()
            .find(|(orig, _)| *orig == s)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| s.to_string())
    }
}

/// Single-line rendering with normalized binders (used for scrutinees,
/// arguments, and small right-hand sides).
fn inline_expr(e: &CoreExpr, n: &mut Norm) -> String {
    match e {
        CoreExpr::Var(x) => n.var(*x),
        CoreExpr::Global(g) => g.to_string(),
        CoreExpr::Lit(l) => l.to_string(),
        CoreExpr::Error(t, msg) => format!("error @({t}) \"{msg}\""),
        CoreExpr::App(f, a) => format!("({} {})", inline_expr(f, n), inline_expr(a, n)),
        CoreExpr::TyApp(f, t) => format!("({} @{t})", inline_expr(f, n)),
        CoreExpr::RepApp(f, r) => format!("({} @{r})", inline_expr(f, n)),
        CoreExpr::Lam(x, t, b) => {
            let mark = n.mark();
            let x = n.bind(*x);
            let body = inline_expr(b, n);
            n.release(mark);
            format!("\\({x} :: {t}) -> {body}")
        }
        CoreExpr::TyLam(a, k, b) => format!("/\\({a} :: {k}) -> {}", inline_expr(b, n)),
        CoreExpr::RepLam(r, b) => format!("/\\({r} :: Rep) -> {}", inline_expr(b, n)),
        CoreExpr::Let(kind, x, t, rhs, body) => {
            let kw = match kind {
                LetKind::NonRec => "let",
                LetKind::Rec => "letrec",
            };
            let mark = n.mark();
            let (rhs_s, x_s) = if *kind == LetKind::Rec {
                let x_s = n.bind(*x);
                (inline_expr(rhs, n), x_s)
            } else {
                let rhs_s = inline_expr(rhs, n);
                (rhs_s, n.bind(*x))
            };
            let body_s = inline_expr(body, n);
            n.release(mark);
            format!("{kw} {x_s} :: {t} = {rhs_s} in {body_s}")
        }
        CoreExpr::Case(scrut, alts) => {
            let scrut_s = inline_expr(scrut, n);
            let alts_s: Vec<String> = alts.iter().map(|a| inline_alt(a, n)).collect();
            format!("case {scrut_s} of {{ {} }}", alts_s.join("; "))
        }
        CoreExpr::Con(con, _, fields) => {
            let mut out = con.name.to_string();
            for f in fields {
                let _ = write!(out, " ({})", inline_expr(f, n));
            }
            out
        }
        CoreExpr::Prim(op, args) => {
            let mut out = format!("({op}");
            for a in args {
                let _ = write!(out, " {}", inline_expr(a, n));
            }
            out.push(')');
            out
        }
        CoreExpr::Tuple(es) => {
            let parts: Vec<String> = es.iter().map(|e| inline_expr(e, n)).collect();
            format!("(# {} #)", parts.join(", "))
        }
    }
}

fn inline_alt(alt: &CoreAlt, n: &mut Norm) -> String {
    let mark = n.mark();
    let out = match alt {
        CoreAlt::Con { con, binders, rhs } => {
            let mut pat = con.name.to_string();
            for (b, _) in binders {
                let _ = write!(pat, " {}", n.bind(*b));
            }
            format!("{pat} -> {}", inline_expr(rhs, n))
        }
        CoreAlt::Lit { lit, rhs } => format!("{lit} -> {}", inline_expr(rhs, n)),
        CoreAlt::Tuple { binders, rhs } => {
            let names: Vec<String> = binders.iter().map(|(b, _)| n.bind(*b)).collect();
            format!("(# {} #) -> {}", names.join(", "), inline_expr(rhs, n))
        }
        CoreAlt::Default { binder, rhs } => match binder {
            Some((b, _)) => format!("{} -> {}", n.bind(*b), inline_expr(rhs, n)),
            None => format!("_ -> {}", inline_expr(rhs, n)),
        },
    };
    n.release(mark);
    out
}

/// Multi-line rendering: λ-chains, lets and cases get structure; leaves
/// fall back to the inline form.
fn pp(e: &CoreExpr, n: &mut Norm, indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    match e {
        CoreExpr::Lam(..) | CoreExpr::TyLam(..) | CoreExpr::RepLam(..) => {
            let mark = n.mark();
            let mut heads: Vec<String> = Vec::new();
            let mut cur = e;
            loop {
                match cur {
                    CoreExpr::Lam(x, t, b) => {
                        heads.push(format!("\\({} :: {t})", n.bind(*x)));
                        cur = b;
                    }
                    CoreExpr::TyLam(a, k, b) => {
                        heads.push(format!("/\\({a} :: {k})"));
                        cur = b;
                    }
                    CoreExpr::RepLam(r, b) => {
                        heads.push(format!("/\\({r} :: Rep)"));
                        cur = b;
                    }
                    _ => break,
                }
            }
            let _ = writeln!(out, "{pad}{} ->", heads.join(" "));
            pp(cur, n, indent + 2, out);
            n.release(mark);
        }
        CoreExpr::Let(kind, x, t, rhs, body) => {
            let kw = match kind {
                LetKind::NonRec => "let",
                LetKind::Rec => "letrec",
            };
            let mark = n.mark();
            let (rhs_s, x_s) = if *kind == LetKind::Rec {
                let x_s = n.bind(*x);
                (inline_expr(rhs, n), x_s)
            } else {
                let rhs_s = inline_expr(rhs, n);
                (rhs_s, n.bind(*x))
            };
            let _ = writeln!(out, "{pad}{kw} {x_s} :: {t} = {rhs_s} in");
            pp(body, n, indent, out);
            n.release(mark);
        }
        CoreExpr::Case(scrut, alts) => {
            let scrut_s = inline_expr(scrut, n);
            let _ = writeln!(out, "{pad}case {scrut_s} of {{");
            for alt in alts {
                let mark = n.mark();
                let (pat, rhs) = match alt {
                    CoreAlt::Con { con, binders, rhs } => {
                        let mut pat = con.name.to_string();
                        for (b, _) in binders {
                            let _ = write!(pat, " {}", n.bind(*b));
                        }
                        (pat, rhs)
                    }
                    CoreAlt::Lit { lit, rhs } => (lit.to_string(), rhs),
                    CoreAlt::Tuple { binders, rhs } => {
                        let names: Vec<String> = binders.iter().map(|(b, _)| n.bind(*b)).collect();
                        (format!("(# {} #)", names.join(", ")), rhs)
                    }
                    CoreAlt::Default { binder, rhs } => match binder {
                        Some((b, _)) => (n.bind(*b), rhs),
                        None => ("_".to_string(), rhs),
                    },
                };
                let _ = writeln!(out, "{pad}  {pat} ->");
                pp(rhs, n, indent + 4, out);
                n.release(mark);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        other => {
            let _ = writeln!(out, "{pad}{}", inline_expr(other, n));
        }
    }
}

/// Renders a whole optimized program in binding order.
fn render(program: &Program) -> String {
    let mut out = String::new();
    for b in &program.bindings {
        let _ = writeln!(out, "{} :: {}", b.name, b.ty);
        let _ = writeln!(out, "{} =", b.name);
        let mut n = Norm::default();
        pp(&b.expr, &mut n, 2, &mut out);
        out.push('\n');
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.core"))
}

#[test]
fn optimized_core_matches_the_committed_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut mismatches: Vec<String> = Vec::new();
    for (name, src) in GOLDEN {
        let compiled = compile_with_prelude(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rendered = render(&compiled.program);
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == rendered => {}
            Ok(expected) => {
                let diff: Vec<String> = expected
                    .lines()
                    .zip(rendered.lines())
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                    .take(5)
                    .map(|(i, (a, b))| format!("  line {}: {a:?}\n       now: {b:?}", i + 1))
                    .collect();
                mismatches.push(format!(
                    "{name}: golden Core differs ({} vs {} lines){}{}",
                    expected.lines().count(),
                    rendered.lines().count(),
                    if diff.is_empty() { "" } else { "\n" },
                    diff.join("\n")
                ));
            }
            Err(_) => mismatches.push(format!("{name}: missing golden file {path:?}")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "optimizer output drifted from the committed golden Core:\n{}\n\n\
         If the change is intentional, regenerate with:\n    UPDATE_GOLDEN=1 cargo test --test golden_core\n\
         and commit the updated tests/golden/*.core files.",
        mismatches.join("\n")
    );
}

/// The α-normalizer must make printing deterministic: two independent
/// compilations of the same source (whose raw freshened binder names
/// differ) must render byte-identically.
#[test]
fn rendering_is_stable_across_recompilations() {
    let src = GOLDEN.iter().find(|(n, _)| *n == "cpr_divmod").unwrap().1;
    let a = render(&compile_with_prelude(src).unwrap().program);
    let b = render(&compile_with_prelude(src).unwrap().program);
    assert_eq!(
        a, b,
        "α-normalized rendering must not depend on the fresh-name counter"
    );
}

/// The CPR and join tentpoles must actually be visible in the pinned
/// snapshots: the divMod worker returns an unboxed tuple, and the
/// diamond's Core binds join points ($j lets survive as `let`s whose
/// lowering emits jumps).
#[test]
fn snapshots_contain_the_shapes_they_pin() {
    let by_name = |n: &str| GOLDEN.iter().find(|(g, _)| *g == n).unwrap().1;
    let divmod = render(&compile_with_prelude(by_name("cpr_divmod")).unwrap().program);
    assert!(
        divmod.contains("$wdivMod# :: Int# -> Int# -> (# Int#, Int# #)"),
        "cpr_divmod must pin a CPR worker:\n{divmod}"
    );
    let escape = render(&compile_with_prelude(by_name("cpr_escape")).unwrap().program);
    assert!(
        !escape.contains("(# Int#, Int# #)"),
        "cpr_escape's result escapes unscrutinised; it must keep its box:\n{escape}"
    );
}
