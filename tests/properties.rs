//! Property-based tests over the core data structures and invariants,
//! complementing the directed metatheory checks.

use proptest::prelude::*;

use levity::core::kind::Kind;
use levity::core::pretty::Doc;
use levity::core::rep::{Rep, RepTy, Slot};
use levity::core::symbol::Symbol;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_scalar_rep() -> impl Strategy<Value = Rep> {
    prop_oneof![
        Just(Rep::Lifted),
        Just(Rep::Unlifted),
        Just(Rep::Int),
        Just(Rep::Int8),
        Just(Rep::Int64),
        Just(Rep::Word),
        Just(Rep::Char),
        Just(Rep::Float),
        Just(Rep::Double),
        Just(Rep::Addr),
    ]
}

fn arb_rep() -> impl Strategy<Value = Rep> {
    arb_scalar_rep().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Rep::Tuple),
            prop::collection::vec(inner, 1..4).prop_map(Rep::Sum),
        ]
    })
}

// ---------------------------------------------------------------------
// Figure 1 / §4 invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn lifted_implies_boxed(rep in arb_rep()) {
        // The unboxed-lifted corner of Figure 1 is uninhabited.
        if rep.is_lifted() {
            prop_assert!(rep.is_boxed());
        }
    }

    #[test]
    fn width_is_the_sum_of_slot_widths(rep in arb_rep()) {
        let slots = rep.slots();
        prop_assert_eq!(rep.width_bytes(), slots.iter().map(|s| s.bytes()).sum::<usize>());
        prop_assert_eq!(rep.register_count(), slots.len());
    }

    #[test]
    fn tuple_nesting_is_computationally_irrelevant(
        a in arb_rep(), b in arb_rep(), c in arb_rep()
    ) {
        // §2.3 generalized: any re-association of tuple nesting yields
        // the same register slots.
        let nested = Rep::Tuple(vec![a.clone(), Rep::Tuple(vec![b.clone(), c.clone()])]);
        let flat = Rep::Tuple(vec![a, b, c]);
        prop_assert_eq!(nested.slots(), flat.slots());
    }

    #[test]
    fn empty_tuples_vanish_from_register_shapes(reps in prop::collection::vec(arb_rep(), 0..4)) {
        let with_unit = {
            let mut v = reps.clone();
            v.push(Rep::Tuple(vec![]));
            Rep::Tuple(v)
        };
        prop_assert_eq!(with_unit.slots(), Rep::Tuple(reps).slots());
    }

    #[test]
    fn sum_slots_cover_every_alternative(alts in prop::collection::vec(arb_rep(), 1..4)) {
        // The merged sum layout must have at least as many slots of each
        // class as any single alternative needs.
        let sum = Rep::Sum(alts.clone());
        let merged = sum.slots();
        let count = |slots: &[Slot], class: Slot| slots.iter().filter(|s| **s == class).count();
        for alt in &alts {
            let alt_slots = alt.slots();
            for class in [Slot::Ptr, Slot::Word, Slot::Float, Slot::Double] {
                let available = count(&merged, class)
                    // the tag word may serve as a word slot only if spare,
                    // so exclude it from the comparison
                    - usize::from(class == Slot::Word);
                prop_assert!(
                    count(&alt_slots, class) <= available + usize::from(class == Slot::Word),
                    "alternative {alt} needs more {class} slots than the sum provides"
                );
            }
        }
    }

    #[test]
    fn rep_substitution_is_idempotent_on_closed_reps(rep in arb_rep()) {
        let rep_ty = RepTy::Concrete(rep);
        let var = Symbol::intern("r");
        prop_assert_eq!(rep_ty.substitute(var, &RepTy::LIFTED), rep_ty.clone());
        prop_assert!(!rep_ty.has_vars());
        prop_assert_eq!(rep_ty.as_concrete().is_some(), true);
    }

    #[test]
    fn kinds_of_concrete_reps_are_never_levity_polymorphic(rep in arb_rep()) {
        let kind = Kind::of_rep(rep.clone());
        prop_assert!(!kind.is_levity_polymorphic());
        prop_assert_eq!(kind.concrete_rep(), Some(rep));
    }
}

// ---------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------

fn arb_doc() -> impl Strategy<Value = Doc> {
    let leaf = prop_oneof![
        Just(Doc::nil()),
        "[a-z]{0,8}".prop_map(Doc::text),
        Just(Doc::line()),
        Just(Doc::soft_break()),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.append(b)),
            (inner.clone(), 0..6isize).prop_map(|(d, n)| d.nest(n)),
            inner.prop_map(Doc::group),
        ]
    })
}

proptest! {
    #[test]
    fn rendering_never_panics_and_respects_grouping(doc in arb_doc(), width in 0usize..120) {
        let rendered = doc.render(width);
        // A grouped doc rendered at enormous width has no newlines.
        let flat = doc.clone().group().render(100_000);
        prop_assert!(!flat.contains('\n'));
        // Rendering is deterministic.
        prop_assert_eq!(rendered.clone(), doc.render(width));
    }
}

// ---------------------------------------------------------------------
// L: substitution and α-equivalence
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn alpha_eq_is_reflexive_on_generated_types(seed in 0u64..500) {
        use levity::l::gen::{GenConfig, Generator};
        use levity::l::subst::alpha_eq_ty;
        let mut generator = Generator::new(seed, GenConfig::default());
        let (_e, ty) = generator.generate();
        prop_assert!(alpha_eq_ty(&ty, &ty));
    }

    #[test]
    fn substituting_an_absent_variable_is_identity(seed in 0u64..300) {
        use levity::l::gen::{GenConfig, Generator};
        use levity::l::subst::{free_term_vars, subst_expr};
        use levity::l::syntax::Expr;
        let mut generator = Generator::new(seed, GenConfig::default());
        let (e, _ty) = generator.generate();
        let ghost = Symbol::intern("never-bound-anywhere");
        prop_assert!(!free_term_vars(&e).contains(&ghost));
        prop_assert_eq!(subst_expr(&e, ghost, &Expr::Lit(0)), e);
    }
}

// ---------------------------------------------------------------------
// §6.2 width safety: compiled code never fails the register-class check
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compiled_terms_are_width_safe(seed in 0u64..10_000) {
        use levity::compile::figure7::compile_closed;
        use levity::l::gen::{GenConfig, Generator};
        use levity::m::machine::{Machine, MachineError};

        let mut generator = Generator::new(seed, GenConfig::default());
        let (e, _ty) = generator.generate();
        let t = compile_closed(&e).expect("well-typed terms compile");
        let mut machine = Machine::new();
        machine.set_fuel(2_000_000);
        match machine.run(t) {
            Ok(_) => {}
            // "the value being substituted is always of a known width"
            // (§6.2): these failures must be impossible.
            Err(MachineError::ClassMismatch { .. }) => {
                prop_assert!(false, "width check failed on compiled code: {e}")
            }
            Err(MachineError::UnboundVariable(_)) => {
                prop_assert!(false, "open compiled code: {e}")
            }
            Err(MachineError::AppliedNonFunction(_)) => {
                prop_assert!(false, "shape error in compiled code: {e}")
            }
            Err(other) => prop_assert!(false, "unexpected machine failure: {other}"),
        }
    }
}
