//! E3 — unboxed tuples (§2.3, §4.2), end to end.
//!
//! "Unboxed tuples do not exist at runtime, at all": returning
//! `(# q, r #)` compiles to returning two values in registers, while the
//! boxed `(q, r)` heap-allocates a two-pointer cell.

use levity::driver::compile_with_prelude;

const FUEL: u64 = 50_000_000;

const DIV_MOD: &str = "divMod# :: Int# -> Int# -> (# Int#, Int# #)\n\
     divMod# n k = (# quotInt# n k, remInt# n k #)\n\
     useBoth :: Int# -> Int# -> Int#\n\
     useBoth n k = case divMod# n k of { (# q, r #) -> q +# r }\n\
     main :: Int#\n\
     main = useBoth 17# 5#\n";

#[test]
fn unboxed_div_mod_runs_without_allocation() {
    let compiled = compile_with_prelude(DIV_MOD).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(3 + 2));
    assert_eq!(stats.con_allocs, 0, "the unboxed tuple must not allocate");
    assert_eq!(stats.allocated_words, 0);
}

#[test]
fn boxed_div_mod_allocates_the_pair_and_boxes() {
    // A claim about the unoptimized compilation scheme (§2.3's cost of
    // boxing), so it pins `O0`; the optimizer deliberately erases the
    // allocations (next test).
    let src = "divMod2 :: Int -> Int -> Pair Int Int\n\
         divMod2 a b = case a of { I# n -> case b of { I# k ->\n\
           MkPair (I# (quotInt# n k)) (I# (remInt# n k)) } }\n\
         main :: Int#\n\
         main = case divMod2 17 5 of { MkPair q r ->\n\
           case q of { I# qq -> case r of { I# rr -> qq +# rr } } }\n";
    let compiled =
        levity::driver::compile_with_prelude_opt(src, levity::driver::OptLevel::O0).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(5));
    // The pair cell plus two I# boxes (plus the two input boxes).
    assert!(
        stats.con_allocs >= 3,
        "boxed divMod must allocate, got {}",
        stats.con_allocs
    );
}

#[test]
fn optimizer_erases_the_boxed_pair() {
    // The same program at the default level: inlining plus
    // case-of-known-constructor see the whole construction, so neither
    // the pair cell nor the intermediate boxes survive.
    let src = "divMod2 :: Int -> Int -> Pair Int Int\n\
         divMod2 a b = case a of { I# n -> case b of { I# k ->\n\
           MkPair (I# (quotInt# n k)) (I# (remInt# n k)) } }\n\
         main :: Int#\n\
         main = case divMod2 17 5 of { MkPair q r ->\n\
           case q of { I# qq -> case r of { I# rr -> qq +# rr } } }\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(5));
    assert_eq!(
        stats.con_allocs, 0,
        "the optimizer should see through the boxed pair"
    );
}

#[test]
fn tuple_arguments_pass_in_registers() {
    // A function *taking* an unboxed tuple compiles to a multi-register
    // function ("compiles to the exact same code as (+) :: Int -> Int ->
    // Int", §2.3).
    let src = "addPair :: (# Int#, Int# #) -> Int#\n\
         addPair t = case t of { (# a, b #) -> a +# b }\n\
         main :: Int#\n\
         main = addPair (# 20#, 22# #)\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(42));
    assert_eq!(stats.allocated_words, 0);
}

#[test]
fn nested_tuples_have_the_same_register_shape_but_different_kinds() {
    // §4.2: (# Int, (# Float#, Bool #) #) and (# Int, Float#, Bool #)
    // are "identical at runtime" yet kind-distinct.
    use levity::core::kind::Kind;
    use levity::core::rep::Rep;
    let nested = Rep::Tuple(vec![Rep::Lifted, Rep::Tuple(vec![Rep::Float, Rep::Lifted])]);
    let flat = Rep::Tuple(vec![Rep::Lifted, Rep::Float, Rep::Lifted]);
    assert_eq!(nested.slots(), flat.slots());
    assert_ne!(Kind::of_rep(nested), Kind::of_rep(flat));

    // And a nested tuple program runs with zero allocation too.
    let src = "mk :: Int# -> (# Int#, (# Int#, Int# #) #)\n\
         mk n = (# n, (# n +# 1#, n +# 2# #) #)\n\
         main :: Int#\n\
         main = case mk 1# of { (# a, bc #) -> case bc of { (# b, c #) -> a +# b +# c } }\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(1 + 2 + 3));
    assert_eq!(stats.allocated_words, 0);
}

#[test]
fn empty_unboxed_tuple_is_represented_by_nothing() {
    // "(# #) … represented by nothing at all."
    let src = "nothing# :: (# #)\n\
         nothing# = (# #)\n\
         ignore :: (# #) -> Int#\n\
         ignore u = 5#\n\
         main :: Int#\n\
         main = ignore nothing#\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(5));
    assert_eq!(stats.allocated_words, 0);
}

#[test]
fn mixed_rep_tuples_carry_distinct_register_classes() {
    let src = "pairUp :: Int# -> Double# -> (# Int#, Double# #)\n\
         pairUp n d = (# n, d #)\n\
         main :: Int#\n\
         main = case pairUp 4# 2.5## of { (# n, d #) -> n +# double2Int# d }\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_int()), Some(6));
    assert_eq!(stats.allocated_words, 0);
}

#[test]
fn tuples_of_boxed_values_pass_pointers_without_boxing_the_tuple() {
    let src = "swap# :: (# Int, Int #) -> (# Int, Int #)\n\
         swap# t = case t of { (# a, b #) -> (# b, a #) }\n\
         main :: Int\n\
         main = case swap# (# 1, 2 #) of { (# x, y #) -> x }\n";
    let compiled = compile_with_prelude(src).unwrap();
    let (out, stats) = compiled.run("main", FUEL).unwrap();
    assert_eq!(out.value().and_then(|v| v.as_boxed_int()), Some(2));
    // The two components are *thunked* (lifted fields are lazy); only
    // the demanded one ever builds its I# box, and no tuple cell exists.
    assert_eq!(stats.thunk_allocs, 2);
    assert_eq!(stats.con_allocs, 1);
}
