//! # levity — a Rust reproduction of *Levity Polymorphism* (PLDI 2017)
//!
//! Eisenberg & Peyton Jones, *Levity Polymorphism*, PLDI 2017: kinds are
//! calling conventions. Types are classified by kinds `TYPE ρ` where `ρ`
//! describes the runtime representation of values; polymorphism over `ρ`
//! ("levity polymorphism") is permitted exactly when no value is moved
//! or stored at an unknown representation (§5.1).
//!
//! This crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | `Rep`, kinds, register slots, diagnostics, pretty printing |
//! | [`l`] | the formal calculus **L** (Figures 2–4) |
//! | [`m`] | the machine **M** (Figures 5–6), instrumented |
//! | [`compile`] | Figure 7 compilation + the §6 theorems as property tests, and Core→M lowering |
//! | [`ir`] | the explicitly-typed Core IR with the §5.1 levity checks |
//! | [`surface`] | lexer/parser for the GHC-flavoured surface language |
//! | [`infer`] | §5.2 inference (rep metavariables, `LiftedRep` defaulting), §7.3 dictionary elaboration, the legacy `OpenKind` baseline, §7.1 type families |
//! | [`classes`] | the §8.1 class corpus study (34 of 76) |
//! | [`driver`] | the end-to-end pipeline and prelude |
//! | [`serve`] | the compile-once/run-many evaluation service (worker pool, program cache, fuel/alloc policy) |
//!
//! # Quickstart
//!
//! ```
//! use levity::driver::compile_with_prelude;
//!
//! // §7.3's punchline: 3# + 4# through a levity-polymorphic Num class.
//! let compiled = compile_with_prelude("main :: Int#\nmain = 3# + 4#\n")?;
//! let (out, _) = compiled.run("main", 1_000_000).unwrap();
//! assert_eq!(out.value().and_then(|v| v.as_int()), Some(7));
//! # Ok::<(), levity::driver::PipelineError>(())
//! ```

#![warn(missing_docs)]

pub use levity_classes as classes;
pub use levity_compile as compile;
pub use levity_core as core;
pub use levity_driver as driver;
pub use levity_infer as infer;
pub use levity_ir as ir;
pub use levity_l as l;
pub use levity_m as m;
pub use levity_serve as serve;
pub use levity_surface as surface;
